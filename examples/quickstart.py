#!/usr/bin/env python3
"""Quickstart: circuit -> AIG -> probabilities -> DeepGate in ~30 seconds.

Builds an 8-bit ripple adder, lowers it to an And-Inverter Graph, labels
every gate with its logic-simulated signal probability, trains a small
DeepGate model on a handful of circuits, and compares its predictions on a
circuit it has never seen against ground-truth simulation.
"""

import numpy as np

from repro.datagen import generators as gen
from repro.graphdata import CircuitDataset, from_aig, prepare
from repro.models import DeepGate
from repro.nn import no_grad
from repro.synth import synthesize
from repro.train import TrainConfig, Trainer, average_prediction_error


def main() -> None:
    # 1. build a gate-level netlist and lower it to an AIG
    netlist = gen.ripple_adder(8)
    aig = synthesize(netlist)
    print(f"netlist: {netlist.num_gates()} gates -> {aig}")

    # 2. expand to the PI/AND/NOT gate graph and label it by simulation
    graph = from_aig(aig, num_patterns=20_000, seed=0)
    print(
        f"gate graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"{len(graph.skip_edges)} reconvergence skip edges"
    )

    # 3. assemble a small training set of related circuits
    train_graphs = []
    for k, nl in enumerate(
        [gen.ripple_adder(w) for w in (4, 5, 6, 7, 10)]
        + [gen.comparator(w) for w in (4, 6, 8)]
        + [gen.parity(w) for w in (6, 10, 14)]
    ):
        train_graphs.append(
            from_aig(synthesize(nl), num_patterns=20_000, seed=k + 1)
        )
    train = CircuitDataset(train_graphs, "quickstart-train")

    # 4. train DeepGate (attention aggregation + skip connections)
    model = DeepGate(dim=32, num_iterations=5, rng=np.random.default_rng(0))
    trainer = Trainer(model, TrainConfig(epochs=30, batch_size=4, lr=1e-3))
    history = trainer.fit(train)
    print(f"training L1 loss: {history.train_loss[0]:.4f} -> "
          f"{history.train_loss[-1]:.4f}")

    # 5. predict on the unseen 8-bit adder and compare with simulation
    batch = prepare([graph])
    with no_grad():
        predictions = model(batch).numpy()
    error = average_prediction_error(predictions, graph.labels)
    print(f"avg prediction error on unseen 8-bit adder: {error:.4f}")

    worst = np.argsort(np.abs(predictions - graph.labels))[-3:]
    for v in worst[::-1]:
        print(
            f"  node {v:4d} ({graph.type_names[graph.node_type[v]]:3s}) "
            f"simulated={graph.labels[v]:.3f} predicted={predictions[v]:.3f}"
        )


if __name__ == "__main__":
    main()
