#!/usr/bin/env python3
"""Quickstart: circuit -> AIG -> probabilities -> DeepGate in ~30 seconds.

Builds an 8-bit ripple adder, lowers it to an And-Inverter Graph, labels
every gate with its logic-simulated signal probability, builds a small
training set with the parallel sharded dataset pipeline (cached on disk —
rerunning is instant), trains a DeepGate model on it, and compares its
predictions on a circuit it has never seen against ground-truth simulation.
"""

import getpass
import os
import tempfile

import numpy as np

from repro.datagen import PipelineConfig, build_shards, generators as gen
from repro.graphdata import ShardedCircuitDataset, from_aig, prepare
from repro.models import DeepGate
from repro.nn import no_grad
from repro.synth import synthesize
from repro.train import TrainConfig, Trainer, average_prediction_error


def main() -> None:
    # 1. build a gate-level netlist and lower it to an AIG
    netlist = gen.ripple_adder(8)
    aig = synthesize(netlist)
    print(f"netlist: {netlist.num_gates()} gates -> {aig}")

    # 2. expand to the PI/AND/NOT gate graph and label it by simulation
    graph = from_aig(aig, num_patterns=20_000, seed=0)
    print(
        f"gate graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"{len(graph.skip_edges)} reconvergence skip edges"
    )

    # 3. build a small training set through the sharded dataset pipeline:
    # generation + Monte-Carlo labelling fans out across worker processes,
    # and a rerun with the same config is a pure cache hit
    config = PipelineConfig(
        suites=(("EPFL", 8), ("IWLS", 4)),
        seed=7,
        num_patterns=20_000,
        max_nodes=300,
        max_levels=40,
        shard_size=3,
    )
    # per-user path: /tmp is shared, and a second user colliding with the
    # first user's cache directory would hit a PermissionError
    data_dir = os.environ.get(
        "REPRO_DATA_DIR",
        os.path.join(
            tempfile.gettempdir(), f"repro-quickstart-{getpass.getuser()}"
        ),
    )
    result = build_shards(config, data_dir, workers=os.cpu_count() or 1)
    print(
        f"dataset: {'cache hit' if result.cache_hit else 'built'} "
        f"{result.total_circuits} circuits in "
        f"{len(result.manifest['shards'])} shards ({result.elapsed:.2f}s) "
        f"-> {data_dir}"
    )
    train = ShardedCircuitDataset(result.out_dir).materialize()

    # 4. train DeepGate (attention aggregation + skip connections)
    model = DeepGate(dim=32, num_iterations=5, rng=np.random.default_rng(0))
    trainer = Trainer(model, TrainConfig(epochs=30, batch_size=4, lr=1e-3))
    history = trainer.fit(train)
    print(f"training L1 loss: {history.train_loss[0]:.4f} -> "
          f"{history.train_loss[-1]:.4f}")

    # 5. predict on the unseen 8-bit adder and compare with simulation
    batch = prepare([graph])
    with no_grad():
        predictions = model(batch).numpy()
    error = average_prediction_error(predictions, graph.labels)
    print(f"avg prediction error on unseen 8-bit adder: {error:.4f}")

    worst = np.argsort(np.abs(predictions - graph.labels))[-3:]
    for v in worst[::-1]:
        print(
            f"  node {v:4d} ({graph.type_names[graph.node_type[v]]:3s}) "
            f"simulated={graph.labels[v]:.3f} predicted={predictions[v]:.3f}"
        )


if __name__ == "__main__":
    main()
