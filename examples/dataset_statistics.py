#!/usr/bin/env python3
"""Dataset construction walkthrough (the paper's §III-B flow + Table I).

Builds small versions of all four benchmark-suite pools, shows per-suite
statistics, the gate-type distribution before and after AIG transformation
(the imbalance the paper blames for the Table IV gap), and reconvergence
density per suite.
"""

from collections import Counter

import numpy as np

from repro.datagen import build_suite_dataset, suite_pool, SUITE_NAMES
from repro.datagen.normalize import normalize_to_library
from repro.experiments import table1
from repro.synth import netlist_to_aig


def gate_type_histogram() -> None:
    print("=== Gate-type distribution, original netlists vs AIG ===")
    rng = np.random.default_rng(0)
    pool = suite_pool("EPFL", rng)
    before: Counter = Counter()
    ands = 0
    nots = 0
    for _ in range(8):
        netlist = normalize_to_library(next(pool))
        for gate_type, count in netlist.gate_type_counts().items():
            if gate_type != "INPUT":
                before[gate_type] += count
        aig = netlist_to_aig(netlist)
        ands += aig.num_ands
        nots += int((aig.ands & 1).sum()) + sum(o & 1 for o in aig.outputs)
    total = sum(before.values())
    print("original library gates:")
    for gate_type, count in before.most_common():
        print(f"  {gate_type:5s} {count:6d}  ({100 * count / total:.1f}%)")
    print("after AIG transformation: only 2 gate types remain")
    print(f"  AND   {ands:6d}")
    print(f"  NOT   {nots:6d} (complemented edges materialised)")


def suite_statistics() -> None:
    print("\n=== Suite statistics (Table I, smoke scale) ===")
    print(table1.format_table(table1.run("smoke")))


def reconvergence_density() -> None:
    print("\n=== Reconvergence density per suite ===")
    for name in SUITE_NAMES:
        ds = build_suite_dataset(name, 4, seed=7, num_patterns=512)
        nodes = sum(g.num_nodes for g in ds)
        skips = sum(len(g.skip_edges) for g in ds)
        print(f"  {name:10s} {skips:5d} skip edges over {nodes:6d} nodes "
              f"({100 * skips / nodes:.1f}%)")


def main() -> None:
    gate_type_histogram()
    suite_statistics()
    reconvergence_density()


if __name__ == "__main__":
    main()
