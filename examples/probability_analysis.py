#!/usr/bin/env python3
"""Signal-probability analysis: why reconvergence makes learning necessary.

Compares three probability estimators on reconvergence-light and
reconvergence-heavy circuits:

* exhaustive truth-table enumeration (exact, tiny circuits only),
* Monte-Carlo logic simulation (the paper's label generator),
* COP, the classical analytic estimator that assumes fan-in independence.

COP is exact on trees but degrades precisely where fanout branches
reconverge — the motivation for DeepGate's skip connections (§III-D).
"""

import numpy as np

from repro.datagen import generators as gen
from repro.sim import (
    cop_probabilities,
    exact_probabilities,
    find_reconvergences,
    monte_carlo_probabilities,
)
from repro.synth import has_constant_outputs, strip_constant_outputs, synthesize


def analyse(name: str, netlist) -> None:
    aig = synthesize(netlist)
    if has_constant_outputs(aig):
        aig = strip_constant_outputs(aig)
    graph = aig.to_gate_graph()
    reconv = find_reconvergences(graph)

    exact = exact_probabilities(aig)
    cop = cop_probabilities(aig)
    cop_err = np.abs(cop - exact).mean()

    print(f"\n{name}: {aig.num_ands} ANDs, depth {aig.depth()}, "
          f"{len(reconv)} reconvergence nodes")
    print(f"  COP avg error vs exact:          {cop_err:.4f}")
    for patterns in (256, 4096, 65_536):
        mc = monte_carlo_probabilities(aig, patterns, seed=0)
        print(f"  Monte-Carlo ({patterns:6d} patterns): "
              f"{np.abs(mc - exact).mean():.4f}")


def main() -> None:
    print("=== Reconvergence-light circuits (COP nearly exact) ===")
    analyse("parity tree (16 inputs)", gen.parity(16))
    analyse("decoder (3 select bits)", gen.decoder(3))

    print("\n=== Reconvergence-heavy circuits (COP breaks down) ===")
    analyse("ripple adder (8 bits)", gen.ripple_adder(8))
    analyse("squarer (6 bits)", gen.squarer(6))
    analyse("round-robin arbiter (4 req)", gen.round_robin_arbiter(4))

    print(
        "\nMonte-Carlo converges everywhere as patterns grow; COP's error "
        "is structural.\nDeepGate learns the reconvergence corrections COP "
        "cannot express."
    )


if __name__ == "__main__":
    main()
