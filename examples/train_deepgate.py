#!/usr/bin/env python3
"""Full training run with checkpointing and a generalisation check.

Trains DeepGate on the merged benchmark-suite dataset, saves the weights
as ``.npz``, reloads them into a fresh model and evaluates on both the
held-out split and one large unseen design.

Usage::

    python examples/train_deepgate.py --scale smoke
    python examples/train_deepgate.py --scale default --out deepgate.npz
"""

import argparse

import numpy as np

from repro.datagen import generators as gen
from repro.experiments.common import get_scale, merged_dataset
from repro.graphdata import CircuitDataset, from_aig
from repro.models import DeepGate
from repro.nn import load_module, save_module
from repro.synth import has_constant_outputs, strip_constant_outputs, synthesize
from repro.train import TrainConfig, Trainer, evaluate_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "default", "paper"])
    parser.add_argument("--out", default="deepgate_model.npz")
    args = parser.parse_args()
    cfg = get_scale(args.scale)

    print(f"building dataset at scale {cfg.name!r} ...")
    dataset = merged_dataset(cfg)
    train, test = dataset.split(0.9, seed=cfg.seed)
    print(f"  {len(train)} training / {len(test)} test circuits")

    model = DeepGate(
        dim=cfg.dim,
        num_iterations=cfg.num_iterations,
        rng=np.random.default_rng(cfg.seed),
    )
    print(f"model: {model.num_parameters()} parameters, "
          f"d={cfg.dim}, T={cfg.num_iterations}")

    trainer = Trainer(
        model,
        TrainConfig(
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            lr=cfg.lr,
            seed=cfg.seed,
            verbose=True,
        ),
    )
    trainer.fit(train, test)

    save_module(model, args.out)
    print(f"saved weights to {args.out}")

    # round-trip the checkpoint into a fresh model
    fresh = DeepGate(
        dim=cfg.dim,
        num_iterations=cfg.num_iterations,
        rng=np.random.default_rng(12345),
    )
    load_module(fresh, args.out)
    err = evaluate_model(fresh, test.prepared_batches(cfg.batch_size))
    print(f"reloaded model, held-out avg prediction error: {err:.4f}")

    # generalisation: one large unseen arbiter (Table III style)
    aig = synthesize(gen.round_robin_arbiter(10))
    if has_constant_outputs(aig):
        aig = strip_constant_outputs(aig)
    big = from_aig(aig, num_patterns=cfg.num_patterns, seed=99)
    big_err = evaluate_model(
        fresh, CircuitDataset([big]).prepared_batches(1)
    )
    print(f"unseen round-robin arbiter ({big.num_nodes} nodes): "
          f"error {big_err:.4f}")


if __name__ == "__main__":
    main()
