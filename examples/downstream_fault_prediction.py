#!/usr/bin/env python3
"""Downstream task: predicting fault detectability from gate embeddings.

The paper's conclusion proposes reusing DeepGate's representations for
downstream EDA tasks.  This example does it end to end:

1. pre-train DeepGate on signal probabilities (the paper's task);
2. freeze it and fine-tune a small head to predict the *random-pattern
   detection probability of stuck-at-0 faults* per node, a testability
   quantity obtained from the fault simulator;
3. compare the fine-tuned head against the classical SCOAP heuristic on an
   unseen circuit.
"""

import numpy as np

from repro.datagen import generators as gen
from repro.experiments.common import get_scale, merged_dataset
from repro.graphdata import from_aig, prepare
from repro.models import DeepGate, FineTuner
from repro.synth import has_constant_outputs, strip_constant_outputs, synthesize
from repro.testability import compute_scoap, run_fault_simulation, StuckAtFault
from repro.train import TrainConfig, Trainer


def sa0_detection_targets(graph_batch, num_patterns=8192, seed=0):
    """Per-node stuck-at-0 detection probability from fault simulation."""
    graph = graph_batch.graph
    gate_graph = _as_gate_graph(graph)
    faults = [StuckAtFault(v, 0) for v in range(graph.num_nodes)]
    report = run_fault_simulation(
        gate_graph, num_patterns=num_patterns, seed=seed, faults=faults
    )
    return report.detection_probability()


def _as_gate_graph(circuit_graph):
    """Rebuild the GateGraph view the fault simulator needs."""
    from repro.aig.graph import GateGraph

    return GateGraph(
        node_type=circuit_graph.node_type.astype(np.int8),
        edges=circuit_graph.edges,
        outputs=_output_nodes(circuit_graph),
        name=circuit_graph.name,
    )


def _output_nodes(circuit_graph):
    """Nodes with no fanout act as the observable outputs."""
    has_fanout = np.zeros(circuit_graph.num_nodes, dtype=bool)
    if circuit_graph.num_edges:
        has_fanout[circuit_graph.edges[:, 0]] = True
    return np.nonzero(~has_fanout)[0]


def main() -> None:
    cfg = get_scale("smoke")

    print("pre-training DeepGate on signal probabilities ...")
    dataset = merged_dataset(cfg)
    train, _ = dataset.split(0.9, seed=cfg.seed)
    backbone = DeepGate(
        dim=cfg.dim,
        num_iterations=cfg.num_iterations,
        rng=np.random.default_rng(cfg.seed),
    )
    Trainer(
        backbone,
        TrainConfig(epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr),
    ).fit(train)

    print("fine-tuning a fault-detectability head on frozen embeddings ...")
    tune_batches = [prepare([g]) for g in list(train)[:6]]
    targets = [sa0_detection_targets(b, seed=k) for k, b in enumerate(tune_batches)]
    tuner = FineTuner(backbone, lr=5e-3)
    history = tuner.fit(tune_batches, targets, epochs=80)
    print(f"  head L1: {history.train_loss[0]:.4f} -> "
          f"{history.train_loss[-1]:.4f}")

    # unseen evaluation circuit
    aig = synthesize(gen.alu(4))
    if has_constant_outputs(aig):
        aig = strip_constant_outputs(aig)
    graph = from_aig(aig, num_patterns=8192, seed=123)
    batch = prepare([graph])
    truth = sa0_detection_targets(batch, seed=777)
    predicted = tuner.predict(batch)

    # SCOAP baseline: higher testability score ~ harder fault; compare
    # rank correlation against the learned head's absolute prediction
    scoap = compute_scoap(_as_gate_graph(graph)).testability().astype(float)
    scoap_rank = -scoap  # easy-to-test high

    def spearman(a, b):
        ra = np.argsort(np.argsort(a)).astype(float)
        rb = np.argsort(np.argsort(b)).astype(float)
        return float(np.corrcoef(ra, rb)[0, 1])

    print(f"\nunseen ALU ({graph.num_nodes} nodes):")
    print(f"  head  L1 error vs fault simulation: "
          f"{np.abs(predicted - truth).mean():.4f}")
    print(f"  rank correlation, learned head:  {spearman(predicted, truth):.3f}")
    print(f"  rank correlation, SCOAP:         {spearman(scoap_rank, truth):.3f}")


if __name__ == "__main__":
    main()
