#!/usr/bin/env python3
"""Downstream fault-detectability prediction from frozen embeddings.

This workload is now a registered, golden-gated experiment
(:mod:`repro.experiments.fault_prediction`); this script survives as a
thin shim so the documented example keeps working:

    python examples/downstream_fault_prediction.py [--scale smoke]

is equivalent to

    python -m repro experiment run downstream_fault_prediction --scale smoke
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    args = sys.argv[1:] or ["--scale", "smoke"]
    sys.exit(main(["experiment", "run", "downstream_fault_prediction", *args]))
