#!/usr/bin/env python3
"""Downstream EDA task: testability screening with signal probabilities.

The paper argues per-gate signal probability "plays an essential role in
many EDA tasks"; random-pattern testability is the classic one.  A stuck-at
fault at a node is hard to detect by random patterns when the node's signal
probability is extreme (near 0 or 1).  This example uses a trained DeepGate
as a fast probability oracle to rank hard-to-test nodes in an unseen design
and checks the ranking against ground-truth simulation.
"""

import numpy as np

from repro.datagen import generators as gen
from repro.experiments.common import get_scale, merged_dataset
from repro.graphdata import from_aig, prepare
from repro.models import DeepGate
from repro.nn import no_grad
from repro.synth import has_constant_outputs, strip_constant_outputs, synthesize
from repro.train import TrainConfig, Trainer


def hard_to_test_score(probs: np.ndarray) -> np.ndarray:
    """0.5 - min(p, 1-p): high when a node is hard to excite randomly."""
    return 0.5 - np.minimum(probs, 1.0 - probs)


def main() -> None:
    cfg = get_scale("smoke")
    dataset = merged_dataset(cfg)
    train, _ = dataset.split(0.9, seed=cfg.seed)

    model = DeepGate(
        dim=cfg.dim,
        num_iterations=cfg.num_iterations,
        rng=np.random.default_rng(cfg.seed),
    )
    Trainer(
        model,
        TrainConfig(epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr),
    ).fit(train)

    # target design unseen during training: a wide priority arbiter whose
    # masked grants become exponentially hard to excite
    aig = synthesize(gen.priority_arbiter(16))
    if has_constant_outputs(aig):
        aig = strip_constant_outputs(aig)
    graph = from_aig(aig, num_patterns=60_000, seed=1)
    batch = prepare([graph])
    with no_grad():
        predicted = model(batch).numpy()

    true_score = hard_to_test_score(graph.labels)
    pred_score = hard_to_test_score(predicted)

    k = 15
    true_top = set(np.argsort(true_score)[-k:].tolist())
    pred_top = set(np.argsort(pred_score)[-k:].tolist())
    overlap = len(true_top & pred_top)

    print(f"design: priority arbiter, {graph.num_nodes} nodes")
    print(f"avg |p_pred - p_sim| = "
          f"{np.abs(predicted - graph.labels).mean():.4f}")
    print(f"top-{k} hard-to-test nodes, predicted vs simulated overlap: "
          f"{overlap}/{k}")
    print("\nhardest nodes by simulation (p = signal probability):")
    for v in np.argsort(true_score)[-5:][::-1]:
        print(f"  node {v:4d}  p_sim={graph.labels[v]:.4f}  "
              f"p_deepgate={predicted[v]:.4f}")
    rank_corr = np.corrcoef(true_score, pred_score)[0, 1]
    print(f"\nscore correlation across all nodes: {rank_corr:.3f}")


if __name__ == "__main__":
    main()
