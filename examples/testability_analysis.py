#!/usr/bin/env python3
"""Testability screening with a learned probability oracle.

This workload is now a registered, golden-gated experiment
(:mod:`repro.experiments.testability_analysis`); this script survives as
a thin shim so the documented example keeps working:

    python examples/testability_analysis.py [--scale smoke]

is equivalent to

    python -m repro experiment run testability_analysis --scale smoke
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    args = sys.argv[1:] or ["--scale", "smoke"]
    sys.exit(main(["experiment", "run", "testability_analysis", *args]))
