"""Compiled propagation pass execution: the models' shared fast path.

A propagation pass (one forward or reverse sweep over a level schedule)
used to pay a full ``(N, d)`` state copy per level, then — after PR 4 —
one autograd node per level group.  Deep circuits have hundreds of level
groups of a handful of nodes each, so per-group graph bookkeeping (node
construction, closures, parameter accumulation, small matmuls) dominated
the numbers being crunched.  :func:`run_pass` now records the ENTIRE
pass as one autograd node:

* the forward walks the level groups in plain numpy, gathering sources
  from a single working matrix and running the closed-form aggregator +
  GRU kernels of :mod:`repro.nn.kernels` (per-design logic lives on the
  aggregator classes as ``step_*`` hooks — see
  :class:`~repro.models.aggregators.PassStepAggregator`);
* the backward replays the groups in reverse, routing source gradients
  to their producing groups through the schedule's precomputed
  provenance plans — source and query values are re-gathered from the
  retained pass input/output matrices rather than saved per group;
* everything that does not depend on mid-pass state is batched per pass:
  the GRU's recurrent input transform ``h @ W_hh + b_hh`` (one GEMM over
  the pass-input state instead of one per group — its gradient likewise
  materialises once, from the per-group gate gradients), the attention
  query scores ``h @ w_q``, and all parameter gradients, which
  accumulate into flat numpy buffers and hit the parameter tensors once
  per pass.

Two execution layouts (:data:`PASS_LAYOUTS`) decide how far the batching
goes:

* ``"block"`` (the default) runs over the schedule's
  :class:`~repro.graphdata.batching.PassBlock` layout: the static share
  of the GRU input transform (``x_rows @ W_ih[t:] + b_ih``) is ONE GEMM
  per pass; per-group backward intermediates (gate-input gradients,
  messages, aggregator activations) land in contiguous pass-wide
  buffers via slice writes; and every parameter gradient contracts
  those buffers in one GEMM per parameter at pass end instead of one
  small GEMM per group.
* ``"per_group"`` keeps the PR-5 behaviour — parameter-gradient GEMMs
  per group, accumulated into flat sinks — and serves as the close-in
  equivalence oracle for the block layout (both are checked against the
  uncompiled reference).

The layout is a per-process choice: ``REPRO_PASS_LAYOUT`` in the
environment, :func:`set_pass_layout` from code, or the
:func:`use_pass_layout` context manager in tests.  Every GEMM on either
layout runs through the pluggable backend seam
(:mod:`repro.nn.backends`).

A note on *batch interleaving*: level groups are keyed by level value,
so when a batch merges several circuits (``graphdata.merge`` /
``merge_schedules``), nodes of different circuits at the same level
share one group — the pass depth is the *maximum* circuit depth, not
the sum.  Circuits never share edges, so this interleaving is exact,
and it is already optimal: within one circuit every level-``L`` AND
node has a fanin at level ``L-1``, so a circuit's own chain cannot be
shortened.  (``tests/graphdata`` pins this with a merged-vs-single
group-count test.)

Both DeepGate's recurrent layers and the layered baselines run their
passes through this module via an :class:`AggregateCombineStep` — the
fused AGGREGATE (any of the paper's four Table II designs) + GRU COMBINE
step.  The aggregator modules keep equivalent single-node fused paths
for direct use; the reference composite formulation (``compiled=False``)
remains the equivalence-test oracle.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import List, Optional, Tuple

import numpy as np

from ..graphdata.batching import CompiledGroup, CompiledSchedule, PassBlock
from ..nn import kernels
from ..nn.backends import matmul as _mm
from ..nn.kernels import segment_present_sum
from ..nn.tensor import Tensor, is_grad_enabled
from .aggregators import PassStepAggregator, Sink, _acc

__all__ = [
    "run_pass",
    "AggregateCombineStep",
    "PASS_LAYOUTS",
    "LAYOUT_ENV_VAR",
    "get_pass_layout",
    "set_pass_layout",
    "use_pass_layout",
]

#: the execution layouts run_pass understands
PASS_LAYOUTS = ("block", "per_group")

LAYOUT_ENV_VAR = "REPRO_PASS_LAYOUT"

_active_layout: Optional[str] = None


def _check_layout(name: str, source: str) -> str:
    if name not in PASS_LAYOUTS:
        raise ValueError(
            f"unknown pass layout {name!r} (from {source}); "
            f"valid layouts: {', '.join(PASS_LAYOUTS)}"
        )
    return name


def get_pass_layout() -> str:
    """The process's active layout, resolving the env var on first use."""
    global _active_layout
    if _active_layout is None:
        name = os.environ.get(LAYOUT_ENV_VAR, "").strip()
        _active_layout = (
            _check_layout(name, f"${LAYOUT_ENV_VAR}") if name else "block"
        )
    return _active_layout


def set_pass_layout(name: str) -> str:
    """Activate a layout by name; returns it."""
    global _active_layout
    _active_layout = _check_layout(name, "set_pass_layout")
    return _active_layout


@contextmanager
def use_pass_layout(name: str):
    """Temporarily activate a layout; restores the previous one on exit."""
    global _active_layout
    previous = _active_layout
    try:
        yield set_pass_layout(name)
    finally:
        _active_layout = previous


class AggregateCombineStep:
    """Closed-form per-group step: AGGREGATE + GRU COMBINE, numpy in/out.

    Delegates the aggregation maths to the aggregator's ``step_*`` hooks
    and owns the GRU side.  ``fixed_x`` concatenates the group's
    pre-gathered gate-type rows into the GRU input (DeepGate's
    ``fixed_x`` input mode); ``use_edge_attr`` feeds each group's
    precomputed edge-attribute block to the aggregator (skip
    connections; attention only).

    The ``*_block`` variants implement the pass-wide block layout: the
    static input-transform share is precomputed in :meth:`begin`, gate
    gradients and messages land in contiguous pass buffers, and
    :meth:`end_backward` contracts them into the parameter gradients
    with one GEMM each.
    """

    def __init__(
        self,
        aggregate: PassStepAggregator,
        combine,
        fixed_x: bool = False,
        use_edge_attr: bool = False,
    ):
        self.aggregate = aggregate
        self.combine = combine
        self.fixed_x = fixed_x
        self.use_edge_attr = (
            use_edge_attr and getattr(aggregate, "w_edge", None) is not None
        )

    def _edge_attr(self, group: CompiledGroup) -> Optional[np.ndarray]:
        return group.edge_attr if self.use_edge_attr else None

    def params(self) -> List[Tensor]:
        """Every parameter the pass node must list as a parent."""
        return [p for _, p in self.aggregate.named_parameters()] + [
            self.combine.w_ih, self.combine.b_ih,
            self.combine.w_hh, self.combine.b_hh,
        ]

    def begin(
        self, hd: np.ndarray, block: Optional[PassBlock] = None
    ) -> Tuple[np.ndarray, object, Optional[np.ndarray]]:
        """Per-pass pre-projections over the pass-input state.

        Returns ``(gh_full, agg_ctx, gi_static)``; on the block layout
        with ``fixed_x``, ``gi_static`` is the whole pass's static GRU
        input-transform share ``x_rows @ W_ih[d:] + b_ih`` in one GEMM
        (sliced per group, replacing the per-group concatenate).
        """
        c = self.combine
        gh_full = _mm(hd, c.w_hh.data) + c.b_hh.data
        gi_static = None
        if block is not None and self.fixed_x:
            d = hd.shape[1]
            gi_static = _mm(block.x_rows, c.w_ih.data[d:]) + c.b_ih.data
        return gh_full, self.aggregate.step_begin(hd), gi_static

    def forward(
        self,
        group: CompiledGroup,
        h_src: np.ndarray,
        query: np.ndarray,
        gh_full: np.ndarray,
        agg_ctx,
    ) -> Tuple[np.ndarray, tuple]:
        m, agg_saved = self.aggregate.step_forward(
            group, h_src, agg_ctx, self._edge_attr(group)
        )
        x_in = (
            np.concatenate([m, group.x_rows], axis=1) if self.fixed_x else m
        )
        c = self.combine
        out, gru_saved = kernels.gru_pre_forward_np(
            x_in, query, gh_full[group.nodes], c.w_ih.data, c.b_ih.data
        )
        return out, (x_in, agg_saved, gru_saved)

    def forward_block(
        self,
        group: CompiledGroup,
        h_src: np.ndarray,
        query: np.ndarray,
        gh_rows: np.ndarray,
        agg_ctx,
        gi_static: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, tuple]:
        """Block-layout group forward: the GRU input transform splits
        into the precomputed static share plus a message-only GEMM."""
        m, agg_saved = self.aggregate.step_forward(
            group, h_src, agg_ctx, self._edge_attr(group)
        )
        c = self.combine
        if gi_static is not None:
            o0 = group.node_offset
            d = query.shape[1]
            gi = _mm(m, c.w_ih.data[:d]) + gi_static[o0:o0 + len(group.nodes)]
        else:
            gi = _mm(m, c.w_ih.data) + c.b_ih.data
        out, gru_saved = kernels.gru_gates_np(gi, gh_rows, query)
        # h_src is already a fresh gather the runner made for this group:
        # retaining it trades a little saved-state memory for skipping the
        # per-group re-gather in the reverse walk (the per_group layout
        # keeps the memory-lean _regather_sources path)
        return out, (m, agg_saved, gru_saved, h_src)

    def begin_backward(
        self, hd: np.ndarray, block: Optional[PassBlock] = None
    ) -> Tuple[Sink, Sink]:
        """Zeroed per-pass gradient accumulation buffers."""
        c = self.combine
        if block is None:
            gru_sink: Sink = {
                "dgh": np.zeros(
                    (hd.shape[0], c.w_hh.data.shape[1]), np.float32
                ),
                "dw_ih": np.zeros_like(c.w_ih.data),
                "db_ih": np.zeros_like(c.b_ih.data),
            }
        else:
            # block layout: every per-group gradient lands in a contiguous
            # pass-wide buffer (written-node order), scattered/contracted
            # exactly once in end_backward
            n_w = block.num_written
            gru_sink = {
                "dgh": np.empty((n_w, c.w_hh.data.shape[1]), np.float32),
                "dgi": np.empty((n_w, c.w_ih.data.shape[1]), np.float32),
                "m": np.empty((n_w, hd.shape[1]), np.float32),
                "dq": np.empty((n_w, hd.shape[1]), np.float32),
            }
        return gru_sink, self.aggregate.step_sink(hd, block)

    def backward(
        self,
        group: CompiledGroup,
        grad: np.ndarray,
        h_src: np.ndarray,
        query: np.ndarray,
        saved: tuple,
        gru_sink: Sink,
        agg_sink: Sink,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One group's gradients: returns ``(dh_src, dquery)``."""
        x_in, agg_saved, gru_saved = saved
        c = self.combine
        dx, dquery, dgh, dw_ih, db_ih = kernels.gru_pre_backward_np(
            grad, x_in, query, c.w_ih.data, gru_saved
        )
        gru_sink["dgh"][group.nodes] = dgh
        gru_sink["dw_ih"] += dw_ih
        gru_sink["db_ih"] += db_ih
        dm = (
            np.ascontiguousarray(dx[:, : query.shape[1]])
            if self.fixed_x
            else dx
        )
        dh_src = self.aggregate.step_backward(
            group, dm, h_src, agg_saved, agg_sink, self._edge_attr(group)
        )
        return dh_src, dquery

    def backward_block(
        self,
        group: CompiledGroup,
        grad: np.ndarray,
        h_src: np.ndarray,
        query: np.ndarray,
        saved: tuple,
        gru_sink: Sink,
        agg_sink: Sink,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Block-layout group backward: gate-input gradients and messages
        land in the pass buffers; no per-group parameter GEMMs."""
        m, agg_saved, gru_saved, _ = saved
        c = self.combine
        o0 = group.node_offset
        o1 = o0 + len(group.nodes)
        dgi, _ = kernels.gru_gates_backward_np(
            grad, query, gru_saved,
            out_gi=gru_sink["dgi"][o0:o1],
            out_gh=gru_sink["dgh"][o0:o1],
        )
        gru_sink["m"][o0:o1] = m
        # the direct z*h query path, landed in the pass buffer and folded
        # into dh once in end_backward
        np.multiply(grad, gru_saved[1], out=gru_sink["dq"][o0:o1])
        w_ih = c.w_ih.data
        dm = _mm(dgi, w_ih[: query.shape[1]].T if self.fixed_x else w_ih.T)
        dh_src = self.aggregate.step_backward_block(
            group, dm, h_src, agg_saved, agg_sink, self._edge_attr(group)
        )
        return dh_src, None

    def end_backward(
        self,
        hd: np.ndarray,
        gru_sink: Sink,
        agg_sink: Sink,
        dh: Optional[np.ndarray],
        block: Optional[PassBlock] = None,
    ) -> None:
        """Fold the batched per-pass gradients into the parameters (and,
        when the pass input needs one, the hidden-state gradient)."""
        c = self.combine
        dgh = gru_sink["dgh"]
        if block is None:
            _acc(c.w_hh, _mm(hd.T, dgh))
            _acc(c.b_hh, dgh.sum(axis=0))
            if dh is not None:
                dh += _mm(dgh, c.w_hh.data.T)
            self.aggregate.step_end(hd, agg_sink, dh)
            _acc(c.w_ih, gru_sink["dw_ih"])
            _acc(c.b_ih, gru_sink["db_ih"])
            return
        # dgh is (num_written, 3h) in written order: contract against the
        # gathered query rows and scatter the recurrent grad back once
        # (written nodes are unique, so fancy += is exact)
        hdw = hd[block.written]
        _acc(c.w_hh, _mm(hdw.T, dgh))
        _acc(c.b_hh, dgh.sum(axis=0))
        if dh is not None:
            dhw = _mm(dgh, c.w_hh.data.T)
            dhw += gru_sink["dq"]  # per-group direct z*h query grads
            dh[block.written] += dhw
        self.aggregate.step_end(hd, agg_sink, dh)
        dgi_all = gru_sink["dgi"]
        dw_m = _mm(gru_sink["m"].T, dgi_all)
        if self.fixed_x:
            dw_ih = np.concatenate(
                [dw_m, _mm(block.x_rows.T, dgi_all)], axis=0
            )
        else:
            dw_ih = dw_m
        _acc(c.w_ih, dw_ih)
        _acc(c.b_ih, dgi_all.sum(axis=0))


def _regather_sources(
    hd: np.ndarray, work: np.ndarray, group: CompiledGroup
) -> np.ndarray:
    """Reconstruct the source rows a group read during the forward.

    The schedule is topological: no source row is written after the
    group reads it, so rows from producer ``-1`` still sit unchanged in
    the pass input ``hd`` and rows from earlier groups sit in the final
    working matrix ``work`` (each node is written exactly once).
    Re-gathering here keeps the per-group ``(E_g, d)`` snapshots out of
    the saved state.
    """
    plan = group.gather_plan
    if len(plan) == 1 and plan[0].positions is None:
        base = hd if plan[0].producer < 0 else work
        return base[group.src]
    out = np.empty((len(group.src),) + hd.shape[1:], hd.dtype)
    for split in plan:
        base = hd if split.producer < 0 else work
        out[split.positions] = base[group.src[split.positions]]
    return out


def run_pass(
    h: Tensor,
    schedule: CompiledSchedule,
    step: AggregateCombineStep,
    layout: Optional[str] = None,
) -> Tensor:
    """Run one compiled propagation pass as a single autograd node.

    ``layout`` picks the execution layout (see :data:`PASS_LAYOUTS`);
    ``None`` uses the process default from :func:`get_pass_layout`.
    """
    if not schedule.groups:
        return h
    if layout is None:
        layout = get_pass_layout()
    else:
        _check_layout(layout, "run_pass")
    block = schedule.block() if layout == "block" else None
    hd = h.data
    params = step.params()
    record = is_grad_enabled() and (
        h.requires_grad or any(p.requires_grad for p in params)
    )
    gh_full, agg_ctx, gi_static = step.begin(hd, block)
    work = hd.copy()
    saved_all: List[tuple] = []
    q_all: Optional[np.ndarray] = None
    if block is not None:
        # one batched gather each for the query rows and their recurrent
        # pre-activations; groups then take contiguous views
        q_all = hd[schedule.written]
        gh_w = gh_full[schedule.written]
        for group in schedule.groups:
            o0 = group.node_offset
            o1 = o0 + len(group.nodes)
            h_src = work[group.src]
            out, saved = step.forward_block(
                group, h_src, q_all[o0:o1], gh_w[o0:o1], agg_ctx, gi_static
            )
            work[group.nodes] = out
            if record:
                saved_all.append(saved)
    else:
        for group in schedule.groups:
            h_src = work[group.src]
            query = hd[group.nodes]
            out, saved = step.forward(group, h_src, query, gh_full, agg_ctx)
            work[group.nodes] = out
            if record:
                saved_all.append(saved)
    groups = schedule.groups
    written = schedule.written

    def backward(grad: np.ndarray) -> None:
        gru_sink, agg_sink = step.begin_backward(hd, block)
        # gwork[n] = running gradient w.r.t. whichever rows the pass's
        # working matrix held at the point each group read them; walking
        # groups in reverse means every later consumer has contributed
        # by the time a group's own rows are read off
        gwork = grad.copy()
        need_dh = h.requires_grad
        dh = np.zeros_like(hd) if need_dh else None
        group_backward = (
            step.backward_block if block is not None else step.backward
        )
        for group, saved in zip(reversed(groups), reversed(saved_all)):
            g_out = gwork[group.nodes]
            if block is not None:
                # block forwards retain their gather; the per_group
                # layout re-derives it to keep saved state lean
                h_src = saved[3]
                o0 = group.node_offset
                query = q_all[o0:o0 + len(group.nodes)]
            else:
                h_src = _regather_sources(hd, work, group)
                query = hd[group.nodes]
            dh_src, dquery = group_backward(
                group, g_out, h_src, query, saved, gru_sink, agg_sink
            )
            if need_dh and dquery is not None:
                dh[group.nodes] += dquery
            for split in group.gather_plan:
                g = (
                    dh_src
                    if split.positions is None
                    else dh_src[split.positions]
                )
                rows, sums = segment_present_sum(g, split.layout)
                if split.producer < 0:
                    if need_dh:
                        dh[rows] += sums
                else:
                    gwork[groups[split.producer].nodes[rows]] += sums
        step.end_backward(hd, gru_sink, agg_sink, dh, block)
        if need_dh:
            # rows never written flow straight through to the pass input
            gwork[written] = 0.0
            dh += gwork
            h._accumulate(dh, own=True)

    return Tensor._make(work, (h, *params), backward)
