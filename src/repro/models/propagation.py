"""Compiled propagation pass execution: the models' shared fast path.

A propagation pass (one forward or reverse sweep over a level schedule)
used to pay a full ``(N, d)`` state copy per level, then — after PR 4 —
one autograd node per level group.  Deep circuits have hundreds of level
groups of a handful of nodes each, so per-group graph bookkeeping (node
construction, closures, parameter accumulation, small matmuls) dominated
the numbers being crunched.  :func:`run_pass` now records the ENTIRE
pass as one autograd node:

* the forward walks the level groups in plain numpy, gathering sources
  from a single working matrix and running the closed-form aggregator +
  GRU kernels of :mod:`repro.nn.kernels` (per-design logic lives on the
  aggregator classes as ``step_*`` hooks — see
  :class:`~repro.models.aggregators.PassStepAggregator`);
* the backward replays the groups in reverse, routing source gradients
  to their producing groups through the schedule's precomputed
  provenance plans — source and query values are re-gathered from the
  retained pass input/output matrices rather than saved per group;
* everything that does not depend on mid-pass state is batched per pass:
  the GRU's recurrent input transform ``h @ W_hh + b_hh`` (one GEMM over
  the pass-input state instead of one per group — its gradient likewise
  materialises once, from the per-group gate gradients), the attention
  query scores ``h @ w_q``, and all parameter gradients, which
  accumulate into flat numpy buffers and hit the parameter tensors once
  per pass.

Both DeepGate's recurrent layers and the layered baselines run their
passes through this module via an :class:`AggregateCombineStep` — the
fused AGGREGATE (any of the paper's four Table II designs) + GRU COMBINE
step.  The aggregator modules keep equivalent single-node fused paths
for direct use; the reference composite formulation (``compiled=False``)
remains the equivalence-test oracle.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..graphdata.batching import CompiledGroup, CompiledSchedule
from ..nn import kernels
from ..nn.kernels import segment_present_sum
from ..nn.tensor import Tensor, is_grad_enabled
from .aggregators import PassStepAggregator, Sink, _acc

__all__ = ["run_pass", "AggregateCombineStep"]


class AggregateCombineStep:
    """Closed-form per-group step: AGGREGATE + GRU COMBINE, numpy in/out.

    Delegates the aggregation maths to the aggregator's ``step_*`` hooks
    and owns the GRU side.  ``fixed_x`` concatenates the group's
    pre-gathered gate-type rows into the GRU input (DeepGate's
    ``fixed_x`` input mode); ``use_edge_attr`` feeds each group's
    precomputed edge-attribute block to the aggregator (skip
    connections; attention only).
    """

    def __init__(
        self,
        aggregate: PassStepAggregator,
        combine,
        fixed_x: bool = False,
        use_edge_attr: bool = False,
    ):
        self.aggregate = aggregate
        self.combine = combine
        self.fixed_x = fixed_x
        self.use_edge_attr = (
            use_edge_attr and getattr(aggregate, "w_edge", None) is not None
        )

    def _edge_attr(self, group: CompiledGroup) -> Optional[np.ndarray]:
        return group.edge_attr if self.use_edge_attr else None

    def params(self) -> List[Tensor]:
        """Every parameter the pass node must list as a parent."""
        return [p for _, p in self.aggregate.named_parameters()] + [
            self.combine.w_ih, self.combine.b_ih,
            self.combine.w_hh, self.combine.b_hh,
        ]

    def begin(self, hd: np.ndarray) -> Tuple[np.ndarray, object]:
        """Per-pass pre-projections over the pass-input state."""
        c = self.combine
        return hd @ c.w_hh.data + c.b_hh.data, self.aggregate.step_begin(hd)

    def forward(
        self,
        group: CompiledGroup,
        h_src: np.ndarray,
        query: np.ndarray,
        gh_full: np.ndarray,
        agg_ctx,
    ) -> Tuple[np.ndarray, tuple]:
        m, agg_saved = self.aggregate.step_forward(
            group, h_src, agg_ctx, self._edge_attr(group)
        )
        x_in = (
            np.concatenate([m, group.x_rows], axis=1) if self.fixed_x else m
        )
        c = self.combine
        out, gru_saved = kernels.gru_pre_forward_np(
            x_in, query, gh_full[group.nodes], c.w_ih.data, c.b_ih.data
        )
        return out, (x_in, agg_saved, gru_saved)

    def begin_backward(self, hd: np.ndarray) -> Tuple[Sink, Sink]:
        """Zeroed per-pass gradient accumulation buffers."""
        c = self.combine
        gru_sink: Sink = {
            "dgh": np.zeros((hd.shape[0], c.w_hh.data.shape[1]), np.float32),
            "dw_ih": np.zeros_like(c.w_ih.data),
            "db_ih": np.zeros_like(c.b_ih.data),
        }
        return gru_sink, self.aggregate.step_sink(hd)

    def backward(
        self,
        group: CompiledGroup,
        grad: np.ndarray,
        h_src: np.ndarray,
        query: np.ndarray,
        saved: tuple,
        gru_sink: Sink,
        agg_sink: Sink,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One group's gradients: returns ``(dh_src, dquery)``."""
        x_in, agg_saved, gru_saved = saved
        c = self.combine
        dx, dquery, dgh, dw_ih, db_ih = kernels.gru_pre_backward_np(
            grad, x_in, query, c.w_ih.data, gru_saved
        )
        gru_sink["dgh"][group.nodes] = dgh
        gru_sink["dw_ih"] += dw_ih
        gru_sink["db_ih"] += db_ih
        dm = (
            np.ascontiguousarray(dx[:, : query.shape[1]])
            if self.fixed_x
            else dx
        )
        dh_src = self.aggregate.step_backward(
            group, dm, h_src, agg_saved, agg_sink, self._edge_attr(group)
        )
        return dh_src, dquery

    def end_backward(
        self,
        hd: np.ndarray,
        gru_sink: Sink,
        agg_sink: Sink,
        dh: Optional[np.ndarray],
    ) -> None:
        """Fold the batched per-pass gradients into the parameters (and,
        when the pass input needs one, the hidden-state gradient)."""
        c = self.combine
        dgh = gru_sink["dgh"]
        _acc(c.w_hh, hd.T @ dgh)
        _acc(c.b_hh, dgh.sum(axis=0))
        if dh is not None:
            dh += dgh @ c.w_hh.data.T
        self.aggregate.step_end(hd, agg_sink, dh)
        _acc(c.w_ih, gru_sink["dw_ih"])
        _acc(c.b_ih, gru_sink["db_ih"])


def _regather_sources(
    hd: np.ndarray, work: np.ndarray, group: CompiledGroup
) -> np.ndarray:
    """Reconstruct the source rows a group read during the forward.

    The schedule is topological: no source row is written after the
    group reads it, so rows from producer ``-1`` still sit unchanged in
    the pass input ``hd`` and rows from earlier groups sit in the final
    working matrix ``work`` (each node is written exactly once).
    Re-gathering here keeps the per-group ``(E_g, d)`` snapshots out of
    the saved state.
    """
    plan = group.gather_plan
    if len(plan) == 1 and plan[0].positions is None:
        base = hd if plan[0].producer < 0 else work
        return base[group.src]
    out = np.empty((len(group.src),) + hd.shape[1:], hd.dtype)
    for split in plan:
        base = hd if split.producer < 0 else work
        out[split.positions] = base[group.src[split.positions]]
    return out


def run_pass(
    h: Tensor, schedule: CompiledSchedule, step: AggregateCombineStep
) -> Tensor:
    """Run one compiled propagation pass as a single autograd node."""
    if not schedule.groups:
        return h
    hd = h.data
    params = step.params()
    record = is_grad_enabled() and (
        h.requires_grad or any(p.requires_grad for p in params)
    )
    gh_full, agg_ctx = step.begin(hd)
    work = hd.copy()
    saved_all: List[tuple] = []
    for group in schedule.groups:
        h_src = work[group.src]
        query = hd[group.nodes]
        out, saved = step.forward(group, h_src, query, gh_full, agg_ctx)
        work[group.nodes] = out
        if record:
            saved_all.append(saved)
    groups = schedule.groups
    written = schedule.written

    def backward(grad: np.ndarray) -> None:
        gru_sink, agg_sink = step.begin_backward(hd)
        # gwork[n] = running gradient w.r.t. whichever rows the pass's
        # working matrix held at the point each group read them; walking
        # groups in reverse means every later consumer has contributed
        # by the time a group's own rows are read off
        gwork = grad.copy()
        need_dh = h.requires_grad
        dh = np.zeros_like(hd) if need_dh else None
        for group, saved in zip(reversed(groups), reversed(saved_all)):
            g_out = gwork[group.nodes]
            h_src = _regather_sources(hd, work, group)
            query = hd[group.nodes]
            dh_src, dquery = step.backward(
                group, g_out, h_src, query, saved, gru_sink, agg_sink
            )
            if need_dh:
                dh[group.nodes] += dquery
            for split in group.gather_plan:
                g = (
                    dh_src
                    if split.positions is None
                    else dh_src[split.positions]
                )
                rows, sums = segment_present_sum(g, split.layout)
                if split.producer < 0:
                    if need_dh:
                        dh[rows] += sums
                else:
                    gwork[groups[split.producer].nodes[rows]] += sums
        step.end_backward(hd, gru_sink, agg_sink, dh)
        if need_dh:
            # rows never written flow straight through to the pass input
            gwork[written] = 0.0
            dh += gwork
            h._accumulate(dh, own=True)

    return Tensor._make(work, (h, *params), backward)
