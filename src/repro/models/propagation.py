"""Compiled propagation pass execution: the models' shared fast path.

A propagation pass (one forward or reverse sweep over a level schedule)
used to pay a full ``(N, d)`` state copy per level through
:func:`~repro.nn.functional.scatter_rows`.  Because a pass writes each node
at most once, :func:`run_pass` instead keeps ONE working matrix that is
updated in place as groups are processed, while the autograd graph tracks
each group's freshly-computed rows directly:

* sources are gathered from the working matrix in a single fancy-index;
  the backward routes gradient slices to the producing group's output
  tensor (or the pass input) via the schedule's precomputed provenance
  plan, pre-reducing repeated rows with the cached segment layouts;
* the updated state materialises into a tensor once per pass — the
  working matrix itself becomes the output's data.

Both DeepGate's recurrent layers and the layered baselines run their
passes through this module; each supplies a ``step`` callback computing
the updated rows for one group (aggregate + combine).
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..graphdata.batching import CompiledGroup, CompiledSchedule
from ..nn.kernels import segment_present_sum
from ..nn.tensor import Tensor

__all__ = ["run_pass"]

#: step(group, h_src, query) -> updated rows for ``group.nodes``
StepFn = Callable[[CompiledGroup, Tensor, Tensor], Tensor]


def _gather_sources(
    work: np.ndarray, group: CompiledGroup, producers: List[Tensor]
) -> Tensor:
    """Edge-source rows for one group, gathered from the working matrix.

    Forward is one fancy-index over ``work``; backward scatters gradient
    slices back to each producer named by the group's provenance plan.
    """
    data = work[group.src]
    plan = group.gather_plan
    parents = tuple(producers[split.producer + 1] for split in plan)

    def backward(grad: np.ndarray) -> None:
        for split in plan:
            target = producers[split.producer + 1]
            if not target.requires_grad:
                continue
            g = grad if split.positions is None else grad[split.positions]
            rows, sums = segment_present_sum(g, split.layout)
            target._accumulate_rows(rows, sums)

    return Tensor._make(data, parents, backward)


def _gather_query(h: Tensor, nodes: np.ndarray) -> Tensor:
    """The group's own pre-update rows.

    A pass writes each node once, at its own group — so the query rows
    always come from the pass *input* state, never from an earlier group,
    and the backward can write (not add) into the touched rows.
    """
    data = h.data[nodes]

    def backward(grad: np.ndarray) -> None:
        if h.requires_grad:
            h._accumulate_rows(nodes, grad)

    return Tensor._make(data, (h,), backward)


def run_pass(h: Tensor, schedule: CompiledSchedule, step: StepFn) -> Tensor:
    """Run one compiled propagation pass; returns the updated state."""
    if not schedule.groups:
        return h
    work = h.data.copy()
    producers: List[Tensor] = [h]
    for group in schedule.groups:
        h_src = _gather_sources(work, group, producers)
        query = _gather_query(h, group.nodes)
        h_new = step(group, h_src, query)
        work[group.nodes] = h_new.data
        producers.append(h_new)
    outputs = producers[1:]
    groups = schedule.groups
    written = schedule.written

    def backward(grad: np.ndarray) -> None:
        for group, out in zip(groups, outputs):
            if out.requires_grad:
                out._accumulate(grad[group.nodes], own=True)
        if h.requires_grad:
            gh = grad.copy()
            gh[written] = 0.0
            h._accumulate(gh, own=True)

    return Tensor._make(work, (h, *outputs), backward)
