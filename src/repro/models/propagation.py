"""Compiled propagation pass execution: the models' shared fast path.

A propagation pass (one forward or reverse sweep over a level schedule)
used to pay a full ``(N, d)`` state copy per level, then — after PR 4 —
one autograd node per level group.  Deep circuits have hundreds of level
groups of a handful of nodes each, so per-group graph bookkeeping (node
construction, closures, parameter accumulation, small matmuls) dominated
the numbers being crunched.  :func:`run_pass` now records the ENTIRE
pass as one autograd node:

* the forward walks the level groups in plain numpy, gathering sources
  from a single working matrix and running the closed-form aggregator +
  GRU kernels of :mod:`repro.nn.kernels` (per-design logic lives on the
  aggregator classes as ``step_*`` hooks — see
  :class:`~repro.models.aggregators.PassStepAggregator`);
* the backward replays the groups in reverse, routing source gradients
  to their producing groups through the schedule's precomputed
  provenance plans — source and query values are re-gathered from the
  retained pass input/output matrices rather than saved per group;
* everything that does not depend on mid-pass state is batched per pass:
  the GRU's recurrent input transform ``h @ W_hh + b_hh`` (one GEMM over
  the pass-input state instead of one per group — its gradient likewise
  materialises once, from the per-group gate gradients), the attention
  query scores ``h @ w_q``, and all parameter gradients, which
  accumulate into flat numpy buffers and hit the parameter tensors once
  per pass.

Two execution layouts (:data:`PASS_LAYOUTS`) decide how far the batching
goes:

* ``"block"`` (the default) runs over the schedule's
  :class:`~repro.graphdata.batching.PassBlock` layout: the static share
  of the GRU input transform (``x_rows @ W_ih[t:] + b_ih``) is ONE GEMM
  per pass; per-group backward intermediates (gate-input gradients,
  messages, aggregator activations) land in contiguous pass-wide
  buffers via slice writes; and every parameter gradient contracts
  those buffers in one GEMM per parameter at pass end instead of one
  small GEMM per group.
* ``"per_group"`` keeps the PR-5 behaviour — parameter-gradient GEMMs
  per group, accumulated into flat sinks — and serves as the close-in
  equivalence oracle for the block layout (both are checked against the
  uncompiled reference).

The layout is a per-process choice: ``REPRO_PASS_LAYOUT`` in the
environment, :func:`set_pass_layout` from code, or the
:func:`use_pass_layout` context manager in tests.  Every GEMM on either
layout runs through the pluggable backend seam
(:mod:`repro.nn.backends`).

A note on *batch interleaving*: level groups are keyed by level value,
so when a batch merges several circuits (``graphdata.merge`` /
``merge_schedules``), nodes of different circuits at the same level
share one group — the pass depth is the *maximum* circuit depth, not
the sum.  Circuits never share edges, so this interleaving is exact,
and it is already optimal: within one circuit every level-``L`` AND
node has a fanin at level ``L-1``, so a circuit's own chain cannot be
shortened.  (``tests/graphdata`` pins this with a merged-vs-single
group-count test.)

Both DeepGate's recurrent layers and the layered baselines run their
passes through this module via an :class:`AggregateCombineStep` — the
fused AGGREGATE (any of the paper's four Table II designs) + GRU COMBINE
step.  The aggregator modules keep equivalent single-node fused paths
for direct use; the reference composite formulation (``compiled=False``)
remains the equivalence-test oracle.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..graphdata.batching import (
    FRONTIER,
    PASS_INPUT,
    CompiledGroup,
    CompiledSchedule,
    PassBlock,
    Window,
    WindowedSchedule,
)
from ..nn import kernels
from ..nn.backends import matmul as _mm
from ..nn.kernels import segment_present_sum
from ..nn.tensor import Tensor, is_grad_enabled
from .aggregators import PassStepAggregator, Sink, _acc
from .statestore import StateStore

__all__ = [
    "run_pass",
    "AggregateCombineStep",
    "PASS_LAYOUTS",
    "LAYOUT_ENV_VAR",
    "get_pass_layout",
    "set_pass_layout",
    "use_pass_layout",
    "WINDOW_ENV_VAR",
    "get_window_budget",
    "set_window_budget",
    "use_window_budget",
    "get_window_stats",
    "reset_window_stats",
    "GEMM_CHUNK_ROWS",
]

#: the execution layouts run_pass understands
PASS_LAYOUTS = ("block", "per_group")

LAYOUT_ENV_VAR = "REPRO_PASS_LAYOUT"

_active_layout: Optional[str] = None


def _check_layout(name: str, source: str) -> str:
    if name not in PASS_LAYOUTS:
        raise ValueError(
            f"unknown pass layout {name!r} (from {source}); "
            f"valid layouts: {', '.join(PASS_LAYOUTS)}"
        )
    return name


def get_pass_layout() -> str:
    """The process's active layout, resolving the env var on first use."""
    global _active_layout
    if _active_layout is None:
        name = os.environ.get(LAYOUT_ENV_VAR, "").strip()
        _active_layout = (
            _check_layout(name, f"${LAYOUT_ENV_VAR}") if name else "block"
        )
    return _active_layout


def set_pass_layout(name: str) -> str:
    """Activate a layout by name; returns it."""
    global _active_layout
    _active_layout = _check_layout(name, "set_pass_layout")
    return _active_layout


@contextmanager
def use_pass_layout(name: str):
    """Temporarily activate a layout; restores the previous one on exit."""
    global _active_layout
    previous = _active_layout
    try:
        yield set_pass_layout(name)
    finally:
        _active_layout = previous


# ---------------------------------------------------------------------------
# window budget (streaming propagation knob)
# ---------------------------------------------------------------------------

WINDOW_ENV_VAR = "REPRO_WINDOW_BUDGET"

_UNSET = object()
_active_window_budget: object = _UNSET


def _check_window_budget(value: Optional[int], source: str) -> Optional[int]:
    if value is None:
        return None
    budget = int(value)
    if budget < 1:
        raise ValueError(
            f"window budget must be >= 1 or None (from {source}); "
            f"got {value!r}"
        )
    return budget


def get_window_budget() -> Optional[int]:
    """The process's window node budget; ``None`` = full (unwindowed).

    Resolves ``REPRO_WINDOW_BUDGET`` on first use: unset, empty, ``0``,
    ``off`` or ``full`` disable windowing; a positive integer caps the
    written-node count per window.
    """
    global _active_window_budget
    if _active_window_budget is _UNSET:
        raw = os.environ.get(WINDOW_ENV_VAR, "").strip()
        if not raw or raw.lower() in ("0", "off", "full", "none"):
            _active_window_budget = None
        else:
            try:
                value = int(raw)
            except ValueError:
                raise ValueError(
                    f"${WINDOW_ENV_VAR} must be an integer node budget, "
                    f"got {raw!r}"
                ) from None
            _active_window_budget = _check_window_budget(
                value, f"${WINDOW_ENV_VAR}"
            )
    return _active_window_budget  # type: ignore[return-value]


def set_window_budget(budget: Optional[int]) -> Optional[int]:
    """Activate a window node budget (``None`` disables windowing)."""
    global _active_window_budget
    _active_window_budget = _check_window_budget(budget, "set_window_budget")
    return _active_window_budget


@contextmanager
def use_window_budget(budget: Optional[int]):
    """Temporarily activate a window budget; restores the previous one."""
    global _active_window_budget
    previous = _active_window_budget
    try:
        yield set_window_budget(budget)
    finally:
        _active_window_budget = previous


#: streaming-pass counters since the last :func:`reset_window_stats`
_WINDOW_STATS: Dict[str, int] = {}


def reset_window_stats() -> None:
    """Zero the cumulative windowed-pass counters."""
    _WINDOW_STATS.update(
        passes=0,
        windows=0,
        frontier_rows=0,
        frontier_bytes=0,
        spills=0,
        reloads=0,
        store_peak_bytes=0,
    )


reset_window_stats()


def get_window_stats() -> Dict[str, int]:
    """Cumulative windowed-pass counters (passes, windows, frontier rows
    and bytes carried, store spills/reloads, peak store residency)."""
    return dict(_WINDOW_STATS)


# ---------------------------------------------------------------------------
# fixed-extent GEMM chunking (the windowed/full bitwise convention)
# ---------------------------------------------------------------------------

#: Row-chunk size for pass-wide affine pre-projections (``h @ W_hh +
#: b_hh`` over the node axis, ``x_rows @ W_ih[d:] + b_ih`` over the
#: written axis).  Both the full and the windowed runners compute these
#: through identical globally-aligned chunk extents — never through
#: window-sized GEMMs — because BLAS results for a row subset of a GEMM
#: are only guaranteed bitwise-equal to the full product when the chunk
#: extents match exactly.  The constant is budget-independent, so every
#: window budget reproduces the full pass's output bits; every existing
#: suite has fewer rows than one chunk, so the full path's bits are
#: unchanged from the single-GEMM code it replaces.
GEMM_CHUNK_ROWS = 32768


def _affine_chunked(a: np.ndarray, w: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ w + b`` computed in :data:`GEMM_CHUNK_ROWS` row chunks.

    For ``len(a) <= GEMM_CHUNK_ROWS`` this is exactly the single GEMM
    the full path always ran.
    """
    chunk = GEMM_CHUNK_ROWS
    n = a.shape[0]
    if n <= chunk:
        return _mm(a, w) + b
    out = np.empty((n, w.shape[1]), np.float32)
    for c0 in range(0, n, chunk):
        c1 = min(c0 + chunk, n)
        out[c0:c1] = _mm(a[c0:c1], w) + b
    return out


class _ChunkedAffine:
    """On-demand rows of ``rows(c0, c1) @ w + b`` in fixed chunk extents.

    The windowed runner's view of a pass-wide affine pre-projection:
    chunks are computed lazily with the same globally-aligned extents as
    :func:`_affine_chunked` (so any access pattern sees the same bits as
    the full path) and a small FIFO cache holds recent chunks — window
    access is approximately monotone over the row axis, so in practice
    each chunk is computed about once per pass while residency stays
    bounded at ``max_cached`` chunks.
    """

    def __init__(
        self,
        row_source: Callable[[int, int], np.ndarray],
        num_rows: int,
        w: np.ndarray,
        b: np.ndarray,
        max_cached: int = 4,
    ):
        self._row_source = row_source
        self._num_rows = num_rows
        self._w = w
        self._b = b
        self._max_cached = max(1, max_cached)
        self._cache: Dict[int, np.ndarray] = {}

    def _chunk(self, ci: int) -> np.ndarray:
        cached = self._cache.get(ci)
        if cached is not None:
            return cached
        chunk = GEMM_CHUNK_ROWS
        c0 = ci * chunk
        c1 = min(c0 + chunk, self._num_rows)
        value = _mm(self._row_source(c0, c1), self._w) + self._b
        while len(self._cache) >= self._max_cached:
            self._cache.pop(next(iter(self._cache)))
        self._cache[ci] = value
        return value

    def rows(self, ids: np.ndarray) -> np.ndarray:
        """The projected rows ``ids`` (arbitrary order, with repeats)."""
        chunk = GEMM_CHUNK_ROWS
        ci = ids // chunk
        unique_ci = np.unique(ci)
        if len(unique_ci) == 1:
            base = int(unique_ci[0]) * chunk
            return self._chunk(int(unique_ci[0]))[ids - base]
        out = np.empty((len(ids), self._w.shape[1]), np.float32)
        for u in unique_ci:
            mask = ci == u
            out[mask] = self._chunk(int(u))[ids[mask] - int(u) * chunk]
        return out

    def row_range(self, r0: int, r1: int) -> np.ndarray:
        """The projected rows ``[r0, r1)`` (a contiguous row range)."""
        chunk = GEMM_CHUNK_ROWS
        if r1 <= r0:
            return np.zeros((0, self._w.shape[1]), np.float32)
        first = r0 // chunk
        last = (r1 - 1) // chunk
        if first == last:
            base = first * chunk
            return self._chunk(first)[r0 - base:r1 - base]
        out = np.empty((r1 - r0, self._w.shape[1]), np.float32)
        for ci in range(first, last + 1):
            c0 = ci * chunk
            c1 = min(c0 + chunk, self._num_rows)
            a0, a1 = max(c0, r0), min(c1, r1)
            out[a0 - r0:a1 - r0] = self._chunk(ci)[a0 - c0:a1 - c0]
        return out


class AggregateCombineStep:
    """Closed-form per-group step: AGGREGATE + GRU COMBINE, numpy in/out.

    Delegates the aggregation maths to the aggregator's ``step_*`` hooks
    and owns the GRU side.  ``fixed_x`` concatenates the group's
    pre-gathered gate-type rows into the GRU input (DeepGate's
    ``fixed_x`` input mode); ``use_edge_attr`` feeds each group's
    precomputed edge-attribute block to the aggregator (skip
    connections; attention only).

    The ``*_block`` variants implement the pass-wide block layout: the
    static input-transform share is precomputed in :meth:`begin`, gate
    gradients and messages land in contiguous pass buffers, and
    :meth:`end_backward` contracts them into the parameter gradients
    with one GEMM each.
    """

    def __init__(
        self,
        aggregate: PassStepAggregator,
        combine,
        fixed_x: bool = False,
        use_edge_attr: bool = False,
    ):
        self.aggregate = aggregate
        self.combine = combine
        self.fixed_x = fixed_x
        self.use_edge_attr = (
            use_edge_attr and getattr(aggregate, "w_edge", None) is not None
        )

    def _edge_attr(self, group: CompiledGroup) -> Optional[np.ndarray]:
        return group.edge_attr if self.use_edge_attr else None

    def params(self) -> List[Tensor]:
        """Every parameter the pass node must list as a parent."""
        return [p for _, p in self.aggregate.named_parameters()] + [
            self.combine.w_ih, self.combine.b_ih,
            self.combine.w_hh, self.combine.b_hh,
        ]

    def begin(
        self, hd: np.ndarray, block: Optional[PassBlock] = None
    ) -> Tuple[np.ndarray, object, Optional[np.ndarray]]:
        """Per-pass pre-projections over the pass-input state.

        Returns ``(gh_full, agg_ctx, gi_static)``; on the block layout
        with ``fixed_x``, ``gi_static`` is the whole pass's static GRU
        input-transform share ``x_rows @ W_ih[d:] + b_ih`` in one GEMM
        (sliced per group, replacing the per-group concatenate).
        """
        c = self.combine
        gh_full = _affine_chunked(hd, c.w_hh.data, c.b_hh.data)
        gi_static = None
        if block is not None and self.fixed_x:
            d = hd.shape[1]
            gi_static = _affine_chunked(
                block.x_rows, c.w_ih.data[d:], c.b_ih.data
            )
        return gh_full, self.aggregate.step_begin(hd), gi_static

    def forward(
        self,
        group: CompiledGroup,
        h_src: np.ndarray,
        query: np.ndarray,
        gh_rows: np.ndarray,
        agg_ctx,
    ) -> Tuple[np.ndarray, tuple]:
        m, agg_saved = self.aggregate.step_forward(
            group, h_src, agg_ctx, self._edge_attr(group)
        )
        x_in = (
            np.concatenate([m, group.x_rows], axis=1) if self.fixed_x else m
        )
        c = self.combine
        out, gru_saved = kernels.gru_pre_forward_np(
            x_in, query, gh_rows, c.w_ih.data, c.b_ih.data
        )
        return out, (x_in, agg_saved, gru_saved)

    def forward_block(
        self,
        group: CompiledGroup,
        h_src: np.ndarray,
        query: np.ndarray,
        gh_rows: np.ndarray,
        agg_ctx,
        gi_static: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, tuple]:
        """Block-layout group forward: the GRU input transform splits
        into the precomputed static share plus a message-only GEMM."""
        m, agg_saved = self.aggregate.step_forward(
            group, h_src, agg_ctx, self._edge_attr(group)
        )
        c = self.combine
        if gi_static is not None:
            o0 = group.node_offset
            d = query.shape[1]
            gi = _mm(m, c.w_ih.data[:d]) + gi_static[o0:o0 + len(group.nodes)]
        else:
            gi = _mm(m, c.w_ih.data) + c.b_ih.data
        out, gru_saved = kernels.gru_gates_np(gi, gh_rows, query)
        # h_src is already a fresh gather the runner made for this group:
        # retaining it trades a little saved-state memory for skipping the
        # per-group re-gather in the reverse walk (the per_group layout
        # keeps the memory-lean _regather_sources path)
        return out, (m, agg_saved, gru_saved, h_src)

    def begin_backward(
        self, hd: np.ndarray, block: Optional[PassBlock] = None
    ) -> Tuple[Sink, Sink]:
        """Zeroed per-pass gradient accumulation buffers."""
        c = self.combine
        if block is None:
            gru_sink: Sink = {
                "dgh": np.zeros(
                    (hd.shape[0], c.w_hh.data.shape[1]), np.float32
                ),
                "dw_ih": np.zeros_like(c.w_ih.data),
                "db_ih": np.zeros_like(c.b_ih.data),
            }
        else:
            # block layout: every per-group gradient lands in a contiguous
            # pass-wide buffer (written-node order), scattered/contracted
            # exactly once in end_backward
            n_w = block.num_written
            gru_sink = {
                "dgh": np.empty((n_w, c.w_hh.data.shape[1]), np.float32),
                "dgi": np.empty((n_w, c.w_ih.data.shape[1]), np.float32),
                "m": np.empty((n_w, hd.shape[1]), np.float32),
                "dq": np.empty((n_w, hd.shape[1]), np.float32),
            }
        return gru_sink, self.aggregate.step_sink(hd, block)

    def backward(
        self,
        group: CompiledGroup,
        grad: np.ndarray,
        h_src: np.ndarray,
        query: np.ndarray,
        saved: tuple,
        gru_sink: Sink,
        agg_sink: Sink,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One group's gradients: returns ``(dh_src, dquery)``."""
        x_in, agg_saved, gru_saved = saved
        c = self.combine
        dx, dquery, dgh, dw_ih, db_ih = kernels.gru_pre_backward_np(
            grad, x_in, query, c.w_ih.data, gru_saved
        )
        gru_sink["dgh"][group.nodes] = dgh
        gru_sink["dw_ih"] += dw_ih
        gru_sink["db_ih"] += db_ih
        dm = (
            np.ascontiguousarray(dx[:, : query.shape[1]])
            if self.fixed_x
            else dx
        )
        dh_src = self.aggregate.step_backward(
            group, dm, h_src, agg_saved, agg_sink, self._edge_attr(group)
        )
        return dh_src, dquery

    def backward_block(
        self,
        group: CompiledGroup,
        grad: np.ndarray,
        h_src: np.ndarray,
        query: np.ndarray,
        saved: tuple,
        gru_sink: Sink,
        agg_sink: Sink,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Block-layout group backward: gate-input gradients and messages
        land in the pass buffers; no per-group parameter GEMMs."""
        m, agg_saved, gru_saved, _ = saved
        c = self.combine
        o0 = group.node_offset
        o1 = o0 + len(group.nodes)
        dgi, _ = kernels.gru_gates_backward_np(
            grad, query, gru_saved,
            out_gi=gru_sink["dgi"][o0:o1],
            out_gh=gru_sink["dgh"][o0:o1],
        )
        gru_sink["m"][o0:o1] = m
        # the direct z*h query path, landed in the pass buffer and folded
        # into dh once in end_backward
        np.multiply(grad, gru_saved[1], out=gru_sink["dq"][o0:o1])
        w_ih = c.w_ih.data
        dm = _mm(dgi, w_ih[: query.shape[1]].T if self.fixed_x else w_ih.T)
        dh_src = self.aggregate.step_backward_block(
            group, dm, h_src, agg_saved, agg_sink, self._edge_attr(group)
        )
        return dh_src, None

    def end_backward(
        self,
        hd: np.ndarray,
        gru_sink: Sink,
        agg_sink: Sink,
        dh: Optional[np.ndarray],
        block: Optional[PassBlock] = None,
    ) -> None:
        """Fold the batched per-pass gradients into the parameters (and,
        when the pass input needs one, the hidden-state gradient)."""
        c = self.combine
        dgh = gru_sink["dgh"]
        if block is None:
            _acc(c.w_hh, _mm(hd.T, dgh))
            _acc(c.b_hh, dgh.sum(axis=0))
            if dh is not None:
                dh += _mm(dgh, c.w_hh.data.T)
            self.aggregate.step_end(hd, agg_sink, dh)
            _acc(c.w_ih, gru_sink["dw_ih"])
            _acc(c.b_ih, gru_sink["db_ih"])
            return
        # dgh is (num_written, 3h) in written order: contract against the
        # gathered query rows and scatter the recurrent grad back once
        # (written nodes are unique, so fancy += is exact)
        hdw = hd[block.written]
        _acc(c.w_hh, _mm(hdw.T, dgh))
        _acc(c.b_hh, dgh.sum(axis=0))
        if dh is not None:
            dhw = _mm(dgh, c.w_hh.data.T)
            dhw += gru_sink["dq"]  # per-group direct z*h query grads
            dh[block.written] += dhw
        self.aggregate.step_end(hd, agg_sink, dh)
        dgi_all = gru_sink["dgi"]
        dw_m = _mm(gru_sink["m"].T, dgi_all)
        if self.fixed_x:
            dw_ih = np.concatenate(
                [dw_m, _mm(block.x_rows.T, dgi_all)], axis=0
            )
        else:
            dw_ih = dw_m
        _acc(c.w_ih, dw_ih)
        _acc(c.b_ih, dgi_all.sum(axis=0))

    # -- windowed (streaming) per_group variants -----------------------

    def backward_windowed(
        self,
        group: CompiledGroup,
        grad: np.ndarray,
        h_src: np.ndarray,
        query: np.ndarray,
        saved: tuple,
        gru_sink: Sink,
        agg_sink: Sink,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`backward`, but the ``dgh`` sink is window-sized
        and indexed by the group's window-local node offset (the
        aggregator sink stays pass-global)."""
        x_in, agg_saved, gru_saved = saved
        c = self.combine
        dx, dquery, dgh, dw_ih, db_ih = kernels.gru_pre_backward_np(
            grad, x_in, query, c.w_ih.data, gru_saved
        )
        o0 = group.node_offset
        gru_sink["dgh"][o0:o0 + len(group.nodes)] = dgh
        gru_sink["dw_ih"] += dw_ih
        gru_sink["db_ih"] += db_ih
        dm = (
            np.ascontiguousarray(dx[:, : query.shape[1]])
            if self.fixed_x
            else dx
        )
        dh_src = self.aggregate.step_backward(
            group, dm, h_src, agg_saved, agg_sink, self._edge_attr(group)
        )
        return dh_src, dquery

    def end_window(
        self,
        q_w: np.ndarray,
        win_written: np.ndarray,
        gru_sink: Sink,
        dh: Optional[np.ndarray],
    ) -> None:
        """Contract one window's per_group ``dgh`` into the recurrent
        parameters and the hidden-state gradient (windows write disjoint
        node sets, so the fancy ``+=`` is exact)."""
        c = self.combine
        dgh = gru_sink["dgh"]
        _acc(c.w_hh, _mm(q_w.T, dgh))
        _acc(c.b_hh, dgh.sum(axis=0))
        if dh is not None:
            dh[win_written] += _mm(dgh, c.w_hh.data.T)

    def end_pass_windowed(
        self,
        hd: np.ndarray,
        gru_sink: Sink,
        agg_sink: Sink,
        dh: Optional[np.ndarray],
    ) -> None:
        """Fold the pass-global accumulators of a windowed per_group
        backward (aggregator sink, GRU input-transform grads) into the
        parameters, once per pass."""
        self.aggregate.step_end(hd, agg_sink, dh)
        c = self.combine
        _acc(c.w_ih, gru_sink["dw_ih"])
        _acc(c.b_ih, gru_sink["db_ih"])


def _regather_sources(
    hd: np.ndarray, work: np.ndarray, group: CompiledGroup
) -> np.ndarray:
    """Reconstruct the source rows a group read during the forward.

    The schedule is topological: no source row is written after the
    group reads it, so rows from producer ``-1`` still sit unchanged in
    the pass input ``hd`` and rows from earlier groups sit in the final
    working matrix ``work`` (each node is written exactly once).
    Re-gathering here keeps the per-group ``(E_g, d)`` snapshots out of
    the saved state.
    """
    plan = group.gather_plan
    if len(plan) == 1 and plan[0].positions is None:
        base = hd if plan[0].producer < 0 else work
        return base[group.src]
    out = np.empty((len(group.src),) + hd.shape[1:], hd.dtype)
    for split in plan:
        base = hd if split.producer < 0 else work
        out[split.positions] = base[group.src[split.positions]]
    return out


def run_pass(
    h: Tensor,
    schedule: Union[CompiledSchedule, WindowedSchedule],
    step: AggregateCombineStep,
    layout: Optional[str] = None,
) -> Tensor:
    """Run one compiled propagation pass as a single autograd node.

    ``layout`` picks the execution layout (see :data:`PASS_LAYOUTS`);
    ``None`` uses the process default from :func:`get_pass_layout`.
    A :class:`~repro.graphdata.batching.WindowedSchedule` runs the
    streaming bounded-memory path (:func:`_run_pass_windowed`), which
    produces bitwise-identical outputs to the full pass.
    """
    if layout is None:
        layout = get_pass_layout()
    else:
        _check_layout(layout, "run_pass")
    if isinstance(schedule, WindowedSchedule):
        return _run_pass_windowed(h, schedule, step, layout)
    if not schedule.groups:
        return h
    block = schedule.block() if layout == "block" else None
    hd = h.data
    params = step.params()
    record = is_grad_enabled() and (
        h.requires_grad or any(p.requires_grad for p in params)
    )
    gh_full, agg_ctx, gi_static = step.begin(hd, block)
    work = hd.copy()
    saved_all: List[tuple] = []
    q_all: Optional[np.ndarray] = None
    if block is not None:
        # one batched gather each for the query rows and their recurrent
        # pre-activations; groups then take contiguous views
        q_all = hd[schedule.written]
        gh_w = gh_full[schedule.written]
        for group in schedule.groups:
            o0 = group.node_offset
            o1 = o0 + len(group.nodes)
            h_src = work[group.src]
            out, saved = step.forward_block(
                group, h_src, q_all[o0:o1], gh_w[o0:o1], agg_ctx, gi_static
            )
            work[group.nodes] = out
            if record:
                saved_all.append(saved)
    else:
        for group in schedule.groups:
            h_src = work[group.src]
            query = hd[group.nodes]
            out, saved = step.forward(
                group, h_src, query, gh_full[group.nodes], agg_ctx
            )
            work[group.nodes] = out
            if record:
                saved_all.append(saved)
    groups = schedule.groups
    written = schedule.written

    def backward(grad: np.ndarray) -> None:
        gru_sink, agg_sink = step.begin_backward(hd, block)
        # gwork[n] = running gradient w.r.t. whichever rows the pass's
        # working matrix held at the point each group read them; walking
        # groups in reverse means every later consumer has contributed
        # by the time a group's own rows are read off
        gwork = grad.copy()
        need_dh = h.requires_grad
        dh = np.zeros_like(hd) if need_dh else None
        group_backward = (
            step.backward_block if block is not None else step.backward
        )
        for group, saved in zip(reversed(groups), reversed(saved_all)):
            g_out = gwork[group.nodes]
            if block is not None:
                # block forwards retain their gather; the per_group
                # layout re-derives it to keep saved state lean
                h_src = saved[3]
                o0 = group.node_offset
                query = q_all[o0:o0 + len(group.nodes)]
            else:
                h_src = _regather_sources(hd, work, group)
                query = hd[group.nodes]
            dh_src, dquery = group_backward(
                group, g_out, h_src, query, saved, gru_sink, agg_sink
            )
            if need_dh and dquery is not None:
                dh[group.nodes] += dquery
            for split in group.gather_plan:
                g = (
                    dh_src
                    if split.positions is None
                    else dh_src[split.positions]
                )
                rows, sums = segment_present_sum(g, split.layout)
                if split.producer < 0:
                    if need_dh:
                        dh[rows] += sums
                else:
                    gwork[groups[split.producer].nodes[rows]] += sums
        step.end_backward(hd, gru_sink, agg_sink, dh, block)
        if need_dh:
            # rows never written flow straight through to the pass input
            gwork[written] = 0.0
            dh += gwork
            h._accumulate(dh, own=True)

    return Tensor._make(work, (h, *params), backward)


# ---------------------------------------------------------------------------
# windowed (streaming) pass execution
# ---------------------------------------------------------------------------


def _gather_window_sources(
    hd: np.ndarray,
    ext_vals: Optional[np.ndarray],
    wouts: List[np.ndarray],
    group: CompiledGroup,
) -> np.ndarray:
    """Reconstruct a group's source rows from window-bounded state only.

    Rows come from the pass input (``hd``), the window's frontier
    snapshot (``ext_vals`` — the rows earlier windows carried across the
    boundary) or the outputs of earlier groups *in this window*
    (``wouts``) — never from a full ``(N, d)`` working matrix, which is
    what makes the reverse re-stream's resident state bounded.  The
    splits' ``layout.segment_ids`` double as the gather index arrays.
    """
    plan = group.gather_plan
    if len(plan) == 1 and plan[0].positions is None:
        split = plan[0]
        if split.producer == PASS_INPUT:
            return hd[group.src]
        if split.producer == FRONTIER:
            return ext_vals[split.layout.segment_ids]
        return wouts[split.producer][split.layout.segment_ids]
    out = np.empty((len(group.src),) + hd.shape[1:], hd.dtype)
    for split in plan:
        idx = split.layout.segment_ids
        if split.producer == PASS_INPUT:
            vals = hd[idx]
        elif split.producer == FRONTIER:
            vals = ext_vals[idx]
        else:
            vals = wouts[split.producer][idx]
        out[split.positions] = vals
    return out


def _route_window_grads(
    group: CompiledGroup,
    dh_src: np.ndarray,
    win: Window,
    gwork: np.ndarray,
    dh: Optional[np.ndarray],
    need_dh: bool,
) -> None:
    """Scatter a group's source gradients to their producers.

    Identical to the full runner's routing, except frontier splits land
    on the global rows named by the window's ``ext_rows`` cut set (those
    producers live in earlier windows, visited later in the reverse
    stream) and in-window producers are window-local.
    """
    for split in group.gather_plan:
        g = dh_src if split.positions is None else dh_src[split.positions]
        rows, sums = segment_present_sum(g, split.layout)
        if split.producer == PASS_INPUT:
            if need_dh:
                dh[rows] += sums
        elif split.producer == FRONTIER:
            gwork[win.ext_rows[rows]] += sums
        else:
            gwork[win.compiled.groups[split.producer].nodes[rows]] += sums


def _run_pass_windowed(
    h: Tensor,
    wsched: WindowedSchedule,
    step: AggregateCombineStep,
    layout: str,
) -> Tensor:
    """Run one pass streaming over a :class:`WindowedSchedule`.

    The forward walks windows in level order; per-window transients
    (query/pre-activation rows, group outputs) are discarded as soon as
    the window's nodes are written, and the rows each later window reads
    across a boundary are parked in a :class:`StateStore` (in-memory,
    optionally spilling to disk).  No per-group saved state is retained:
    the reverse walk re-streams windows in reverse order, *recomputing*
    each window's forward from the pass input plus its frontier snapshot,
    then running the window's backward — still one autograd node per
    pass.

    Outputs are bitwise identical to the full runner for every window
    budget: the pass-wide affine pre-projections go through the
    fixed-extent chunk convention (:data:`GEMM_CHUNK_ROWS`), and all
    remaining forward arithmetic is per-group in both runners.
    Parameter/hidden-state gradients contract per window (window-sized
    GEMM extents), so they match the full pass to float32 round-off
    rather than bitwise; the equivalence suite pins both properties.
    """
    if not wsched.windows:
        return h
    use_block = layout == "block"
    hd = h.data
    params = step.params()
    record = is_grad_enabled() and (
        h.requires_grad or any(p.requires_grad for p in params)
    )
    agg_ctx = step.aggregate.step_begin(hd)
    c = step.combine
    d = hd.shape[1]
    written_all = wsched.written
    x = wsched.x

    def _make_gh() -> _ChunkedAffine:
        return _ChunkedAffine(
            lambda c0, c1: hd[c0:c1], hd.shape[0], c.w_hh.data, c.b_hh.data
        )

    def _make_gi() -> Optional[_ChunkedAffine]:
        if not (use_block and step.fixed_x):
            return None
        return _ChunkedAffine(
            lambda c0, c1: x[written_all[c0:c1]],
            len(written_all),
            c.w_ih.data[d:],
            c.b_ih.data,
        )

    store = StateStore.from_env() if record else None
    gh = _make_gh()
    gi = _make_gi()
    work = hd.copy()
    frontier_rows = 0
    frontier_bytes = 0
    for win in wsched.windows:
        ws = win.compiled
        if store is not None and win.ext_rows.size:
            # rows from earlier windows are final (each node is written
            # once per pass), so the snapshot can be taken up front
            chunk = work[win.ext_rows]
            store.put(win.index, chunk)
            frontier_rows += len(win.ext_rows)
            frontier_bytes += chunk.nbytes
        gh_w = gh.rows(ws.written)
        if use_block:
            q_w = hd[ws.written]
            gi_w = (
                gi.row_range(win.written_start, win.written_stop)
                if gi is not None
                else None
            )
            for group in ws.groups:
                o0 = group.node_offset
                o1 = o0 + len(group.nodes)
                out, _ = step.forward_block(
                    group, work[group.src], q_w[o0:o1], gh_w[o0:o1],
                    agg_ctx, gi_w,
                )
                work[group.nodes] = out
        else:
            for group in ws.groups:
                o0 = group.node_offset
                o1 = o0 + len(group.nodes)
                out, _ = step.forward(
                    group, work[group.src], hd[group.nodes], gh_w[o0:o1],
                    agg_ctx,
                )
                work[group.nodes] = out
    _WINDOW_STATS["passes"] += 1
    _WINDOW_STATS["windows"] += len(wsched.windows)
    _WINDOW_STATS["frontier_rows"] += frontier_rows
    _WINDOW_STATS["frontier_bytes"] += frontier_bytes

    def backward(grad: np.ndarray) -> None:
        gwork = grad.copy()
        need_dh = h.requires_grad
        dh = np.zeros_like(hd) if need_dh else None
        gh_b = _make_gh()
        gi_b = _make_gi()
        if not use_block:
            # pass-global accumulators: the aggregator sink (param-shaped,
            # plus attention's dense query-score grads) and the GRU
            # input-transform grads fold into the parameters once per pass
            agg_sink = step.aggregate.step_sink(hd, None)
            gru_acc: Sink = {
                "dw_ih": np.zeros_like(c.w_ih.data),
                "db_ih": np.zeros_like(c.b_ih.data),
            }
        for win in reversed(wsched.windows):
            ws = win.compiled
            ext_vals = (
                store.get(win.index)
                if store is not None and win.ext_rows.size
                else None
            )
            gh_w = gh_b.rows(ws.written)
            q_w = hd[ws.written]
            wouts: List[np.ndarray] = []
            saveds: List[tuple] = []
            if use_block:
                gi_w = (
                    gi_b.row_range(win.written_start, win.written_stop)
                    if gi_b is not None
                    else None
                )
                for group in ws.groups:
                    o0 = group.node_offset
                    o1 = o0 + len(group.nodes)
                    h_src = _gather_window_sources(hd, ext_vals, wouts, group)
                    out, saved = step.forward_block(
                        group, h_src, q_w[o0:o1], gh_w[o0:o1], agg_ctx, gi_w
                    )
                    wouts.append(out)
                    saveds.append(saved)
                wblock = ws.block()
                gru_sink, agg_sink_w = step.begin_backward(hd, wblock)
                for group, saved in zip(reversed(ws.groups), reversed(saveds)):
                    o0 = group.node_offset
                    dh_src, _ = step.backward_block(
                        group,
                        gwork[group.nodes],
                        saved[3],
                        q_w[o0:o0 + len(group.nodes)],
                        saved,
                        gru_sink,
                        agg_sink_w,
                    )
                    _route_window_grads(group, dh_src, win, gwork, dh, need_dh)
                step.end_backward(hd, gru_sink, agg_sink_w, dh, wblock)
            else:
                srcs: List[np.ndarray] = []
                for group in ws.groups:
                    o0 = group.node_offset
                    o1 = o0 + len(group.nodes)
                    h_src = _gather_window_sources(hd, ext_vals, wouts, group)
                    out, saved = step.forward(
                        group, h_src, hd[group.nodes], gh_w[o0:o1], agg_ctx
                    )
                    wouts.append(out)
                    saveds.append(saved)
                    srcs.append(h_src)
                gru_sink = {
                    "dgh": np.empty(
                        (len(ws.written), c.w_hh.data.shape[1]), np.float32
                    ),
                    "dw_ih": gru_acc["dw_ih"],
                    "db_ih": gru_acc["db_ih"],
                }
                for group, saved, h_src in zip(
                    reversed(ws.groups), reversed(saveds), reversed(srcs)
                ):
                    dh_src, dquery = step.backward_windowed(
                        group,
                        gwork[group.nodes],
                        h_src,
                        hd[group.nodes],
                        saved,
                        gru_sink,
                        agg_sink,
                    )
                    if need_dh and dquery is not None:
                        dh[group.nodes] += dquery
                    _route_window_grads(group, dh_src, win, gwork, dh, need_dh)
                step.end_window(q_w, ws.written, gru_sink, dh)
            if store is not None and win.ext_rows.size:
                store.drop(win.index)
        if not use_block:
            step.end_pass_windowed(hd, gru_acc, agg_sink, dh)
        if store is not None:
            stats = store.stats
            _WINDOW_STATS["spills"] += stats["spills"]
            _WINDOW_STATS["reloads"] += stats["reloads"]
            _WINDOW_STATS["store_peak_bytes"] = max(
                _WINDOW_STATS["store_peak_bytes"],
                stats["peak_resident_bytes"],
            )
            store.clear()
        if need_dh:
            # rows never written flow straight through to the pass input
            gwork[written_all] = 0.0
            dh += gwork
            h._accumulate(dh, own=True)

    return Tensor._make(work, (h, *params), backward)
