"""Aggregation functions (the paper's four AGGREGATE designs, Table II).

Every aggregator maps per-edge source states to one message per target
node.  The shared interface is::

    aggregator(h_src, query, seg, num_targets, edge_attr=None,
               layout=None) -> (T, d)

``h_src``   (E, d)  hidden state of each edge's source node
``query``   (T, d)  hidden state of each *target* node before update
                    (only the attention aggregator uses it)
``seg``     (E,)    target index per edge, values in [0, num_targets)
``edge_attr``       optional (E, p) attributes (positional encodings on
                    skip connections); only attention consumes them.
``layout``          optional precomputed segment layout over ``seg`` (from
                    a compiled schedule); saves the per-call sort.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import kernels
from ..nn.functional import gather_rows, segment_softmax, segment_sum
from ..nn.kernels import SegmentLayout
from ..nn.modules import Linear, MLP, Module
from ..nn.tensor import Tensor

__all__ = [
    "ConvSumAggregator",
    "DeepSetAggregator",
    "GatedSumAggregator",
    "AttentionAggregator",
    "build_aggregator",
    "AGGREGATOR_NAMES",
]

AGGREGATOR_NAMES = ("conv_sum", "attention", "deepset", "gated_sum")


class ConvSumAggregator(Module):
    """Convolutional sum (NeuroSAT-style): ``m_v = sum_u W h_u``."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.linear = Linear(dim, dim, rng)

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        return segment_sum(self.linear(h_src), seg, num_targets, layout=layout)


class DeepSetAggregator(Module):
    """DeepSet: ``m_v = rho(sum_u phi(h_u))`` with MLP phi and linear rho."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.phi = MLP([dim, dim, dim], rng)
        self.rho = Linear(dim, dim, rng)

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        return self.rho(
            segment_sum(self.phi(h_src), seg, num_targets, layout=layout)
        )


class GatedSumAggregator(Module):
    """D-VAE gated sum: ``m_v = sum_u sigmoid(g(h_u)) * f(h_u)``."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.gate = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        gated = self.gate(h_src).sigmoid() * self.value(h_src)
        return segment_sum(gated, seg, num_targets, layout=layout)


class AttentionAggregator(Module):
    """The paper's additive attention (Eq. 5), with skip-edge attributes.

    ``alpha_uv = softmax_u(w1^T h_v^{t-1} + w2^T h_u^t [+ w3^T gamma(D)])``
    and ``m_v = sum_u alpha_uv h_u`` — controlling inputs of a gate can
    learn to dominate the message, mimicking controlling-value semantics.
    """

    #: initial score offset for skip edges (last edge-attribute column is a
    #: skip indicator): exp(-2) keeps them from diluting real fan-ins early
    SKIP_INDICATOR_INIT = -2.0

    def __init__(self, dim: int, rng: np.random.Generator, edge_attr_dim: int = 0):
        self.w_query = Linear(dim, 1, rng, bias=False)
        self.w_key = Linear(dim, 1, rng, bias=False)
        self.edge_attr_dim = edge_attr_dim
        if edge_attr_dim:
            self.w_edge = Linear(edge_attr_dim, 1, rng, bias=False)
            self.w_edge.weight.data[:] = 0.0
            self.w_edge.weight.data[-1, 0] = self.SKIP_INDICATOR_INIT
        else:
            self.w_edge = None

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        if edge_attr is not None and self.w_edge is None:
            raise ValueError(
                "aggregator built without edge_attr_dim but given edge_attr"
            )
        if layout is not None:
            # compiled path: the whole score->softmax->weighted-sum chain
            # runs as one fused autograd node over the cached layout
            return self._forward_fused(h_src, query, edge_attr, layout)
        q_per_edge = gather_rows(query, seg)
        scores = self.w_query(q_per_edge) + self.w_key(h_src)
        if edge_attr is not None:
            scores = scores + self.w_edge(edge_attr)
        alpha = segment_softmax(scores.reshape(-1), seg, num_targets)
        weighted = h_src * alpha.reshape(-1, 1)
        return segment_sum(weighted, seg, num_targets)

    def _forward_fused(
        self,
        h_src: Tensor,
        query: Tensor,
        edge_attr,
        layout: SegmentLayout,
    ) -> Tensor:
        wq, wk = self.w_query.weight, self.w_key.weight
        we = self.w_edge.weight if edge_attr is not None else None
        attr = (
            edge_attr.data if isinstance(edge_attr, Tensor) else edge_attr
        )
        m, alpha = kernels.attention_forward_np(
            h_src.data, query.data, wq.data, wk.data,
            None if we is None else we.data, attr, layout,
        )
        parents = (h_src, query, wq, wk) + ((we,) if we is not None else ())

        def backward(grad: np.ndarray) -> None:
            need_edge = we is not None and we.requires_grad
            dh, dq, dwq, dwk, dwe = kernels.attention_backward_np(
                grad, h_src.data, query.data, wq.data, wk.data, attr,
                alpha, layout, need_edge=need_edge,
            )
            if h_src.requires_grad:
                h_src._accumulate(dh, own=True)
            if query.requires_grad:
                query._accumulate(dq, own=True)
            if wq.requires_grad:
                wq._accumulate(dwq, own=True)
            if wk.requires_grad:
                wk._accumulate(dwk, own=True)
            if need_edge:
                we._accumulate(dwe, own=True)

        return Tensor._make(m, parents, backward)


def build_aggregator(
    name: str, dim: int, rng: np.random.Generator, edge_attr_dim: int = 0
) -> Module:
    """Factory over :data:`AGGREGATOR_NAMES`."""
    if name == "conv_sum":
        return ConvSumAggregator(dim, rng)
    if name == "deepset":
        return DeepSetAggregator(dim, rng)
    if name == "gated_sum":
        return GatedSumAggregator(dim, rng)
    if name == "attention":
        return AttentionAggregator(dim, rng, edge_attr_dim=edge_attr_dim)
    raise ValueError(f"unknown aggregator {name!r}; choose from {AGGREGATOR_NAMES}")
