"""Aggregation functions (the paper's four AGGREGATE designs, Table II).

Every aggregator maps per-edge source states to one message per target
node.  The shared interface is::

    aggregator(h_src, query, seg, num_targets, edge_attr=None,
               layout=None) -> (T, d)

``h_src``   (E, d)  hidden state of each edge's source node
``query``   (T, d)  hidden state of each *target* node before update
                    (only the attention aggregator uses it)
``seg``     (E,)    target index per edge, values in [0, num_targets)
``edge_attr``       optional (E, p) attributes (positional encodings on
                    skip connections); only attention consumes them.
``layout``          optional precomputed segment layout over ``seg`` (from
                    a compiled schedule); saves the per-call sort.

Each aggregator offers the interface at three fusion levels:

* **reference** (no ``layout``) — the composite autograd formulation,
  the equivalence-test oracle;
* **fused node** (``layout`` given) — one closed-form autograd node per
  call, via the matching kernels in :mod:`repro.nn.kernels`;
* **pass step** (``step_*`` methods) — raw numpy forward/backward hooks
  the whole-pass runner (:mod:`repro.models.propagation`) drives, with
  parameter gradients batched into per-pass sink buffers.  A new
  AGGREGATE design plugs into the compiled fast path by implementing
  these five hooks.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..graphdata.batching import PassBlock
from ..nn import kernels
from ..nn.backends import matmul as _mm
from ..nn.functional import gather_rows, segment_softmax, segment_sum
from ..nn.kernels import SegmentLayout, segment_sum_np
from ..nn.modules import Linear, MLP, Module
from ..nn.tensor import Tensor

__all__ = [
    "ConvSumAggregator",
    "DeepSetAggregator",
    "GatedSumAggregator",
    "AttentionAggregator",
    "build_aggregator",
    "AGGREGATOR_NAMES",
]

AGGREGATOR_NAMES = ("conv_sum", "attention", "deepset", "gated_sum")

#: per-pass gradient accumulation buffers, keyed per aggregator design
Sink = Dict[str, np.ndarray]


def _acc(param: Tensor, grad: np.ndarray) -> None:
    if param.requires_grad:
        param._accumulate(grad, own=True)


class PassStepAggregator(Module):
    """The pass-step hooks the fused pass runner drives.

    ``step_begin``    per-pass pre-projections over the full pass-input
                      state ``hd`` (e.g. attention's query scores)
    ``step_forward``  one group's message matrix + saved activations
    ``step_sink``     zeroed per-pass parameter-gradient buffers; when
                      the runner executes the pass-wide block layout it
                      passes the schedule's
                      :class:`~repro.graphdata.batching.PassBlock` so
                      the sink can allocate ``(num_written, ·)`` /
                      ``(num_edges, ·)`` accumulation buffers
    ``step_backward`` one group's ``dh_src`` given ``dm``, accumulating
                      parameter gradients into the sink (per-group
                      layout: one small GEMM per parameter per group)
    ``step_backward_block``
                      the block-layout counterpart: write the group's
                      intermediates into the sink's pass-wide buffers by
                      contiguous slice (``group.node_offset`` /
                      ``group.edge_offset``) and leave every parameter
                      GEMM to ``step_end``.  The default falls back to
                      ``step_backward``, so an aggregator implementing
                      only the per-group hooks still runs (un-batched)
                      under the block layout — provided its
                      ``step_sink`` accepts the ``block`` argument.
    ``step_end``      fold the sink into the parameter tensors, and add
                      any batched contribution to ``dh`` (the pass-input
                      state gradient; ``None`` when not needed)
    """

    def step_begin(self, hd: np.ndarray) -> Optional[np.ndarray]:
        return None

    def step_forward(self, group, h_src, ctx, edge_attr=None):
        raise NotImplementedError

    def step_sink(
        self, hd: np.ndarray, block: Optional[PassBlock] = None
    ) -> Sink:
        raise NotImplementedError

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        raise NotImplementedError

    def step_backward_block(
        self, group, dm, h_src, saved, sink, edge_attr=None
    ):
        return self.step_backward(group, dm, h_src, saved, sink, edge_attr)

    def step_end(
        self, hd: np.ndarray, sink: Sink, dh: Optional[np.ndarray]
    ) -> None:
        raise NotImplementedError


class ConvSumAggregator(PassStepAggregator):
    """Convolutional sum (NeuroSAT-style): ``m_v = sum_u W h_u``."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.linear = Linear(dim, dim, rng)

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        if layout is not None:
            return self._forward_fused(h_src, layout)
        return segment_sum(self.linear(h_src), seg, num_targets, layout=layout)

    def _forward_fused(self, h_src: Tensor, layout: SegmentLayout) -> Tensor:
        w, b = self.linear.weight, self.linear.bias
        m, s = kernels.conv_sum_forward_np(h_src.data, w.data, b.data, layout)

        def backward(grad: np.ndarray) -> None:
            need_w = w.requires_grad or b.requires_grad
            dh, dw, db = kernels.conv_sum_backward_np(
                grad, s, w.data, layout,
                need_h=h_src.requires_grad, need_w=need_w,
            )
            if dh is not None:
                h_src._accumulate(dh, own=True)
            if w.requires_grad:
                w._accumulate(dw, own=True)
            if b.requires_grad:
                b._accumulate(db, own=True)

        return Tensor._make(m, (h_src, w, b), backward)

    # -- pass-step hooks (see PassStepAggregator) ----------------------
    def step_forward(self, group, h_src, ctx, edge_attr=None):
        lin = self.linear
        return kernels.conv_sum_forward_np(
            h_src, lin.weight.data, lin.bias.data, group.seg_layout
        )

    def step_sink(self, hd, block=None):
        if block is None:
            return {
                "dw": np.zeros_like(self.linear.weight.data),
                "db": np.zeros_like(self.linear.bias.data),
            }
        d_in, d_out = self.linear.weight.data.shape
        n_w = block.num_written
        return {
            "s": np.empty((n_w, d_in), np.float32),
            "dm": np.empty((n_w, d_out), np.float32),
            "counts": block.counts,
        }

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        dh, dw, db = kernels.conv_sum_backward_np(
            dm, saved, self.linear.weight.data, group.seg_layout
        )
        sink["dw"] += dw
        sink["db"] += db
        return dh

    def step_backward_block(self, group, dm, h_src, saved, sink,
                            edge_attr=None):
        o0 = group.node_offset
        o1 = o0 + len(group.nodes)
        sink["s"][o0:o1] = saved
        sink["dm"][o0:o1] = dm
        dh, _, _ = kernels.conv_sum_backward_np(
            dm, saved, self.linear.weight.data, group.seg_layout,
            need_w=False,
        )
        return dh

    def step_end(self, hd, sink, dh):
        if "dm" in sink:
            _acc(self.linear.weight, _mm(sink["s"].T, sink["dm"]))
            _acc(self.linear.bias, _mm(sink["counts"], sink["dm"]))
        else:
            _acc(self.linear.weight, sink["dw"])
            _acc(self.linear.bias, sink["db"])


class DeepSetAggregator(PassStepAggregator):
    """DeepSet: ``m_v = rho(sum_u phi(h_u))`` with MLP phi and linear rho."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.phi = MLP([dim, dim, dim], rng)
        self.rho = Linear(dim, dim, rng)

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        if layout is not None:
            return self._forward_fused(h_src, layout)
        return self.rho(
            segment_sum(self.phi(h_src), seg, num_targets, layout=layout)
        )

    def _forward_fused(self, h_src: Tensor, layout: SegmentLayout) -> Tensor:
        lin1, lin2 = self.phi.layers
        rho = self.rho
        params = (
            lin1.weight, lin1.bias, lin2.weight, lin2.bias,
            rho.weight, rho.bias,
        )
        m, saved = kernels.deepset_forward_np(
            h_src.data,
            lin1.weight.data, lin1.bias.data,
            lin2.weight.data, lin2.bias.data,
            rho.weight.data, rho.bias.data,
            layout,
        )

        def backward(grad: np.ndarray) -> None:
            need_w = any(p.requires_grad for p in params)
            dh, *dparams = kernels.deepset_backward_np(
                grad, h_src.data,
                lin1.weight.data, lin2.weight.data, rho.weight.data,
                saved, layout,
                need_h=h_src.requires_grad, need_w=need_w,
            )
            if dh is not None:
                h_src._accumulate(dh, own=True)
            if need_w:
                for p, dp in zip(params, dparams):
                    if p.requires_grad:
                        p._accumulate(dp, own=True)

        return Tensor._make(m, (h_src, *params), backward)

    # -- pass-step hooks (see PassStepAggregator) ----------------------
    def _step_params(self):
        lin1, lin2 = self.phi.layers
        return (("dw1", lin1.weight), ("db1", lin1.bias),
                ("dw2", lin2.weight), ("db2", lin2.bias),
                ("dwr", self.rho.weight), ("dbr", self.rho.bias))

    def step_forward(self, group, h_src, ctx, edge_attr=None):
        lin1, lin2 = self.phi.layers
        return kernels.deepset_forward_np(
            h_src,
            lin1.weight.data, lin1.bias.data,
            lin2.weight.data, lin2.bias.data,
            self.rho.weight.data, self.rho.bias.data,
            group.seg_layout,
        )

    def step_sink(self, hd, block=None):
        if block is None:
            return {
                key: np.zeros_like(p.data) for key, p in self._step_params()
            }
        d = self.rho.weight.data.shape[0]
        n_w, n_e = block.num_written, block.num_edges
        return {
            "s1": np.empty((n_w, d), np.float32),
            "s2": np.empty((n_w, d), np.float32),
            "dm": np.empty((n_w, self.rho.weight.data.shape[1]), np.float32),
            "ds2": np.empty((n_w, d), np.float32),
            "da1": np.empty((n_e, d), np.float32),
            "h": np.empty((n_e, hd.shape[1]), np.float32),
            "counts": block.counts,
        }

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        lin1, lin2 = self.phi.layers
        dh, *dparams = kernels.deepset_backward_np(
            dm, h_src, lin1.weight.data, lin2.weight.data,
            self.rho.weight.data, saved, group.seg_layout,
        )
        for (key, _), dp in zip(self._step_params(), dparams):
            sink[key] += dp
        return dh

    def step_backward_block(self, group, dm, h_src, saved, sink,
                            edge_attr=None):
        lin1, lin2 = self.phi.layers
        r1, s1, s2 = saved
        ds2 = _mm(dm, self.rho.weight.data.T)
        dr1 = _mm(ds2, lin2.weight.data.T)[group.seg_layout.segment_ids]
        da1 = dr1 * (r1 > 0)
        o0 = group.node_offset
        o1 = o0 + len(group.nodes)
        e0 = group.edge_offset
        e1 = e0 + len(group.src)
        sink["s1"][o0:o1] = s1
        sink["s2"][o0:o1] = s2
        sink["dm"][o0:o1] = dm
        sink["ds2"][o0:o1] = ds2
        sink["da1"][e0:e1] = da1
        sink["h"][e0:e1] = h_src
        return _mm(da1, lin1.weight.data.T)

    def step_end(self, hd, sink, dh):
        if "da1" in sink:
            lin1, lin2 = self.phi.layers
            da1, ds2, dm = sink["da1"], sink["ds2"], sink["dm"]
            _acc(self.rho.weight, _mm(sink["s2"].T, dm))
            _acc(self.rho.bias, dm.sum(axis=0))
            _acc(lin2.weight, _mm(sink["s1"].T, ds2))
            _acc(lin2.bias, _mm(sink["counts"], ds2))
            _acc(lin1.weight, _mm(sink["h"].T, da1))
            _acc(lin1.bias, da1.sum(axis=0))
        else:
            for key, p in self._step_params():
                _acc(p, sink[key])


class GatedSumAggregator(PassStepAggregator):
    """D-VAE gated sum: ``m_v = sum_u sigmoid(g(h_u)) * f(h_u)``."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.gate = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        if layout is not None:
            return self._forward_fused(h_src, layout)
        gated = self.gate(h_src).sigmoid() * self.value(h_src)
        return segment_sum(gated, seg, num_targets, layout=layout)

    def _forward_fused(self, h_src: Tensor, layout: SegmentLayout) -> Tensor:
        gate, value = self.gate, self.value
        params = (gate.weight, gate.bias, value.weight, value.bias)
        m, saved = kernels.gated_sum_forward_np(
            h_src.data,
            gate.weight.data, gate.bias.data,
            value.weight.data, value.bias.data,
            layout,
        )

        def backward(grad: np.ndarray) -> None:
            need_w = any(p.requires_grad for p in params)
            dh, *dparams = kernels.gated_sum_backward_np(
                grad, h_src.data, gate.weight.data, value.weight.data,
                saved, layout,
                need_h=h_src.requires_grad, need_w=need_w,
            )
            if dh is not None:
                h_src._accumulate(dh, own=True)
            if need_w:
                for p, dp in zip(params, dparams):
                    if p.requires_grad:
                        p._accumulate(dp, own=True)

        return Tensor._make(m, (h_src, *params), backward)

    # -- pass-step hooks (see PassStepAggregator) ----------------------
    def _step_params(self):
        return (("dwg", self.gate.weight), ("dbg", self.gate.bias),
                ("dwv", self.value.weight), ("dbv", self.value.bias))

    def step_forward(self, group, h_src, ctx, edge_attr=None):
        return kernels.gated_sum_forward_np(
            h_src,
            self.gate.weight.data, self.gate.bias.data,
            self.value.weight.data, self.value.bias.data,
            group.seg_layout,
        )

    def step_sink(self, hd, block=None):
        if block is None:
            return {
                key: np.zeros_like(p.data) for key, p in self._step_params()
            }
        n_e = block.num_edges
        return {
            "dv": np.empty((n_e, self.value.weight.data.shape[1]), np.float32),
            "dsg": np.empty((n_e, self.gate.weight.data.shape[1]), np.float32),
            "h": np.empty((n_e, hd.shape[1]), np.float32),
        }

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        dh, *dparams = kernels.gated_sum_backward_np(
            dm, h_src, self.gate.weight.data, self.value.weight.data,
            saved, group.seg_layout,
        )
        for (key, _), dp in zip(self._step_params(), dparams):
            sink[key] += dp
        return dh

    def step_backward_block(self, group, dm, h_src, saved, sink,
                            edge_attr=None):
        g, v = saved
        dgv = dm[group.seg_layout.segment_ids]
        dv = dgv * g
        dsg = dgv * v * g * (1.0 - g)
        e0 = group.edge_offset
        e1 = e0 + len(group.src)
        sink["dv"][e0:e1] = dv
        sink["dsg"][e0:e1] = dsg
        sink["h"][e0:e1] = h_src
        return _mm(dv, self.value.weight.data.T) + _mm(
            dsg, self.gate.weight.data.T
        )

    def step_end(self, hd, sink, dh):
        if "dv" in sink:
            h_all, dv, dsg = sink["h"], sink["dv"], sink["dsg"]
            _acc(self.value.weight, _mm(h_all.T, dv))
            _acc(self.value.bias, dv.sum(axis=0))
            _acc(self.gate.weight, _mm(h_all.T, dsg))
            _acc(self.gate.bias, dsg.sum(axis=0))
        else:
            for key, p in self._step_params():
                _acc(p, sink[key])


class AttentionAggregator(PassStepAggregator):
    """The paper's additive attention (Eq. 5), with skip-edge attributes.

    ``alpha_uv = softmax_u(w1^T h_v^{t-1} + w2^T h_u^t [+ w3^T gamma(D)])``
    and ``m_v = sum_u alpha_uv h_u`` — controlling inputs of a gate can
    learn to dominate the message, mimicking controlling-value semantics.
    """

    #: initial score offset for skip edges (last edge-attribute column is a
    #: skip indicator): exp(-2) keeps them from diluting real fan-ins early
    SKIP_INDICATOR_INIT = -2.0

    def __init__(self, dim: int, rng: np.random.Generator, edge_attr_dim: int = 0):
        self.w_query = Linear(dim, 1, rng, bias=False)
        self.w_key = Linear(dim, 1, rng, bias=False)
        self.edge_attr_dim = edge_attr_dim
        if edge_attr_dim:
            self.w_edge = Linear(edge_attr_dim, 1, rng, bias=False)
            self.w_edge.weight.data[:] = 0.0
            self.w_edge.weight.data[-1, 0] = self.SKIP_INDICATOR_INIT
        else:
            self.w_edge = None

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        if edge_attr is not None:
            if self.w_edge is None:
                raise ValueError(
                    "AttentionAggregator was built with edge_attr_dim=0 and "
                    "has no edge-attribute weights, but was given edge_attr; "
                    "construct it with edge_attr_dim matching the attributes"
                )
            attr_data = (
                edge_attr.data if isinstance(edge_attr, Tensor) else edge_attr
            )
            if attr_data.shape[1] != self.edge_attr_dim:
                raise ValueError(
                    f"edge_attr has {attr_data.shape[1]} columns but the "
                    f"aggregator was built with "
                    f"edge_attr_dim={self.edge_attr_dim}"
                )
        if layout is not None:
            # compiled path: the whole score->softmax->weighted-sum chain
            # runs as one fused autograd node over the cached layout
            return self._forward_fused(h_src, query, edge_attr, layout)
        q_per_edge = gather_rows(query, seg)
        scores = self.w_query(q_per_edge) + self.w_key(h_src)
        if edge_attr is not None:
            scores = scores + self.w_edge(edge_attr)
        alpha = segment_softmax(scores.reshape(-1), seg, num_targets)
        weighted = h_src * alpha.reshape(-1, 1)
        return segment_sum(weighted, seg, num_targets)

    def _forward_fused(
        self,
        h_src: Tensor,
        query: Tensor,
        edge_attr,
        layout: SegmentLayout,
    ) -> Tensor:
        wq, wk = self.w_query.weight, self.w_key.weight
        we = self.w_edge.weight if edge_attr is not None else None
        attr = (
            edge_attr.data if isinstance(edge_attr, Tensor) else edge_attr
        )
        m, alpha = kernels.attention_forward_np(
            h_src.data, query.data, wq.data, wk.data,
            None if we is None else we.data, attr, layout,
        )
        parents = (h_src, query, wq, wk) + ((we,) if we is not None else ())

        def backward(grad: np.ndarray) -> None:
            need_edge = we is not None and we.requires_grad
            dh, dq, dwq, dwk, dwe = kernels.attention_backward_np(
                grad, h_src.data, query.data, wq.data, wk.data, attr,
                alpha, layout, need_edge=need_edge,
            )
            if h_src.requires_grad:
                h_src._accumulate(dh, own=True)
            if query.requires_grad:
                query._accumulate(dq, own=True)
            if wq.requires_grad:
                wq._accumulate(dwq, own=True)
            if wk.requires_grad:
                wk._accumulate(dwk, own=True)
            if need_edge:
                we._accumulate(dwe, own=True)

        return Tensor._make(m, parents, backward)

    # -- pass-step hooks (see PassStepAggregator) ----------------------
    def step_begin(self, hd):
        # query-score contribution of every node, batched per pass: the
        # query rows always come from the pass-input state
        return (hd @ self.w_query.weight.data).ravel()

    def step_forward(self, group, h_src, ctx, edge_attr=None):
        layout = group.seg_layout
        scores = (
            ctx[group.nodes][layout.segment_ids]
            + (h_src @ self.w_key.weight.data).ravel()
        )
        if edge_attr is not None:
            scores = scores + (edge_attr @ self.w_edge.weight.data).ravel()
        return kernels.segment_softmax_weighted_np(scores, h_src, layout)

    def step_sink(self, hd, block=None):
        if block is not None:
            return {
                "dqs_w": np.empty(block.num_written, np.float32),
                "written": block.written,
                "ds": np.empty(block.num_edges, np.float32),
                "h": np.empty((block.num_edges, hd.shape[1]), np.float32),
                **(
                    {"attr": block.edge_attr}
                    if self.w_edge is not None and block.edge_attr is not None
                    else {}
                ),
            }
        sink = {
            "dqs": np.zeros(hd.shape[0], np.float32),
            "dwk": np.zeros_like(self.w_key.weight.data),
        }
        if self.w_edge is not None:
            sink["dwe"] = np.zeros_like(self.w_edge.weight.data)
        return sink

    def _score_grads(self, group, dm, h_src, alpha):
        """Shared per-group backward core: ``(dh_src, ds)``."""
        layout = group.seg_layout
        seg = layout.segment_ids
        wk = self.w_key.weight.data
        dm_e = dm[seg]
        dh = alpha[:, None] * dm_e
        dalpha = np.einsum("ij,ij->i", h_src, dm_e)
        weighted = alpha * dalpha
        if layout.is_sorted:
            sw = np.add.reduceat(weighted, layout.starts)
            if layout.present.size == layout.num_segments:
                # ids double as compressed ranks: take beats repeat
                ds = weighted - alpha * sw[seg]
            else:
                ds = weighted - alpha * np.repeat(sw, layout.sizes)
        else:
            ds = weighted - alpha * segment_sum_np(weighted, layout)[seg]
        dh += ds[:, None] * wk.reshape(1, -1)
        return dh, ds

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        dh, ds = self._score_grads(group, dm, h_src, saved)
        wk = self.w_key.weight.data
        sink["dwk"] += _mm(h_src.T, ds).reshape(wk.shape)
        sink["dqs"][group.nodes] += segment_sum_np(ds, group.seg_layout)
        if edge_attr is not None:
            sink["dwe"] += _mm(edge_attr.T, ds).reshape(sink["dwe"].shape)
        return dh

    def step_backward_block(self, group, dm, h_src, saved, sink,
                            edge_attr=None):
        dh, ds = self._score_grads(group, dm, h_src, saved)
        e0 = group.edge_offset
        e1 = e0 + len(group.src)
        o0 = group.node_offset
        o1 = o0 + len(group.nodes)
        sink["ds"][e0:e1] = ds
        sink["h"][e0:e1] = h_src
        sink["dqs_w"][o0:o1] = segment_sum_np(ds, group.seg_layout)
        if edge_attr is not None:
            sink["attr_used"] = True
        return dh

    def step_end(self, hd, sink, dh):
        wq = self.w_query.weight
        if "ds" in sink:
            # block layout: the per-query score grads sit in written-node
            # order, so the wq contraction and the dh scatter touch only
            # the written rows (unique — fancy += is exact)
            dqs_w = sink["dqs_w"]
            written = sink["written"]
            _acc(wq, _mm(hd[written].T, dqs_w).reshape(wq.data.shape))
            if dh is not None:
                dh[written] += dqs_w[:, None] * wq.data.reshape(1, -1)
            ds_all = sink["ds"]
            wk = self.w_key.weight
            _acc(wk, _mm(sink["h"].T, ds_all).reshape(wk.data.shape))
            if sink.get("attr_used"):
                we = self.w_edge.weight
                _acc(we, _mm(sink["attr"].T, ds_all).reshape(we.data.shape))
            return
        dqs = sink["dqs"]
        _acc(wq, _mm(hd.T, dqs).reshape(wq.data.shape))
        if dh is not None:
            dh += dqs[:, None] * wq.data.reshape(1, -1)
        _acc(self.w_key.weight, sink["dwk"])
        if "dwe" in sink:
            _acc(self.w_edge.weight, sink["dwe"])


def build_aggregator(
    name: str, dim: int, rng: np.random.Generator, edge_attr_dim: int = 0
) -> Module:
    """Factory over :data:`AGGREGATOR_NAMES`."""
    if name == "conv_sum":
        return ConvSumAggregator(dim, rng)
    if name == "deepset":
        return DeepSetAggregator(dim, rng)
    if name == "gated_sum":
        return GatedSumAggregator(dim, rng)
    if name == "attention":
        return AttentionAggregator(dim, rng, edge_attr_dim=edge_attr_dim)
    raise ValueError(f"unknown aggregator {name!r}; choose from {AGGREGATOR_NAMES}")
