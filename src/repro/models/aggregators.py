"""Aggregation functions (the paper's four AGGREGATE designs, Table II).

Every aggregator maps per-edge source states to one message per target
node.  The shared interface is::

    aggregator(h_src, query, seg, num_targets, edge_attr=None,
               layout=None) -> (T, d)

``h_src``   (E, d)  hidden state of each edge's source node
``query``   (T, d)  hidden state of each *target* node before update
                    (only the attention aggregator uses it)
``seg``     (E,)    target index per edge, values in [0, num_targets)
``edge_attr``       optional (E, p) attributes (positional encodings on
                    skip connections); only attention consumes them.
``layout``          optional precomputed segment layout over ``seg`` (from
                    a compiled schedule); saves the per-call sort.

Each aggregator offers the interface at three fusion levels:

* **reference** (no ``layout``) — the composite autograd formulation,
  the equivalence-test oracle;
* **fused node** (``layout`` given) — one closed-form autograd node per
  call, via the matching kernels in :mod:`repro.nn.kernels`;
* **pass step** (``step_*`` methods) — raw numpy forward/backward hooks
  the whole-pass runner (:mod:`repro.models.propagation`) drives, with
  parameter gradients batched into per-pass sink buffers.  A new
  AGGREGATE design plugs into the compiled fast path by implementing
  these five hooks.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn import kernels
from ..nn.functional import gather_rows, segment_softmax, segment_sum
from ..nn.kernels import SegmentLayout, segment_sum_np
from ..nn.modules import Linear, MLP, Module
from ..nn.tensor import Tensor

__all__ = [
    "ConvSumAggregator",
    "DeepSetAggregator",
    "GatedSumAggregator",
    "AttentionAggregator",
    "build_aggregator",
    "AGGREGATOR_NAMES",
]

AGGREGATOR_NAMES = ("conv_sum", "attention", "deepset", "gated_sum")

#: per-pass gradient accumulation buffers, keyed per aggregator design
Sink = Dict[str, np.ndarray]


def _acc(param: Tensor, grad: np.ndarray) -> None:
    if param.requires_grad:
        param._accumulate(grad, own=True)


class PassStepAggregator(Module):
    """The pass-step hooks the fused pass runner drives.

    ``step_begin``    per-pass pre-projections over the full pass-input
                      state ``hd`` (e.g. attention's query scores)
    ``step_forward``  one group's message matrix + saved activations
    ``step_sink``     zeroed per-pass parameter-gradient buffers
    ``step_backward`` one group's ``dh_src`` given ``dm``, accumulating
                      parameter gradients into the sink
    ``step_end``      fold the sink into the parameter tensors, and add
                      any batched contribution to ``dh`` (the pass-input
                      state gradient; ``None`` when not needed)
    """

    def step_begin(self, hd: np.ndarray) -> Optional[np.ndarray]:
        return None

    def step_forward(self, group, h_src, ctx, edge_attr=None):
        raise NotImplementedError

    def step_sink(self, hd: np.ndarray) -> Sink:
        raise NotImplementedError

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        raise NotImplementedError

    def step_end(
        self, hd: np.ndarray, sink: Sink, dh: Optional[np.ndarray]
    ) -> None:
        raise NotImplementedError


class ConvSumAggregator(PassStepAggregator):
    """Convolutional sum (NeuroSAT-style): ``m_v = sum_u W h_u``."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.linear = Linear(dim, dim, rng)

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        if layout is not None:
            return self._forward_fused(h_src, layout)
        return segment_sum(self.linear(h_src), seg, num_targets, layout=layout)

    def _forward_fused(self, h_src: Tensor, layout: SegmentLayout) -> Tensor:
        w, b = self.linear.weight, self.linear.bias
        m, s = kernels.conv_sum_forward_np(h_src.data, w.data, b.data, layout)

        def backward(grad: np.ndarray) -> None:
            need_w = w.requires_grad or b.requires_grad
            dh, dw, db = kernels.conv_sum_backward_np(
                grad, s, w.data, layout,
                need_h=h_src.requires_grad, need_w=need_w,
            )
            if dh is not None:
                h_src._accumulate(dh, own=True)
            if w.requires_grad:
                w._accumulate(dw, own=True)
            if b.requires_grad:
                b._accumulate(db, own=True)

        return Tensor._make(m, (h_src, w, b), backward)

    # -- pass-step hooks (see PassStepAggregator) ----------------------
    def step_forward(self, group, h_src, ctx, edge_attr=None):
        lin = self.linear
        return kernels.conv_sum_forward_np(
            h_src, lin.weight.data, lin.bias.data, group.seg_layout
        )

    def step_sink(self, hd):
        return {
            "dw": np.zeros_like(self.linear.weight.data),
            "db": np.zeros_like(self.linear.bias.data),
        }

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        dh, dw, db = kernels.conv_sum_backward_np(
            dm, saved, self.linear.weight.data, group.seg_layout
        )
        sink["dw"] += dw
        sink["db"] += db
        return dh

    def step_end(self, hd, sink, dh):
        _acc(self.linear.weight, sink["dw"])
        _acc(self.linear.bias, sink["db"])


class DeepSetAggregator(PassStepAggregator):
    """DeepSet: ``m_v = rho(sum_u phi(h_u))`` with MLP phi and linear rho."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.phi = MLP([dim, dim, dim], rng)
        self.rho = Linear(dim, dim, rng)

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        if layout is not None:
            return self._forward_fused(h_src, layout)
        return self.rho(
            segment_sum(self.phi(h_src), seg, num_targets, layout=layout)
        )

    def _forward_fused(self, h_src: Tensor, layout: SegmentLayout) -> Tensor:
        lin1, lin2 = self.phi.layers
        rho = self.rho
        params = (
            lin1.weight, lin1.bias, lin2.weight, lin2.bias,
            rho.weight, rho.bias,
        )
        m, saved = kernels.deepset_forward_np(
            h_src.data,
            lin1.weight.data, lin1.bias.data,
            lin2.weight.data, lin2.bias.data,
            rho.weight.data, rho.bias.data,
            layout,
        )

        def backward(grad: np.ndarray) -> None:
            need_w = any(p.requires_grad for p in params)
            dh, *dparams = kernels.deepset_backward_np(
                grad, h_src.data,
                lin1.weight.data, lin2.weight.data, rho.weight.data,
                saved, layout,
                need_h=h_src.requires_grad, need_w=need_w,
            )
            if dh is not None:
                h_src._accumulate(dh, own=True)
            if need_w:
                for p, dp in zip(params, dparams):
                    if p.requires_grad:
                        p._accumulate(dp, own=True)

        return Tensor._make(m, (h_src, *params), backward)

    # -- pass-step hooks (see PassStepAggregator) ----------------------
    def _step_params(self):
        lin1, lin2 = self.phi.layers
        return (("dw1", lin1.weight), ("db1", lin1.bias),
                ("dw2", lin2.weight), ("db2", lin2.bias),
                ("dwr", self.rho.weight), ("dbr", self.rho.bias))

    def step_forward(self, group, h_src, ctx, edge_attr=None):
        lin1, lin2 = self.phi.layers
        return kernels.deepset_forward_np(
            h_src,
            lin1.weight.data, lin1.bias.data,
            lin2.weight.data, lin2.bias.data,
            self.rho.weight.data, self.rho.bias.data,
            group.seg_layout,
        )

    def step_sink(self, hd):
        return {key: np.zeros_like(p.data) for key, p in self._step_params()}

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        lin1, lin2 = self.phi.layers
        dh, *dparams = kernels.deepset_backward_np(
            dm, h_src, lin1.weight.data, lin2.weight.data,
            self.rho.weight.data, saved, group.seg_layout,
        )
        for (key, _), dp in zip(self._step_params(), dparams):
            sink[key] += dp
        return dh

    def step_end(self, hd, sink, dh):
        for key, p in self._step_params():
            _acc(p, sink[key])


class GatedSumAggregator(PassStepAggregator):
    """D-VAE gated sum: ``m_v = sum_u sigmoid(g(h_u)) * f(h_u)``."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.gate = Linear(dim, dim, rng)
        self.value = Linear(dim, dim, rng)

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        if layout is not None:
            return self._forward_fused(h_src, layout)
        gated = self.gate(h_src).sigmoid() * self.value(h_src)
        return segment_sum(gated, seg, num_targets, layout=layout)

    def _forward_fused(self, h_src: Tensor, layout: SegmentLayout) -> Tensor:
        gate, value = self.gate, self.value
        params = (gate.weight, gate.bias, value.weight, value.bias)
        m, saved = kernels.gated_sum_forward_np(
            h_src.data,
            gate.weight.data, gate.bias.data,
            value.weight.data, value.bias.data,
            layout,
        )

        def backward(grad: np.ndarray) -> None:
            need_w = any(p.requires_grad for p in params)
            dh, *dparams = kernels.gated_sum_backward_np(
                grad, h_src.data, gate.weight.data, value.weight.data,
                saved, layout,
                need_h=h_src.requires_grad, need_w=need_w,
            )
            if dh is not None:
                h_src._accumulate(dh, own=True)
            if need_w:
                for p, dp in zip(params, dparams):
                    if p.requires_grad:
                        p._accumulate(dp, own=True)

        return Tensor._make(m, (h_src, *params), backward)

    # -- pass-step hooks (see PassStepAggregator) ----------------------
    def _step_params(self):
        return (("dwg", self.gate.weight), ("dbg", self.gate.bias),
                ("dwv", self.value.weight), ("dbv", self.value.bias))

    def step_forward(self, group, h_src, ctx, edge_attr=None):
        return kernels.gated_sum_forward_np(
            h_src,
            self.gate.weight.data, self.gate.bias.data,
            self.value.weight.data, self.value.bias.data,
            group.seg_layout,
        )

    def step_sink(self, hd):
        return {key: np.zeros_like(p.data) for key, p in self._step_params()}

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        dh, *dparams = kernels.gated_sum_backward_np(
            dm, h_src, self.gate.weight.data, self.value.weight.data,
            saved, group.seg_layout,
        )
        for (key, _), dp in zip(self._step_params(), dparams):
            sink[key] += dp
        return dh

    def step_end(self, hd, sink, dh):
        for key, p in self._step_params():
            _acc(p, sink[key])


class AttentionAggregator(PassStepAggregator):
    """The paper's additive attention (Eq. 5), with skip-edge attributes.

    ``alpha_uv = softmax_u(w1^T h_v^{t-1} + w2^T h_u^t [+ w3^T gamma(D)])``
    and ``m_v = sum_u alpha_uv h_u`` — controlling inputs of a gate can
    learn to dominate the message, mimicking controlling-value semantics.
    """

    #: initial score offset for skip edges (last edge-attribute column is a
    #: skip indicator): exp(-2) keeps them from diluting real fan-ins early
    SKIP_INDICATOR_INIT = -2.0

    def __init__(self, dim: int, rng: np.random.Generator, edge_attr_dim: int = 0):
        self.w_query = Linear(dim, 1, rng, bias=False)
        self.w_key = Linear(dim, 1, rng, bias=False)
        self.edge_attr_dim = edge_attr_dim
        if edge_attr_dim:
            self.w_edge = Linear(edge_attr_dim, 1, rng, bias=False)
            self.w_edge.weight.data[:] = 0.0
            self.w_edge.weight.data[-1, 0] = self.SKIP_INDICATOR_INIT
        else:
            self.w_edge = None

    def forward(
        self,
        h_src: Tensor,
        query: Tensor,
        seg: np.ndarray,
        num_targets: int,
        edge_attr: Optional[Tensor] = None,
        layout: Optional[SegmentLayout] = None,
    ) -> Tensor:
        if edge_attr is not None:
            if self.w_edge is None:
                raise ValueError(
                    "AttentionAggregator was built with edge_attr_dim=0 and "
                    "has no edge-attribute weights, but was given edge_attr; "
                    "construct it with edge_attr_dim matching the attributes"
                )
            attr_data = (
                edge_attr.data if isinstance(edge_attr, Tensor) else edge_attr
            )
            if attr_data.shape[1] != self.edge_attr_dim:
                raise ValueError(
                    f"edge_attr has {attr_data.shape[1]} columns but the "
                    f"aggregator was built with "
                    f"edge_attr_dim={self.edge_attr_dim}"
                )
        if layout is not None:
            # compiled path: the whole score->softmax->weighted-sum chain
            # runs as one fused autograd node over the cached layout
            return self._forward_fused(h_src, query, edge_attr, layout)
        q_per_edge = gather_rows(query, seg)
        scores = self.w_query(q_per_edge) + self.w_key(h_src)
        if edge_attr is not None:
            scores = scores + self.w_edge(edge_attr)
        alpha = segment_softmax(scores.reshape(-1), seg, num_targets)
        weighted = h_src * alpha.reshape(-1, 1)
        return segment_sum(weighted, seg, num_targets)

    def _forward_fused(
        self,
        h_src: Tensor,
        query: Tensor,
        edge_attr,
        layout: SegmentLayout,
    ) -> Tensor:
        wq, wk = self.w_query.weight, self.w_key.weight
        we = self.w_edge.weight if edge_attr is not None else None
        attr = (
            edge_attr.data if isinstance(edge_attr, Tensor) else edge_attr
        )
        m, alpha = kernels.attention_forward_np(
            h_src.data, query.data, wq.data, wk.data,
            None if we is None else we.data, attr, layout,
        )
        parents = (h_src, query, wq, wk) + ((we,) if we is not None else ())

        def backward(grad: np.ndarray) -> None:
            need_edge = we is not None and we.requires_grad
            dh, dq, dwq, dwk, dwe = kernels.attention_backward_np(
                grad, h_src.data, query.data, wq.data, wk.data, attr,
                alpha, layout, need_edge=need_edge,
            )
            if h_src.requires_grad:
                h_src._accumulate(dh, own=True)
            if query.requires_grad:
                query._accumulate(dq, own=True)
            if wq.requires_grad:
                wq._accumulate(dwq, own=True)
            if wk.requires_grad:
                wk._accumulate(dwk, own=True)
            if need_edge:
                we._accumulate(dwe, own=True)

        return Tensor._make(m, parents, backward)

    # -- pass-step hooks (see PassStepAggregator) ----------------------
    def step_begin(self, hd):
        # query-score contribution of every node, batched per pass: the
        # query rows always come from the pass-input state
        return (hd @ self.w_query.weight.data).ravel()

    def step_forward(self, group, h_src, ctx, edge_attr=None):
        layout = group.seg_layout
        scores = (
            ctx[group.nodes][layout.segment_ids]
            + (h_src @ self.w_key.weight.data).ravel()
        )
        if edge_attr is not None:
            scores = scores + (edge_attr @ self.w_edge.weight.data).ravel()
        alpha = kernels.segment_softmax_np(scores, layout)
        m = segment_sum_np(h_src * alpha[:, None], layout)
        return m, alpha

    def step_sink(self, hd):
        sink = {
            "dqs": np.zeros(hd.shape[0], np.float32),
            "dwk": np.zeros_like(self.w_key.weight.data),
        }
        if self.w_edge is not None:
            sink["dwe"] = np.zeros_like(self.w_edge.weight.data)
        return sink

    def step_backward(self, group, dm, h_src, saved, sink, edge_attr=None):
        layout = group.seg_layout
        alpha = saved
        seg = layout.segment_ids
        wk = self.w_key.weight.data
        dm_e = dm[seg]
        dh = alpha[:, None] * dm_e
        dalpha = np.einsum("ij,ij->i", h_src, dm_e)
        weighted = alpha * dalpha
        ds = weighted - alpha * segment_sum_np(weighted, layout)[seg]
        dh += ds[:, None] * wk.reshape(1, -1)
        sink["dwk"] += (h_src.T @ ds).reshape(wk.shape)
        sink["dqs"][group.nodes] += segment_sum_np(ds, layout)
        if edge_attr is not None:
            sink["dwe"] += (edge_attr.T @ ds).reshape(sink["dwe"].shape)
        return dh

    def step_end(self, hd, sink, dh):
        dqs = sink["dqs"]
        wq = self.w_query.weight
        _acc(wq, (hd.T @ dqs).reshape(wq.data.shape))
        if dh is not None:
            dh += dqs[:, None] * wq.data.reshape(1, -1)
        _acc(self.w_key.weight, sink["dwk"])
        if "dwe" in sink:
            _acc(self.w_edge.weight, sink["dwe"])


def build_aggregator(
    name: str, dim: int, rng: np.random.Generator, edge_attr_dim: int = 0
) -> Module:
    """Factory over :data:`AGGREGATOR_NAMES`."""
    if name == "conv_sum":
        return ConvSumAggregator(dim, rng)
    if name == "deepset":
        return DeepSetAggregator(dim, rng)
    if name == "gated_sum":
        return GatedSumAggregator(dim, rng)
    if name == "attention":
        return AttentionAggregator(dim, rng, edge_attr_dim=edge_attr_dim)
    raise ValueError(f"unknown aggregator {name!r}; choose from {AGGREGATOR_NAMES}")
