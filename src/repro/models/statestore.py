"""Bounded frontier state storage for the windowed propagation runner.

A windowed pass (see :func:`repro.models.propagation.run_pass` over a
:class:`~repro.graphdata.batching.WindowedSchedule`) keeps only the
current window's state resident.  Rows that cross a window boundary —
the frontier cut sets — are parked here between the forward stream and
the reverse re-stream.  The store is in-memory by default; give it a
``spill_dir`` and a byte budget and it spills the coldest chunks to
uncompressed ``.npz`` files, reloading them on demand.

Eviction is oldest-window-first: the reverse walk consumes chunks in
descending window order, so the smallest window index is always the
furthest future use (Belady's rule for this access pattern) — spilling
it first minimises reloads.

Process defaults come from the environment:

* ``REPRO_SPILL_DIR`` — directory for spill files (created on demand);
  unset disables disk spill (the budget then becomes advisory).
* ``REPRO_STORE_BUDGET_MB`` — resident byte budget before spilling.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
from typing import Dict, Optional

import numpy as np

__all__ = ["StateStore", "SPILL_DIR_ENV_VAR", "STORE_BUDGET_ENV_VAR"]

SPILL_DIR_ENV_VAR = "REPRO_SPILL_DIR"
STORE_BUDGET_ENV_VAR = "REPRO_STORE_BUDGET_MB"

#: distinguishes the spill sub-directories of concurrent stores in one
#: process (several passes per training step each own a store)
_STORE_IDS = itertools.count()


class StateStore:
    """Keyed store of frontier row chunks with optional disk spill.

    ``put(key, rows)`` takes ownership of ``rows``; ``get(key)`` returns
    exactly the bytes that were put (reloading from disk if the chunk
    was spilled); ``drop(key)`` releases a chunk and its spill file.
    ``stats`` counts puts/spills/reloads and tracks resident and peak
    resident bytes so benches and tests can assert boundedness.
    """

    def __init__(
        self,
        spill_dir: Optional[str] = None,
        budget_bytes: Optional[int] = None,
    ):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {budget_bytes}")
        self._resident: Dict[int, np.ndarray] = {}
        self._spilled: Dict[int, str] = {}
        self.budget_bytes = budget_bytes
        self._spill_root = spill_dir
        self._spill_sub: Optional[str] = None
        self.stats = {
            "puts": 0,
            "spills": 0,
            "reloads": 0,
            "resident_bytes": 0,
            "peak_resident_bytes": 0,
            "spilled_bytes": 0,
        }

    @classmethod
    def from_env(cls) -> "StateStore":
        """A store configured from the process environment."""
        spill_dir = os.environ.get(SPILL_DIR_ENV_VAR, "").strip() or None
        raw = os.environ.get(STORE_BUDGET_ENV_VAR, "").strip()
        budget = None
        if raw:
            try:
                budget = int(float(raw) * 1024 * 1024)
            except ValueError:
                raise ValueError(
                    f"${STORE_BUDGET_ENV_VAR} must be a number of MiB, "
                    f"got {raw!r}"
                ) from None
        return cls(spill_dir=spill_dir, budget_bytes=budget)

    # ------------------------------------------------------------------
    def _spill_path(self, key: int) -> str:
        if self._spill_sub is None:
            root = self._spill_root
            assert root is not None
            os.makedirs(root, exist_ok=True)
            self._spill_sub = tempfile.mkdtemp(
                prefix=f"store{os.getpid()}_{next(_STORE_IDS)}_", dir=root
            )
        return os.path.join(self._spill_sub, f"frontier_{key:08d}.npz")

    def _bump_resident(self, delta: int) -> None:
        s = self.stats
        s["resident_bytes"] += delta
        if s["resident_bytes"] > s["peak_resident_bytes"]:
            s["peak_resident_bytes"] = s["resident_bytes"]

    def _maybe_spill(self) -> None:
        if self.budget_bytes is None or self._spill_root is None:
            return
        # oldest window first: the reverse walk reads keys in descending
        # order, so the smallest key has the furthest future use
        while (
            self.stats["resident_bytes"] > self.budget_bytes
            and len(self._resident) > 1
        ):
            key = min(self._resident)
            rows = self._resident.pop(key)
            path = self._spill_path(key)
            np.savez(path, rows=rows)
            self._spilled[key] = path
            self.stats["spills"] += 1
            self.stats["spilled_bytes"] += rows.nbytes
            self._bump_resident(-rows.nbytes)

    # ------------------------------------------------------------------
    def put(self, key: int, rows: np.ndarray) -> None:
        if key in self._resident or key in self._spilled:
            raise KeyError(f"chunk {key} already stored")
        self._resident[key] = rows
        self.stats["puts"] += 1
        self._bump_resident(rows.nbytes)
        self._maybe_spill()

    def get(self, key: int) -> np.ndarray:
        rows = self._resident.get(key)
        if rows is not None:
            return rows
        path = self._spilled.get(key)
        if path is None:
            raise KeyError(f"chunk {key} not stored")
        with np.load(path) as data:
            rows = data["rows"]
        self.stats["reloads"] += 1
        # keep it resident until dropped: the reverse walk reads a chunk
        # exactly once per window, then drops it
        del self._spilled[key]
        os.unlink(path)
        self._resident[key] = rows
        self._bump_resident(rows.nbytes)
        return rows

    def drop(self, key: int) -> None:
        rows = self._resident.pop(key, None)
        if rows is not None:
            self._bump_resident(-rows.nbytes)
            return
        path = self._spilled.pop(key, None)
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def clear(self) -> None:
        for key in list(self._resident):
            self.drop(key)
        for key in list(self._spilled):
            self.drop(key)
        if self._spill_sub is not None:
            shutil.rmtree(self._spill_sub, ignore_errors=True)
            self._spill_sub = None

    def __len__(self) -> int:
        return len(self._resident) + len(self._spilled)

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.clear()
        except Exception:
            pass
