"""GNN models: DeepGate, baselines, aggregators, regressor, registry."""

from .aggregators import (
    AGGREGATOR_NAMES,
    AttentionAggregator,
    ConvSumAggregator,
    DeepSetAggregator,
    GatedSumAggregator,
    build_aggregator,
)
from .baselines import DAGConvGNN, GCN
from .deepgate import DeepGate
from .finetune import DownstreamHead, FineTuner
from ..graphdata.positional import positional_encoding
from .registry import (
    MODEL_KINDS,
    ModelConfig,
    build_model,
    model_from_config,
    table2_configs,
)
from .regressor import PerTypeRegressor

__all__ = [
    "AGGREGATOR_NAMES",
    "AttentionAggregator",
    "ConvSumAggregator",
    "DeepSetAggregator",
    "GatedSumAggregator",
    "build_aggregator",
    "DAGConvGNN",
    "GCN",
    "DeepGate",
    "DownstreamHead",
    "FineTuner",
    "positional_encoding",
    "MODEL_KINDS",
    "ModelConfig",
    "build_model",
    "model_from_config",
    "table2_configs",
    "PerTypeRegressor",
]
