"""Baseline GNN models of Table II: GCN and DAG-ConvGNN.

Both are *layered* (non-recurrent) models with per-layer parameters and an
initial state embedded from the gate-type one-hot — the conventions of the
prior work the paper compares against:

* :class:`GCN` treats the circuit as an undirected graph; every layer
  updates all nodes simultaneously from their (symmetrised) neighbours.
* :class:`DAGConvGNN` follows Eq. (3): layers propagate in topological
  order, aggregating predecessors' *current-layer* states, but there is no
  recurrence and no reversed propagation layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphdata.dataset import PreparedBatch
from ..nn.functional import gather_rows, scatter_rows
from ..nn.modules import GRUCell, Linear, Module
from ..nn.tensor import Tensor
from .aggregators import build_aggregator
from .propagation import AggregateCombineStep, run_pass
from .regressor import PerTypeRegressor

__all__ = ["GCN", "DAGConvGNN"]


class _LayeredModel(Module):
    """Shared plumbing: type embedding, per-layer aggregate+combine, head.

    Each layer is one propagation pass; like DeepGate, passes run through
    the compiled fast path unless built with ``compiled=False`` (the
    reference loop kept for equivalence testing).
    """

    def __init__(
        self,
        num_types: int,
        dim: int,
        num_layers: int,
        aggregator: str,
        rng: np.random.Generator,
        compiled: bool = True,
    ):
        self.num_types = num_types
        self.dim = dim
        self.num_layers = num_layers
        self.aggregator_name = aggregator
        self.compiled = compiled
        self.embed = Linear(num_types, dim, rng)
        self.aggregates = [
            build_aggregator(aggregator, dim, rng) for _ in range(num_layers)
        ]
        self.combines = [GRUCell(dim, dim, rng) for _ in range(num_layers)]
        self.regressor = PerTypeRegressor(dim, num_types, rng)

    def config(self) -> dict:
        """JSON-able constructor arguments (checkpoint ``model_config``)."""
        return {
            "class": type(self).__name__,
            "num_types": self.num_types,
            "dim": self.dim,
            "num_layers": self.num_layers,
            "aggregator": self.aggregator_name,
        }

    def _schedule(self, batch: PreparedBatch):  # pragma: no cover - abstract
        raise NotImplementedError

    def _compiled_schedule(self, batch: PreparedBatch):  # pragma: no cover
        raise NotImplementedError

    def embeddings(self, batch: PreparedBatch) -> Tensor:
        h = self.embed(Tensor(batch.x))
        if self.compiled:
            schedule = self._compiled_schedule(batch)
            for aggregate, combine in zip(self.aggregates, self.combines):
                h = run_pass(h, schedule, AggregateCombineStep(aggregate, combine))
            return h
        schedule = self._schedule(batch)
        for aggregate, combine in zip(self.aggregates, self.combines):
            for group in schedule:
                h_src = gather_rows(h, group.src)
                query = gather_rows(h, group.nodes)
                m = aggregate(h_src, query, group.seg, len(group.nodes))
                h_new = combine(m, query)
                h = scatter_rows(h, group.nodes, h_new)
        return h

    def forward(self, batch: PreparedBatch) -> Tensor:
        h = self.embeddings(batch)
        return self.regressor(h, batch.graph.node_type, fused=self.compiled)


class GCN(_LayeredModel):
    """Undirected message passing; ignores signal flow direction entirely."""

    def __init__(
        self,
        num_types: int = 3,
        dim: int = 64,
        num_layers: int = 4,
        aggregator: str = "conv_sum",
        rng: Optional[np.random.Generator] = None,
        compiled: bool = True,
    ):
        super().__init__(
            num_types,
            dim,
            num_layers,
            aggregator,
            rng if rng is not None else np.random.default_rng(0),
            compiled=compiled,
        )

    def _schedule(self, batch: PreparedBatch):
        return batch.undirected_schedule()

    def _compiled_schedule(self, batch: PreparedBatch):
        return batch.compiled_undirected_schedule()


class DAGConvGNN(_LayeredModel):
    """Topological (directed) layered propagation without recurrence."""

    def __init__(
        self,
        num_types: int = 3,
        dim: int = 64,
        num_layers: int = 4,
        aggregator: str = "conv_sum",
        rng: Optional[np.random.Generator] = None,
        compiled: bool = True,
    ):
        super().__init__(
            num_types,
            dim,
            num_layers,
            aggregator,
            rng if rng is not None else np.random.default_rng(0),
            compiled=compiled,
        )

    def _schedule(self, batch: PreparedBatch):
        return batch.forward_schedule(include_skip=False)

    def _compiled_schedule(self, batch: PreparedBatch):
        return batch.compiled_forward_schedule(include_skip=False)
