"""Model factory and the Table II configuration grid."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .aggregators import AGGREGATOR_NAMES
from .baselines import DAGConvGNN, GCN
from .deepgate import DeepGate

__all__ = [
    "ModelConfig",
    "build_model",
    "model_from_config",
    "table2_configs",
    "config_from_code",
    "MODEL_KINDS",
    "MODEL_CLASSES",
]

MODEL_KINDS = ("gcn", "dag_conv", "dag_rec", "deepgate")

#: classes reconstructible from a checkpoint's ``model_config`` metadata
MODEL_CLASSES = {
    "DeepGate": DeepGate,
    "GCN": GCN,
    "DAGConvGNN": DAGConvGNN,
}


def model_from_config(config: dict, compiled: bool = True):
    """Instantiate a model from its ``config()`` dict (checkpoint meta).

    The inverse of the models' ``config()`` methods: ``config["class"]``
    names the class and the remaining entries are constructor keyword
    arguments.  Weights are expected to be loaded over the fresh
    instance, so the RNG seed is irrelevant and left at its default.
    """
    if not isinstance(config, dict) or "class" not in config:
        raise ValueError(f"model config must be a dict with 'class': {config!r}")
    kwargs = dict(config)
    name = kwargs.pop("class")
    cls = MODEL_CLASSES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown model class {name!r}; expected one of "
            f"{sorted(MODEL_CLASSES)}"
        )
    try:
        return cls(**kwargs, compiled=compiled)
    except TypeError as exc:
        raise ValueError(f"bad model config for {name}: {exc}") from exc


@dataclass(frozen=True)
class ModelConfig:
    """One row of the paper's model-comparison grid."""

    kind: str  # one of MODEL_KINDS
    aggregator: str  # one of AGGREGATOR_NAMES
    use_skip: bool = False

    @property
    def label(self) -> str:
        pretty = {
            "conv_sum": "Conv. Sum",
            "attention": "Attention",
            "deepset": "DeepSet",
            "gated_sum": "GatedSum",
        }[self.aggregator]
        kind = {
            "gcn": "GCN",
            "dag_conv": "DAG-ConvGNN",
            "dag_rec": "DAG-RecGNN",
            "deepgate": "DeepGate",
        }[self.kind]
        if self.kind == "deepgate":
            pretty += " w/ SC" if self.use_skip else " w/o SC"
        return f"{kind} / {pretty}"

    @property
    def code(self) -> str:
        """Compact CLI-friendly spelling, e.g. ``deepgate/attention/sc``."""
        base = f"{self.kind}/{self.aggregator}"
        return f"{base}/sc" if self.use_skip else base


def config_from_code(code: str) -> ModelConfig:
    """Parse ``kind/aggregator[/sc]`` back into a :class:`ModelConfig`.

    The inverse of :attr:`ModelConfig.code`; experiment specs use these
    codes to name model subsets on the command line.
    """
    parts = code.strip().split("/")
    if len(parts) == 2:
        kind, aggregator = parts
        use_skip = False
    elif len(parts) == 3 and parts[2] == "sc":
        kind, aggregator = parts[:2]
        use_skip = True
    else:
        raise ValueError(
            f"bad model code {code!r}; expected kind/aggregator[/sc], "
            f"e.g. 'deepgate/attention/sc'"
        )
    config = ModelConfig(kind, aggregator, use_skip=use_skip)
    if config.kind not in MODEL_KINDS:
        raise ValueError(f"unknown model kind {config.kind!r} in {code!r}")
    if config.aggregator not in AGGREGATOR_NAMES:
        raise ValueError(f"unknown aggregator {config.aggregator!r} in {code!r}")
    return config


def table2_configs() -> List[ModelConfig]:
    """The 13 configurations of Table II, in the paper's row order."""
    configs: List[ModelConfig] = []
    for agg in ("conv_sum", "attention", "deepset", "gated_sum"):
        configs.append(ModelConfig("gcn", agg))
    for agg in ("conv_sum", "attention", "deepset", "gated_sum"):
        configs.append(ModelConfig("dag_conv", agg))
    for agg in ("conv_sum", "deepset", "gated_sum"):
        configs.append(ModelConfig("dag_rec", agg))
    configs.append(ModelConfig("deepgate", "attention", use_skip=False))
    configs.append(ModelConfig("deepgate", "attention", use_skip=True))
    return configs


def build_model(
    config: ModelConfig,
    num_types: int = 3,
    dim: int = 64,
    num_iterations: int = 10,
    num_layers: int = 4,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
):
    """Instantiate the model for one grid configuration.

    ``num_iterations`` applies to the recurrent models (``dag_rec`` and
    ``deepgate``); ``num_layers`` to the layered baselines.
    """
    if config.kind not in MODEL_KINDS:
        raise ValueError(f"unknown model kind {config.kind!r}")
    if config.aggregator not in AGGREGATOR_NAMES:
        raise ValueError(f"unknown aggregator {config.aggregator!r}")
    rng = rng if rng is not None else np.random.default_rng(seed)
    if config.kind == "gcn":
        return GCN(num_types, dim, num_layers, config.aggregator, rng)
    if config.kind == "dag_conv":
        return DAGConvGNN(num_types, dim, num_layers, config.aggregator, rng)
    if config.kind == "dag_rec":
        return DeepGate(
            num_types=num_types,
            dim=dim,
            num_iterations=num_iterations,
            aggregator=config.aggregator,
            use_skip=False,
            use_reverse=True,
            input_mode="init_only",
            rng=rng,
        )
    return DeepGate(
        num_types=num_types,
        dim=dim,
        num_iterations=num_iterations,
        aggregator=config.aggregator,
        use_skip=config.use_skip,
        use_reverse=True,
        input_mode="fixed_x",
        rng=rng,
    )
