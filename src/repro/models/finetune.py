"""Downstream fine-tuning on frozen DeepGate embeddings.

The paper's conclusion proposes applying the learned gate representations
to downstream EDA tasks (power estimation, testability, equivalence-related
analyses) "without much effort in finetuning the model".  This module
implements that workflow: freeze a pre-trained DeepGate, attach a fresh
per-node head, and train only the head on a new per-node target.

Embeddings are extracted once per batch under ``no_grad`` and cached, so
fine-tuning costs a fraction of pre-training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graphdata.dataset import PreparedBatch
from ..nn.functional import l1_loss
from ..nn.modules import MLP, Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from .deepgate import DeepGate

__all__ = ["DownstreamHead", "FineTuner"]


class DownstreamHead(Module):
    """A small MLP mapping frozen node embeddings to a per-node scalar."""

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        hidden: int = 0,
        final_activation: Optional[str] = "sigmoid",
    ):
        hidden = hidden or dim
        self.mlp = MLP([dim, hidden, 1], rng, final_activation=final_activation)

    def forward(self, embeddings: Tensor) -> Tensor:
        return self.mlp(embeddings).reshape(-1)


@dataclass
class FineTuneHistory:
    train_loss: List[float] = field(default_factory=list)


class FineTuner:
    """Train a :class:`DownstreamHead` on frozen DeepGate embeddings.

    Parameters
    ----------
    backbone:
        A (pre-trained) DeepGate whose parameters stay untouched.
    head:
        The trainable task head; built automatically when omitted.
    """

    def __init__(
        self,
        backbone: DeepGate,
        head: Optional[DownstreamHead] = None,
        lr: float = 1e-3,
        seed: int = 0,
    ):
        self.backbone = backbone
        self.head = head or DownstreamHead(
            backbone.dim, np.random.default_rng(seed)
        )
        self.optimizer = Adam(self.head.parameters(), lr=lr)
        self.history = FineTuneHistory()
        # the cached batch object is kept alongside its embeddings: the
        # id() key is only unique while the batch is alive, so the cache
        # must pin it or a recycled id would serve stale embeddings
        self._embedding_cache: Dict[int, tuple] = {}

    def embeddings(self, batch: PreparedBatch) -> Tensor:
        """Frozen backbone embeddings, cached per batch object."""
        key = id(batch)
        if key not in self._embedding_cache:
            with no_grad():
                self._embedding_cache[key] = (
                    batch,
                    self.backbone.embeddings(batch).numpy(),
                )
        return Tensor(self._embedding_cache[key][1])

    def fit(
        self,
        batches: Sequence[PreparedBatch],
        targets: Sequence[np.ndarray],
        epochs: int = 50,
    ) -> FineTuneHistory:
        """Train the head; ``targets[k]`` is the per-node target of batch k."""
        if len(batches) != len(targets):
            raise ValueError("one target array per batch required")
        for batch, target in zip(batches, targets):
            if len(target) != batch.num_nodes:
                raise ValueError(
                    f"target size {len(target)} != {batch.num_nodes} nodes"
                )
        for _ in range(epochs):
            total, count = 0.0, 0
            for batch, target in zip(batches, targets):
                self.optimizer.zero_grad()
                pred = self.head(self.embeddings(batch))
                loss = l1_loss(pred, np.asarray(target, dtype=np.float32))
                loss.backward()
                self.optimizer.step()
                total += loss.item() * batch.num_nodes
                count += batch.num_nodes
            self.history.train_loss.append(total / max(count, 1))
        return self.history

    def predict(self, batch: PreparedBatch) -> np.ndarray:
        """Per-node head predictions for a batch."""
        with no_grad():
            return self.head(self.embeddings(batch)).numpy()
