"""The DeepGate model: recurrent DAG-GNN with attention and skip connections.

One class implements both DeepGate and the DAG-RecGNN baselines of Table II,
because the paper defines DAG-RecGNN as "the same COMBINE function and the
reversed propagation layer design" with a non-attention aggregator and no
skip connections.  The knobs:

``aggregator``   'attention' (DeepGate) or 'conv_sum' / 'deepset' /
                 'gated_sum' (DAG-RecGNN rows of Table II)
``use_skip``     add reconvergence skip connections with positional-encoded
                 edge attributes to the attention scores (§III-D)
``input_mode``   'fixed_x': gate-type one-hot concatenated into every GRU
                 update (DeepGate's fix for vanishing gate information);
                 'init_only': h0 = embed(x), message alone drives the GRU
                 (the previous-DAG-GNN convention)
``use_reverse``  run a reversed propagation layer after each forward layer
``compiled``     run propagation through the batch's
                 :class:`~repro.graphdata.batching.CompiledSchedule` fast
                 path (state materialised once per pass, cached segment
                 layouts, precomputed edge-attribute blocks).  ``False``
                 keeps the reference level-by-level ``scatter_rows`` loop —
                 numerically identical, used for equivalence tests and as
                 the ``repro bench --reference`` baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphdata.dataset import PreparedBatch
from ..nn import init as nn_init
from ..nn.functional import concat, gather_rows, scatter_rows
from ..nn.modules import GRUCell, Linear, Module
from ..nn.tensor import Tensor
from .aggregators import build_aggregator
from .propagation import AggregateCombineStep, get_window_budget, run_pass
from .regressor import PerTypeRegressor

__all__ = ["DeepGate"]


class DeepGate(Module):
    """Recurrent circuit GNN for per-gate signal probability prediction."""

    def __init__(
        self,
        num_types: int = 3,
        dim: int = 64,
        num_iterations: int = 10,
        aggregator: str = "attention",
        use_skip: bool = True,
        use_reverse: bool = True,
        input_mode: str = "fixed_x",
        pe_levels: int = 8,
        rng: Optional[np.random.Generator] = None,
        compiled: bool = True,
    ):
        if input_mode not in ("fixed_x", "init_only"):
            raise ValueError(f"unknown input_mode {input_mode!r}")
        if use_skip and aggregator != "attention":
            raise ValueError("skip connections require the attention aggregator")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_types = num_types
        self.dim = dim
        self.num_iterations = num_iterations
        self.aggregator_name = aggregator
        self.use_skip = use_skip
        self.use_reverse = use_reverse
        self.input_mode = input_mode
        self.pe_levels = pe_levels
        self.compiled = compiled

        # [gamma(D), skip indicator] per edge (see graphdata.batching)
        edge_dim = 2 * pe_levels + 1 if use_skip else 0
        gru_in = dim + (num_types if input_mode == "fixed_x" else 0)

        self.fwd_aggregate = build_aggregator(aggregator, dim, rng, edge_dim)
        self.fwd_combine = GRUCell(gru_in, dim, rng)
        if use_reverse:
            self.rev_aggregate = build_aggregator(aggregator, dim, rng)
            self.rev_combine = GRUCell(gru_in, dim, rng)
        else:
            self.rev_aggregate = None
            self.rev_combine = None
        if input_mode == "init_only":
            self.embed = Linear(num_types, dim, rng)
        else:
            self.embed = None
        self.regressor = PerTypeRegressor(dim, num_types, rng)
        # the paper initialises hidden states randomly; a fixed draw (saved
        # as a buffer, not trained) keeps training deterministic
        self.h_init = Tensor(nn_init.normal((1, dim), rng, std=0.1))

    def config(self) -> dict:
        """JSON-able constructor arguments (checkpoint ``model_config``)."""
        return {
            "class": "DeepGate",
            "num_types": self.num_types,
            "dim": self.dim,
            "num_iterations": self.num_iterations,
            "aggregator": self.aggregator_name,
            "use_skip": self.use_skip,
            "use_reverse": self.use_reverse,
            "input_mode": self.input_mode,
            "pe_levels": self.pe_levels,
        }

    # ------------------------------------------------------------------
    def initial_state(self, batch: PreparedBatch) -> Tensor:
        x = Tensor(batch.x)
        n = batch.graph.num_nodes
        if self.input_mode == "init_only":
            return self.embed(x)
        return Tensor(np.repeat(self.h_init.data, n, axis=0))

    def embeddings(
        self, batch: PreparedBatch, num_iterations: Optional[int] = None
    ) -> Tensor:
        """Run ``T`` rounds of forward(+reverse) propagation; return (N, d)."""
        iterations = num_iterations or self.num_iterations
        h = self.initial_state(batch)
        if self.compiled:
            budget = get_window_budget()
            if budget is not None:
                # streaming mode: bounded windows instead of whole-pass
                # compilation — bitwise-identical outputs, bounded state
                fwd = batch.windowed_forward_schedule(
                    budget, self.use_skip, self.pe_levels
                )
                rev = (
                    batch.windowed_reverse_schedule(budget)
                    if self.use_reverse
                    else None
                )
            else:
                fwd = batch.compiled_forward_schedule(
                    self.use_skip, self.pe_levels
                )
                rev = (
                    batch.compiled_reverse_schedule()
                    if self.use_reverse
                    else None
                )
            for _ in range(iterations):
                h = self._propagate_compiled(
                    h, fwd, self.fwd_aggregate, self.fwd_combine,
                    use_edge_attr=self.use_skip,
                )
                if rev is not None:
                    h = self._propagate_compiled(
                        h, rev, self.rev_aggregate, self.rev_combine,
                        use_edge_attr=False,
                    )
            return h
        x = Tensor(batch.x)
        fwd = batch.forward_schedule(self.use_skip, self.pe_levels)
        rev = batch.reverse_schedule() if self.use_reverse else None
        for _ in range(iterations):
            h = self._propagate(h, x, fwd, self.fwd_aggregate, self.fwd_combine)
            if rev is not None:
                h = self._propagate(h, x, rev, self.rev_aggregate, self.rev_combine)
        return h

    def forward(
        self, batch: PreparedBatch, num_iterations: Optional[int] = None
    ) -> Tensor:
        """Predicted probability per node, shape (N,)."""
        h = self.embeddings(batch, num_iterations)
        return self.regressor(h, batch.graph.node_type, fused=self.compiled)

    # ------------------------------------------------------------------
    def _propagate_compiled(self, h, schedule, aggregate, combine, use_edge_attr):
        """One pass over a compiled schedule (see models.propagation)."""
        step = AggregateCombineStep(
            aggregate,
            combine,
            fixed_x=self.input_mode == "fixed_x",
            use_edge_attr=use_edge_attr,
        )
        return run_pass(h, schedule, step)

    def _propagate(self, h, x, schedule, aggregate, combine):
        use_edge_attr = (
            self.use_skip and aggregate is self.fwd_aggregate
        )
        for group in schedule:
            h_src = gather_rows(h, group.src)
            query = gather_rows(h, group.nodes)
            seg = group.seg
            edge_attr = None
            if use_edge_attr:
                if group.has_skip:
                    h_src = concat(
                        [h_src, gather_rows(h, group.skip_src)], axis=0
                    )
                    seg = np.concatenate([group.seg, group.skip_seg])
                    attr = np.concatenate(
                        [
                            np.zeros(
                                (len(group.src), group.skip_attr.shape[1]),
                                dtype=np.float32,
                            ),
                            group.skip_attr,
                        ],
                        axis=0,
                    )
                    edge_attr = Tensor(attr)
                else:
                    edge_attr = Tensor(
                        np.zeros(
                            (len(group.src), 2 * self.pe_levels + 1),
                            dtype=np.float32,
                        )
                    )
            m = aggregate(h_src, query, seg, len(group.nodes), edge_attr)
            if self.input_mode == "fixed_x":
                gru_in = concat([m, gather_rows(x, group.nodes)], axis=1)
            else:
                gru_in = m
            h_new = combine(gru_in, query)
            h = scatter_rows(h, group.nodes, h_new)
        return h
