"""Per-gate-type probability regressor (paper §III-C, "Regressor").

After ``T`` iterations the hidden state of every node is mapped to a scalar
probability by an MLP whose weights are *shared among nodes of the same gate
type* — i.e. one MLP per type, applied to that type's nodes.

Two execution paths:

* the **reference** composite path records one autograd node per gather /
  linear / activation / scatter, per type — the equivalence oracle;
* the **fused epilogue** (``fused=True``, used by the compiled models)
  runs the whole readout as ONE autograd node with a closed-form
  backward, so the final stage after a compiled pass stops being a chain
  of ~10 small-tensor graph nodes per type.  Its GEMMs run through the
  pluggable backend seam like the pass kernels.
"""

from __future__ import annotations


import numpy as np

from ..nn.backends import matmul as _mm
from ..nn.functional import gather_rows, scatter_rows
from ..nn.modules import MLP, Module
from ..nn.tensor import Tensor, is_grad_enabled
from .aggregators import _acc

__all__ = ["PerTypeRegressor"]


class PerTypeRegressor(Module):
    """One sigmoid-headed MLP per gate type, output in (0, 1)."""

    def __init__(
        self,
        dim: int,
        num_types: int,
        rng: np.random.Generator,
        hidden: int = 0,
    ):
        hidden = hidden or dim
        self.num_types = num_types
        self.heads = [
            MLP([dim, hidden, 1], rng, final_activation="sigmoid")
            for _ in range(num_types)
        ]

    def forward(
        self, h: Tensor, node_type: np.ndarray, fused: bool = False
    ) -> Tensor:
        """Map (N, d) states to (N,) probabilities via the type-wise heads."""
        if fused:
            return self._forward_fused(h, node_type)
        n = h.shape[0]
        out = Tensor(np.zeros((n, 1), dtype=np.float32))
        for t in range(self.num_types):
            idx = np.nonzero(node_type == t)[0]
            if idx.size == 0:
                continue
            pred = self.heads[t](gather_rows(h, idx))
            out = scatter_rows(out, idx, pred)
        return out.reshape(-1)

    def _forward_fused(self, h: Tensor, node_type: np.ndarray) -> Tensor:
        """The whole readout as one autograd node (closed-form backward)."""
        hd = h.data
        out = np.zeros(hd.shape[0], dtype=np.float32)
        saved = []
        for t in range(self.num_types):
            idx = np.flatnonzero(node_type == t)
            if idx.size == 0:
                continue
            lin1, lin2 = self.heads[t].layers
            x = hd[idx]
            r1 = np.maximum(
                _mm(x, lin1.weight.data) + lin1.bias.data, 0.0
            )
            z = _mm(r1, lin2.weight.data) + lin2.bias.data
            p = 1.0 / (1.0 + np.exp(-z))
            out[idx] = p.ravel()
            saved.append((t, idx, x, r1, p))
        params = tuple(
            p for head in self.heads for p in head.parameters()
        )
        if not (
            is_grad_enabled()
            and (h.requires_grad or any(p.requires_grad for p in params))
        ):
            return Tensor(out)

        def backward(grad: np.ndarray) -> None:
            need_h = h.requires_grad
            dh = np.zeros_like(hd) if need_h else None
            for t, idx, x, r1, p in saved:
                lin1, lin2 = self.heads[t].layers
                dz = grad[idx].reshape(-1, 1) * p * (1.0 - p)
                _acc(lin2.weight, _mm(r1.T, dz))
                _acc(lin2.bias, dz.sum(axis=0))
                da1 = _mm(dz, lin2.weight.data.T) * (r1 > 0)
                _acc(lin1.weight, _mm(x.T, da1))
                _acc(lin1.bias, da1.sum(axis=0))
                if need_h:
                    dh[idx] = _mm(da1, lin1.weight.data.T)
            if need_h:
                h._accumulate(dh, own=True)

        return Tensor._make(out, (h, *params), backward)
