"""Per-gate-type probability regressor (paper §III-C, "Regressor").

After ``T`` iterations the hidden state of every node is mapped to a scalar
probability by an MLP whose weights are *shared among nodes of the same gate
type* — i.e. one MLP per type, applied to that type's nodes.
"""

from __future__ import annotations


import numpy as np

from ..nn.functional import gather_rows, scatter_rows
from ..nn.modules import MLP, Module
from ..nn.tensor import Tensor

__all__ = ["PerTypeRegressor"]


class PerTypeRegressor(Module):
    """One sigmoid-headed MLP per gate type, output in (0, 1)."""

    def __init__(
        self,
        dim: int,
        num_types: int,
        rng: np.random.Generator,
        hidden: int = 0,
    ):
        hidden = hidden or dim
        self.num_types = num_types
        self.heads = [
            MLP([dim, hidden, 1], rng, final_activation="sigmoid")
            for _ in range(num_types)
        ]

    def forward(self, h: Tensor, node_type: np.ndarray) -> Tensor:
        """Map (N, d) states to (N,) probabilities via the type-wise heads."""
        n = h.shape[0]
        out = Tensor(np.zeros((n, 1), dtype=np.float32))
        for t in range(self.num_types):
            idx = np.nonzero(node_type == t)[0]
            if idx.size == 0:
                continue
            pred = self.heads[t](gather_rows(h, idx))
            out = scatter_rows(out, idx, pred)
        return out.reshape(-1)
