"""From-scratch numpy autograd framework (PyTorch substitute)."""

from . import functional, init, kernels
from .kernels import SegmentLayout
from .functional import (
    concat,
    gather_rows,
    l1_loss,
    scatter_rows,
    segment_softmax,
    segment_sum,
)
from .modules import GRUCell, Linear, MLP, Module, Sequential
from .optim import Adam, SGD, clip_grad_norm
from .serialization import load_module, save_module
from .tensor import Tensor, no_grad, unbroadcast

__all__ = [
    "functional",
    "init",
    "kernels",
    "SegmentLayout",
    "concat",
    "gather_rows",
    "l1_loss",
    "scatter_rows",
    "segment_softmax",
    "segment_sum",
    "GRUCell",
    "Linear",
    "MLP",
    "Module",
    "Sequential",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "load_module",
    "save_module",
    "Tensor",
    "no_grad",
    "unbroadcast",
]
