"""From-scratch numpy autograd framework (PyTorch substitute)."""

from . import functional, init
from .functional import (
    concat,
    gather_rows,
    l1_loss,
    scatter_rows,
    segment_softmax,
    segment_sum,
)
from .modules import GRUCell, Linear, MLP, Module, Sequential
from .optim import Adam, SGD, clip_grad_norm
from .serialization import load_module, save_module
from .tensor import Tensor, no_grad, unbroadcast

__all__ = [
    "functional",
    "init",
    "concat",
    "gather_rows",
    "l1_loss",
    "scatter_rows",
    "segment_softmax",
    "segment_sum",
    "GRUCell",
    "Linear",
    "MLP",
    "Module",
    "Sequential",
    "Adam",
    "SGD",
    "clip_grad_norm",
    "load_module",
    "save_module",
    "Tensor",
    "no_grad",
    "unbroadcast",
]
