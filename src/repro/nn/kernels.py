"""Compiled segment/GRU kernels: the propagation fast path's number crunching.

``np.add.at`` / ``np.maximum.at`` are the slowest reduction primitives in
numpy (per-element dispatch, no vectorisation).  Every segment reduction in
the autograd layer instead goes through a :class:`SegmentLayout`: a sort
permutation over the segment ids, computed once and reused, that turns each
reduction into a contiguous ``np.add.reduceat`` / ``np.maximum.reduceat``
over the sorted rows.  The stable sort keeps elements of a segment in
their original order, but ``reduceat`` may associate the additions
pairwise where ``np.add.at`` is strictly sequential, so results match the
reference to float32 round-off (~1 ulp), not bit for bit.

The module also provides the closed-form fused GRU forward/backward used by
:class:`~repro.nn.modules.GRUCell`, collapsing the ~15 elementwise autograd
nodes of the expression-by-expression formulation into a single node with
two saved activations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "SegmentLayout",
    "segment_sum_np",
    "segment_max_np",
    "segment_present_sum",
    "segment_softmax_np",
    "attention_forward_np",
    "attention_backward_np",
    "gru_forward_np",
    "gru_backward_np",
]


class SegmentLayout:
    """Cached sort permutation for reductions over one segment-id array.

    Computed once per ``(segment_ids, num_segments)`` pair — e.g. once per
    level group of a compiled schedule — and reused by every segment sum,
    max and softmax over those ids, forward and backward, every epoch.

    ``order``    stable argsort of ``segment_ids``
    ``starts``   start offset of each *present* segment within the sorted
                 order (empty segments simply don't appear)
    ``present``  the distinct segment ids, ascending, one per ``starts``
    """

    __slots__ = ("segment_ids", "num_segments", "order", "starts", "present")

    def __init__(self, segment_ids: np.ndarray, num_segments: int):
        ids = np.asarray(segment_ids, dtype=np.int64).reshape(-1)
        if ids.size:
            lo, hi = int(ids.min()), int(ids.max())
            if lo < 0 or hi >= num_segments:
                raise ValueError(
                    f"segment ids span [{lo}, {hi}] outside "
                    f"[0, {num_segments})"
                )
        self.segment_ids = ids
        self.num_segments = int(num_segments)
        self.order = np.argsort(ids, kind="stable")
        sorted_ids = ids[self.order]
        if ids.size:
            boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
            self.starts = np.concatenate(
                [np.zeros(1, np.int64), boundaries]
            )
            self.present = sorted_ids[self.starts]
        else:
            self.starts = np.zeros(0, np.int64)
            self.present = np.zeros(0, np.int64)

    def __len__(self) -> int:
        return self.segment_ids.size


def segment_present_sum(
    x: np.ndarray, layout: SegmentLayout
) -> Tuple[np.ndarray, np.ndarray]:
    """Row sums per *present* segment: ``(present_ids, sums)``.

    The sparse core of :func:`segment_sum_np`; scatter-style gradient
    accumulation uses it directly to touch only the rows that actually
    received contributions instead of materialising a dense buffer.
    """
    if not layout.present.size:
        empty = np.zeros((0,) + x.shape[1:], dtype=np.float32)
        return layout.present, empty
    xs = np.ascontiguousarray(x[layout.order])
    return layout.present, np.add.reduceat(xs, layout.starts, axis=0)


def segment_sum_np(x: np.ndarray, layout: SegmentLayout) -> np.ndarray:
    """Dense segment sum: ``out[s] = sum_{k: ids[k]==s} x[k]``; zeros for
    empty segments."""
    out = np.zeros((layout.num_segments,) + x.shape[1:], dtype=np.float32)
    present, sums = segment_present_sum(x, layout)
    if present.size:
        out[present] = sums
    return out


def segment_max_np(
    x: np.ndarray, layout: SegmentLayout, fill: float = -np.inf
) -> np.ndarray:
    """Per-segment max of a 1-D array; empty segments take ``fill``."""
    out = np.full(layout.num_segments, fill, dtype=np.float32)
    if layout.present.size:
        xs = np.ascontiguousarray(x[layout.order])
        out[layout.present] = np.maximum.reduceat(xs, layout.starts)
    return out


def segment_softmax_np(
    s: np.ndarray, layout: SegmentLayout
) -> np.ndarray:
    """Numerically stable per-segment softmax of a 1-D score array."""
    ids = layout.segment_ids
    seg_max = segment_max_np(s, layout)
    exps = np.exp(s - seg_max[ids])
    denom = segment_sum_np(exps, layout)
    return exps / denom[ids]


# ---------------------------------------------------------------------------
# fused additive attention (paper Eq. 5)
# ---------------------------------------------------------------------------


def attention_forward_np(
    h_src: np.ndarray,
    q: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    we: Optional[np.ndarray],
    attr: Optional[np.ndarray],
    layout: SegmentLayout,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused attention aggregate: scores -> segment softmax -> weighted sum.

    ``q`` is one row per *target* (not per edge); its score contribution is
    computed once per target and gathered, matching the per-edge
    composite formulation bit for bit.  Returns ``(m, alpha)`` with
    ``alpha`` saved for the backward.
    """
    seg = layout.segment_ids
    scores = (q @ wq).reshape(-1)[seg] + (h_src @ wk).reshape(-1)
    if we is not None:
        scores = scores + (attr @ we).reshape(-1)
    alpha = segment_softmax_np(scores, layout)
    m = segment_sum_np(h_src * alpha[:, None], layout)
    return m, alpha


def attention_backward_np(
    dm: np.ndarray,
    h_src: np.ndarray,
    q: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    attr: Optional[np.ndarray],
    alpha: np.ndarray,
    layout: SegmentLayout,
    need_edge: bool = False,
) -> Tuple[np.ndarray, ...]:
    """Closed-form backward of :func:`attention_forward_np`.

    Returns ``(dh_src, dq, dwq, dwk, dwe)``; ``dwe`` is ``None`` unless
    ``need_edge`` (the edge attributes themselves are constants).
    """
    seg = layout.segment_ids
    dm_e = dm[seg]
    dh = alpha[:, None] * dm_e
    dalpha = np.einsum("ij,ij->i", h_src, dm_e)
    # softmax jacobian: ds = alpha * (dalpha - sum_segment(alpha * dalpha))
    weighted = alpha * dalpha
    ds = weighted - alpha * segment_sum_np(weighted, layout)[seg]
    dh += ds[:, None] * wk.reshape(1, -1)
    dwk = (h_src.T @ ds).reshape(wk.shape)
    ds_t = segment_sum_np(ds, layout)
    dq = ds_t[:, None] * wq.reshape(1, -1)
    dwq = (q.T @ ds_t).reshape(wq.shape)
    dwe = (attr.T @ ds).reshape(-1, 1) if need_edge else None
    return dh, dq, dwq, dwk, dwe


# ---------------------------------------------------------------------------
# fused GRU
# ---------------------------------------------------------------------------


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def gru_forward_np(
    x: np.ndarray,
    h: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
    """Fused GRU forward; returns ``(h_new, saved)`` for the backward.

    ``h' = (1 - z) * n + z * h`` with ``r = sigmoid(W_r x + U_r h)``,
    ``z`` alike, and ``n = tanh(W_n x + r * (U_n h))`` (biases folded in).
    """
    d = h.shape[1]
    gi = x @ w_ih + b_ih
    gh = h @ w_hh + b_hh
    r = _sigmoid(gi[:, :d] + gh[:, :d])
    z = _sigmoid(gi[:, d:2 * d] + gh[:, d:2 * d])
    hn = gh[:, 2 * d:]
    n = np.tanh(gi[:, 2 * d:] + r * hn)
    out = (1.0 - z) * n + z * h
    return out.astype(np.float32, copy=False), (r, z, n, hn)


def gru_backward_np(
    grad: np.ndarray,
    x: np.ndarray,
    h: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    saved: Tuple[np.ndarray, ...],
    need_x: bool = True,
    need_h: bool = True,
    need_w: bool = True,
) -> Tuple[Optional[np.ndarray], ...]:
    """Closed-form GRU backward.

    Returns ``(dx, dh, dw_ih, dw_hh, db_ih, db_hh)`` with ``None`` for the
    groups not requested (``need_w`` covers both weights and biases).
    """
    r, z, n, hn = saved
    dz = grad * (h - n) * z * (1.0 - z)
    dn = grad * (1.0 - z) * (1.0 - n * n)
    dr = dn * hn * r * (1.0 - r)
    dgi = np.concatenate([dr, dz, dn], axis=1)
    dgh = np.concatenate([dr, dz, dn * r], axis=1)
    dx = dgi @ w_ih.T if need_x else None
    dh = (dgh @ w_hh.T + grad * z) if need_h else None
    if need_w:
        dw_ih = x.T @ dgi
        dw_hh = h.T @ dgh
        db_ih = dgi.sum(axis=0)
        db_hh = dgh.sum(axis=0)
    else:
        dw_ih = dw_hh = db_ih = db_hh = None
    return dx, dh, dw_ih, dw_hh, db_ih, db_hh
