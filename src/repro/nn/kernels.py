"""Compiled segment/GRU kernels: the propagation fast path's number crunching.

``np.add.at`` / ``np.maximum.at`` are the slowest reduction primitives in
numpy (per-element dispatch, no vectorisation).  Every segment reduction in
the autograd layer instead goes through a :class:`SegmentLayout`: a sort
permutation over the segment ids, computed once and reused, that turns each
reduction into a contiguous ``np.add.reduceat`` / ``np.maximum.reduceat``
over the sorted rows.  The stable sort keeps elements of a segment in
their original order, but ``reduceat`` may associate the additions
pairwise where ``np.add.at`` is strictly sequential, so results match the
reference to float32 round-off (~1 ulp), not bit for bit.

The module also provides the closed-form fused forward/backward pairs the
models' hot path runs on: the GRU combine (full and with a precomputed
hidden transform, so ``h @ W_hh`` happens once per pass instead of once
per level group), and all four of the paper's AGGREGATE designs
(Table II) — each collapsing a composite per-edge Linear/MLP graph into a
single autograd node over a cached :class:`SegmentLayout`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .backends import matmul as _mm

__all__ = [
    "SegmentLayout",
    "segment_sum_np",
    "segment_max_np",
    "segment_present_sum",
    "segment_softmax_np",
    "segment_softmax_weighted_np",
    "attention_forward_np",
    "attention_backward_np",
    "conv_sum_forward_np",
    "conv_sum_backward_np",
    "deepset_forward_np",
    "deepset_backward_np",
    "gated_sum_forward_np",
    "gated_sum_backward_np",
    "gru_forward_np",
    "gru_gates_np",
    "gru_gates_backward_np",
    "gru_backward_np",
    "gru_pre_forward_np",
    "gru_pre_backward_np",
]


class SegmentLayout:
    """Cached sort permutation for reductions over one segment-id array.

    Computed once per ``(segment_ids, num_segments)`` pair — e.g. once per
    level group of a compiled schedule — and reused by every segment sum,
    max and softmax over those ids, forward and backward, every epoch.

    ``order``      stable argsort of ``segment_ids``
    ``starts``     start offset of each *present* segment within the sorted
                   order (empty segments simply don't appear)
    ``present``    the distinct segment ids, ascending, one per ``starts``
    ``is_sorted``  True when ``segment_ids`` is already non-decreasing —
                   compiled level groups emit edges target-ordered, so the
                   reduction kernels skip the permutation gather entirely
    """

    __slots__ = (
        "segment_ids", "num_segments", "order", "starts", "present",
        "is_sorted", "_counts", "_sizes",
    )

    def __init__(self, segment_ids: np.ndarray, num_segments: int):
        ids = np.asarray(segment_ids, dtype=np.int64).reshape(-1)
        if ids.size:
            lo, hi = int(ids.min()), int(ids.max())
            if lo < 0 or hi >= num_segments:
                raise ValueError(
                    f"segment ids span [{lo}, {hi}] outside "
                    f"[0, {num_segments})"
                )
        self.segment_ids = ids
        self.num_segments = int(num_segments)
        self.is_sorted = bool(ids.size < 2 or (ids[1:] >= ids[:-1]).all())
        self.order = np.argsort(ids, kind="stable")
        sorted_ids = ids[self.order]
        if ids.size:
            boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
            self.starts = np.concatenate(
                [np.zeros(1, np.int64), boundaries]
            )
            self.present = sorted_ids[self.starts]
        else:
            self.starts = np.zeros(0, np.int64)
            self.present = np.zeros(0, np.int64)
        self._counts: Optional[np.ndarray] = None
        self._sizes: Optional[np.ndarray] = None

    @property
    def sizes(self) -> np.ndarray:
        """Element count per *present* segment (``starts``-aligned), cached."""
        if self._sizes is None:
            self._sizes = np.diff(
                np.append(self.starts, self.segment_ids.size)
            )
        return self._sizes

    @property
    def counts(self) -> np.ndarray:
        """Element count per segment, ``(num_segments,)`` float32, cached.

        The fused linear+segment-sum kernels use it to fold a bias through
        the reduction: ``sum_e (x_e W + b) = (sum_e x_e) W + n_s b``.
        """
        if self._counts is None:
            c = np.zeros(self.num_segments, dtype=np.float32)
            if self.present.size:
                sizes = np.diff(
                    np.concatenate([self.starts, [self.segment_ids.size]])
                )
                c[self.present] = sizes
            self._counts = c
        return self._counts

    def __len__(self) -> int:
        return self.segment_ids.size


def segment_present_sum(
    x: np.ndarray, layout: SegmentLayout
) -> Tuple[np.ndarray, np.ndarray]:
    """Row sums per *present* segment: ``(present_ids, sums)``.

    The sparse core of :func:`segment_sum_np`; scatter-style gradient
    accumulation uses it directly to touch only the rows that actually
    received contributions instead of materialising a dense buffer.
    """
    if not layout.present.size:
        empty = np.zeros((0,) + x.shape[1:], dtype=np.float32)
        return layout.present, empty
    xs = x if layout.is_sorted else np.ascontiguousarray(x[layout.order])
    return layout.present, np.add.reduceat(xs, layout.starts, axis=0)


def segment_sum_np(x: np.ndarray, layout: SegmentLayout) -> np.ndarray:
    """Dense segment sum: ``out[s] = sum_{k: ids[k]==s} x[k]``; zeros for
    empty segments."""
    present, sums = segment_present_sum(x, layout)
    if present.size == layout.num_segments:
        # every segment present: the reduceat output already IS the dense
        # result, in segment order — skip the zeros + scatter round-trip
        return np.asarray(sums, dtype=np.float32)
    out = np.zeros((layout.num_segments,) + x.shape[1:], dtype=np.float32)
    if present.size:
        out[present] = sums
    return out


def segment_max_np(
    x: np.ndarray, layout: SegmentLayout, fill: float = -np.inf
) -> np.ndarray:
    """Per-segment max of a 1-D array; empty segments take ``fill``."""
    out = np.full(layout.num_segments, fill, dtype=np.float32)
    if layout.present.size:
        xs = x if layout.is_sorted else np.ascontiguousarray(x[layout.order])
        out[layout.present] = np.maximum.reduceat(xs, layout.starts)
    return out


def segment_softmax_np(
    s: np.ndarray, layout: SegmentLayout
) -> np.ndarray:
    """Numerically stable per-segment softmax of a 1-D score array.

    The output has one entry per *edge*, so targets with no incoming
    edges simply contribute no rows: with zero edges the result is the
    well-defined empty float32 array — never NaN, regardless of how many
    empty segments the layout declares (their ``-inf`` running maxima and
    zero denominators are never indexed).
    """
    if layout.segment_ids.size == 0:
        return np.zeros(0, dtype=np.float32)
    ids = layout.segment_ids
    seg_max = segment_max_np(s, layout)
    exps = np.exp(s - seg_max[ids])
    denom = segment_sum_np(exps, layout)
    return exps / denom[ids]


def segment_softmax_weighted_np(
    s: np.ndarray, x: np.ndarray, layout: SegmentLayout
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused ``alpha = segment_softmax(s)`` + ``m = segment_sum(alpha*x)``.

    The attention pass-step runs this once per level group, so the whole
    score → softmax → weighted-sum chain shares one permutation (none at
    all on sorted layouts) and broadcasts the per-segment max/denominator
    with ``np.repeat`` instead of dense scatter + gather round-trips.
    Returns ``(m, alpha)`` with ``m`` dense ``(num_segments, d)``.
    """
    n = layout.num_segments
    if layout.segment_ids.size == 0:
        return (
            np.zeros((n,) + x.shape[1:], dtype=np.float32),
            np.zeros(0, dtype=np.float32),
        )
    if layout.is_sorted:
        ss, xs = s, x
    else:
        ss = s[layout.order]
        xs = np.ascontiguousarray(x[layout.order])
    starts, sizes = layout.starts, layout.sizes
    dense = layout.present.size == n
    seg_max = np.maximum.reduceat(ss, starts)
    if dense and layout.is_sorted:
        # segment ids double as compressed ranks: broadcasting per-segment
        # values by take is ~4x cheaper than repeat-by-counts
        ids = layout.segment_ids
        e = np.exp(ss - seg_max[ids])
        denom = np.add.reduceat(e, starts)
        a = e / denom[ids]
    else:
        e = np.exp(ss - np.repeat(seg_max, sizes))
        denom = np.add.reduceat(e, starts)
        a = e / np.repeat(denom, sizes)
    msum = np.add.reduceat(xs * a[:, None], starts, axis=0)
    if dense:
        m = np.asarray(msum, dtype=np.float32)
    else:
        m = np.zeros((n,) + x.shape[1:], dtype=np.float32)
        m[layout.present] = msum
    if not layout.is_sorted:
        alpha = np.empty_like(a)
        alpha[layout.order] = a
        a = alpha
    return m, np.asarray(a, dtype=np.float32)


# ---------------------------------------------------------------------------
# fused additive attention (paper Eq. 5)
# ---------------------------------------------------------------------------


def attention_forward_np(
    h_src: np.ndarray,
    q: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    we: Optional[np.ndarray],
    attr: Optional[np.ndarray],
    layout: SegmentLayout,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused attention aggregate: scores -> segment softmax -> weighted sum.

    ``q`` is one row per *target* (not per edge); its score contribution is
    computed once per target and gathered, matching the per-edge
    composite formulation bit for bit.  Returns ``(m, alpha)`` with
    ``alpha`` saved for the backward.
    """
    seg = layout.segment_ids
    scores = _mm(q, wq).reshape(-1)[seg] + _mm(h_src, wk).reshape(-1)
    if we is not None:
        scores = scores + _mm(attr, we).reshape(-1)
    alpha = segment_softmax_np(scores, layout)
    m = segment_sum_np(h_src * alpha[:, None], layout)
    return m, alpha


def attention_backward_np(
    dm: np.ndarray,
    h_src: np.ndarray,
    q: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    attr: Optional[np.ndarray],
    alpha: np.ndarray,
    layout: SegmentLayout,
    need_edge: bool = False,
) -> Tuple[np.ndarray, ...]:
    """Closed-form backward of :func:`attention_forward_np`.

    Returns ``(dh_src, dq, dwq, dwk, dwe)``; ``dwe`` is ``None`` unless
    ``need_edge`` (the edge attributes themselves are constants).
    """
    seg = layout.segment_ids
    dm_e = dm[seg]
    dh = alpha[:, None] * dm_e
    dalpha = np.einsum("ij,ij->i", h_src, dm_e)
    # softmax jacobian: ds = alpha * (dalpha - sum_segment(alpha * dalpha))
    weighted = alpha * dalpha
    ds = weighted - alpha * segment_sum_np(weighted, layout)[seg]
    dh += ds[:, None] * wk.reshape(1, -1)
    dwk = _mm(h_src.T, ds).reshape(wk.shape)
    ds_t = segment_sum_np(ds, layout)
    dq = ds_t[:, None] * wq.reshape(1, -1)
    dwq = _mm(q.T, ds_t).reshape(wq.shape)
    dwe = _mm(attr.T, ds).reshape(-1, 1) if need_edge else None
    return dh, dq, dwq, dwk, dwe


# ---------------------------------------------------------------------------
# fused non-attention aggregators (paper Table II)
# ---------------------------------------------------------------------------


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def conv_sum_forward_np(
    h_src: np.ndarray,
    w: np.ndarray,
    b: Optional[np.ndarray],
    layout: SegmentLayout,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused convolutional sum: ``m_s = sum_e (h_e W + b)``.

    The linear map commutes with the segment sum, so the matmul runs over
    the (num_segments, d) sums instead of the (num_edges, d) sources:
    ``m = segsum(h) W + n_s b``.  Returns ``(m, s)`` with ``s`` (the
    per-segment source sums) saved for the backward.
    """
    s = segment_sum_np(h_src, layout)
    m = _mm(s, w)
    if b is not None:
        m += layout.counts[:, None] * b
    return m.astype(np.float32, copy=False), s


def conv_sum_backward_np(
    dm: np.ndarray,
    s: np.ndarray,
    w: np.ndarray,
    layout: SegmentLayout,
    need_h: bool = True,
    need_w: bool = True,
) -> Tuple[Optional[np.ndarray], ...]:
    """Closed-form backward of :func:`conv_sum_forward_np`.

    Returns ``(dh_src, dw, db)``; the weight/bias pair is ``None`` unless
    ``need_w``.
    """
    dh = _mm(dm, w.T)[layout.segment_ids] if need_h else None
    if need_w:
        dw = _mm(s.T, dm)
        db = _mm(layout.counts, dm)
    else:
        dw = db = None
    return dh, dw, db


def deepset_forward_np(
    h_src: np.ndarray,
    w1: np.ndarray,
    b1: Optional[np.ndarray],
    w2: np.ndarray,
    b2: Optional[np.ndarray],
    wr: np.ndarray,
    br: Optional[np.ndarray],
    layout: SegmentLayout,
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
    """Fused DeepSet: ``m_s = rho(sum_e phi(h_e))`` with a 2-layer MLP phi.

    Only phi's first layer (up to the ReLU) runs per edge; its second
    linear commutes with the segment sum like :func:`conv_sum_forward_np`,
    and rho acts on per-segment rows by construction.  Returns
    ``(m, saved)`` with the ReLU output, its segment sums and rho's input
    saved for the backward.
    """
    a1 = _mm(h_src, w1)
    if b1 is not None:
        a1 += b1
    r1 = np.maximum(a1, 0.0)
    s1 = segment_sum_np(r1, layout)
    s2 = _mm(s1, w2)
    if b2 is not None:
        s2 += layout.counts[:, None] * b2
    m = _mm(s2, wr)
    if br is not None:
        m = m + br
    return m.astype(np.float32, copy=False), (r1, s1, s2)


def deepset_backward_np(
    dm: np.ndarray,
    h_src: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
    wr: np.ndarray,
    saved: Tuple[np.ndarray, ...],
    layout: SegmentLayout,
    need_h: bool = True,
    need_w: bool = True,
) -> Tuple[Optional[np.ndarray], ...]:
    """Closed-form backward of :func:`deepset_forward_np`.

    Returns ``(dh_src, dw1, db1, dw2, db2, dwr, dbr)``; the parameter
    gradients are ``None`` unless ``need_w``.
    """
    r1, s1, s2 = saved
    ds2 = _mm(dm, wr.T)
    dr1 = _mm(ds2, w2.T)[layout.segment_ids]
    da1 = dr1 * (r1 > 0)
    dh = _mm(da1, w1.T) if need_h else None
    if need_w:
        dwr = _mm(s2.T, dm)
        dbr = dm.sum(axis=0)
        dw2 = _mm(s1.T, ds2)
        db2 = _mm(layout.counts, ds2)
        dw1 = _mm(h_src.T, da1)
        db1 = da1.sum(axis=0)
    else:
        dw1 = db1 = dw2 = db2 = dwr = dbr = None
    return dh, dw1, db1, dw2, db2, dwr, dbr


def gated_sum_forward_np(
    h_src: np.ndarray,
    wg: np.ndarray,
    bg: Optional[np.ndarray],
    wv: np.ndarray,
    bv: Optional[np.ndarray],
    layout: SegmentLayout,
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """Fused D-VAE gated sum: ``m_s = sum_e sigmoid(g(h_e)) * f(h_e)``.

    The sigmoid blocks pushing either linear through the reduction, so
    both stay per edge — the fusion collapses the seven-node composite
    graph (two linears, sigmoid, product, segment sum) into one node with
    the gate and value activations saved.
    """
    g = _mm(h_src, wg)
    if bg is not None:
        g += bg
    g = _sigmoid(g)
    v = _mm(h_src, wv)
    if bv is not None:
        v += bv
    m = segment_sum_np(g * v, layout)
    return m, (g, v)


def gated_sum_backward_np(
    dm: np.ndarray,
    h_src: np.ndarray,
    wg: np.ndarray,
    wv: np.ndarray,
    saved: Tuple[np.ndarray, np.ndarray],
    layout: SegmentLayout,
    need_h: bool = True,
    need_w: bool = True,
) -> Tuple[Optional[np.ndarray], ...]:
    """Closed-form backward of :func:`gated_sum_forward_np`.

    Returns ``(dh_src, dwg, dbg, dwv, dbv)``; the parameter gradients are
    ``None`` unless ``need_w``.
    """
    g, v = saved
    dgv = dm[layout.segment_ids]
    dv = dgv * g
    dsg = dgv * v * g * (1.0 - g)
    dh = (_mm(dv, wv.T) + _mm(dsg, wg.T)) if need_h else None
    if need_w:
        dwv = _mm(h_src.T, dv)
        dbv = dv.sum(axis=0)
        dwg = _mm(h_src.T, dsg)
        dbg = dsg.sum(axis=0)
    else:
        dwg = dbg = dwv = dbv = None
    return dh, dwg, dbg, dwv, dbv


# ---------------------------------------------------------------------------
# fused GRU
# ---------------------------------------------------------------------------


def gru_gates_np(
    gi: np.ndarray, gh: np.ndarray, h: np.ndarray
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
    """GRU gate math given BOTH pre-activations.

    The whole-pass runner's block layout batches the input transform
    ``gi`` itself (static part once per pass, message part per group), so
    only the gate nonlinearity is left per group.  Returns
    ``(h_new, saved)`` like the fused forwards.
    """
    d = h.shape[1]
    g = gi + gh  # one (n, 3h) add instead of three gate-sliced ones
    r = _sigmoid(g[:, :d])
    z = _sigmoid(g[:, d:2 * d])
    hn = gh[:, 2 * d:]
    n = np.tanh(gi[:, 2 * d:] + r * hn)
    out = h - n
    out *= z
    out += n           # n + z * (h - n), one temporary instead of two
    return out.astype(np.float32, copy=False), (r, z, n, hn)


def gru_gates_backward_np(
    grad: np.ndarray,
    h: np.ndarray,
    saved: Tuple[np.ndarray, ...],
    out_gi: Optional[np.ndarray] = None,
    out_gh: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pre-activation gradients ``(dgi, dgh)`` of :func:`gru_gates_np`.

    ``out_gi``/``out_gh`` let the caller land the gradients directly in
    slices of pass-wide accumulation buffers instead of fresh
    per-group allocations.
    """
    r, z, n, hn = saved
    # in-place chains: these run once per level group on small matrices,
    # where temporary allocation is a measurable share of the cost
    dz = h - n
    dz *= grad
    dz *= z
    omz = 1.0 - z
    dz *= omz          # grad * (h - n) * z * (1 - z)
    dn = omz
    dn *= grad         # omz is dead past here; reuse its buffer
    t = n * n
    np.subtract(1.0, t, out=t)
    dn *= t            # grad * (1 - z) * (1 - n^2)
    dr = hn * dn
    dr *= r
    np.subtract(1.0, r, out=t)
    dr *= t            # dn * hn * r * (1 - r)
    d = h.shape[1]
    if out_gi is None:
        dgi = np.concatenate([dr, dz, dn], axis=1)
    else:
        dgi = out_gi
        dgi[:, :d] = dr
        dgi[:, d:2 * d] = dz
        dgi[:, 2 * d:] = dn
    if out_gh is None:
        dgh = np.concatenate([dr, dz, dn * r], axis=1)
    else:
        dgh = out_gh
        dgh[:, :d] = dr
        dgh[:, d:2 * d] = dz
        np.multiply(dn, r, out=dgh[:, 2 * d:])
    return dgi, dgh


_gru_gates = gru_gates_np
_gru_gate_grads = gru_gates_backward_np


def gru_forward_np(
    x: np.ndarray,
    h: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
    """Fused GRU forward; returns ``(h_new, saved)`` for the backward.

    ``h' = (1 - z) * n + z * h`` with ``r = sigmoid(W_r x + U_r h)``,
    ``z`` alike, and ``n = tanh(W_n x + r * (U_n h))`` (biases folded in).
    """
    gi = _mm(x, w_ih) + b_ih
    gh = _mm(h, w_hh) + b_hh
    return _gru_gates(gi, gh, h)


def gru_backward_np(
    grad: np.ndarray,
    x: np.ndarray,
    h: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    saved: Tuple[np.ndarray, ...],
    need_x: bool = True,
    need_h: bool = True,
    need_w: bool = True,
) -> Tuple[Optional[np.ndarray], ...]:
    """Closed-form GRU backward.

    Returns ``(dx, dh, dw_ih, dw_hh, db_ih, db_hh)`` with ``None`` for the
    groups not requested (``need_w`` covers both weights and biases).
    """
    z = saved[1]
    dgi, dgh = _gru_gate_grads(grad, h, saved)
    dx = _mm(dgi, w_ih.T) if need_x else None
    dh = (_mm(dgh, w_hh.T) + grad * z) if need_h else None
    if need_w:
        dw_ih = _mm(x.T, dgi)
        dw_hh = _mm(h.T, dgh)
        db_ih = dgi.sum(axis=0)
        db_hh = dgh.sum(axis=0)
    else:
        dw_ih = dw_hh = db_ih = db_hh = None
    return dx, dh, dw_ih, dw_hh, db_ih, db_hh


def gru_pre_forward_np(
    x: np.ndarray,
    h: np.ndarray,
    gh: np.ndarray,
    w_ih: np.ndarray,
    b_ih: np.ndarray,
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
    """GRU forward with the hidden transform precomputed.

    ``gh = h @ W_hh + b_hh`` is supplied by the caller — the propagation
    pass runner computes it ONCE over the full pass-input state and hands
    each level group its rows, instead of paying a small matmul per group.
    """
    gi = _mm(x, w_ih) + b_ih
    return _gru_gates(gi, gh, h)


def gru_pre_backward_np(
    grad: np.ndarray,
    x: np.ndarray,
    h: np.ndarray,
    w_ih: np.ndarray,
    saved: Tuple[np.ndarray, ...],
    need_x: bool = True,
    need_h: bool = True,
    need_gh: bool = True,
    need_w: bool = True,
) -> Tuple[Optional[np.ndarray], ...]:
    """Closed-form backward of :func:`gru_pre_forward_np`.

    Returns ``(dx, dh, dgh, dw_ih, db_ih)``.  ``dh`` is only the *direct*
    ``z * h`` contribution — the path through the hidden transform flows
    via ``dgh`` into whatever op produced it (where ``dW_hh``/``db_hh``
    and the rest of ``dh`` materialise once per pass).
    """
    z = saved[1]
    dgi, dgh = _gru_gate_grads(grad, h, saved)
    dx = _mm(dgi, w_ih.T) if need_x else None
    dh = grad * z if need_h else None
    if not need_gh:
        dgh = None
    if need_w:
        dw_ih = _mm(x.T, dgi)
        db_ih = dgi.sum(axis=0)
    else:
        dw_ih = db_ih = None
    return dx, dh, dgh, dw_ih, db_ih
