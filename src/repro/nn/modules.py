"""Neural-network modules: parameter containers, Linear, MLP and GRUCell.

Mirrors the minimal subset of ``torch.nn`` the DeepGate model needs.  Every
module tracks its parameters by name so optimisers and the ``.npz``
serialisation layer can enumerate them generically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import init, kernels
from .tensor import Tensor

__all__ = ["Module", "Linear", "MLP", "GRUCell", "Sequential"]


class Module:
    """Base class: child modules and parameters discovered via attributes."""

    def parameters(self) -> List[Tensor]:
        """All trainable tensors, depth-first, deterministic order."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> List[Tuple[str, Tensor]]:
        return self._named_tensors(prefix, want_grad=True)

    def named_buffers(self, prefix: str = "") -> List[Tuple[str, Tensor]]:
        """Non-trainable tensors that are still part of the model state
        (e.g. DeepGate's random initial hidden state)."""
        return self._named_tensors(prefix, want_grad=False)

    def _named_tensors(
        self, prefix: str, want_grad: bool
    ) -> List[Tuple[str, Tensor]]:
        out: List[Tuple[str, Tensor]] = []

        def matches(t: Tensor) -> bool:
            return t.requires_grad == want_grad

        for name in sorted(vars(self)):
            value = getattr(self, name)
            full = f"{prefix}{name}"
            if isinstance(value, Tensor) and matches(value):
                out.append((full, value))
            elif isinstance(value, Module):
                out.extend(value._named_tensors(f"{full}.", want_grad))
            elif isinstance(value, (list, tuple)):
                for k, item in enumerate(value):
                    if isinstance(item, Module):
                        out.extend(item._named_tensors(f"{full}.{k}.", want_grad))
                    elif isinstance(item, Tensor) and matches(item):
                        out.append((f"{full}.{k}", item))
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count (for the paper's fair-size matching)."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        entries = self.named_parameters() + self.named_buffers()
        return {name: p.data.copy() for name, p in entries}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters() + self.named_buffers())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for name, p in own.items():
            arr = np.asarray(state[name], dtype=np.float32)
            if arr.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}"
                )
            p.data = arr.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.xavier_uniform((in_features, out_features), rng),
            requires_grad=True,
        )
        self.bias = (
            Tensor(init.zeros((out_features,)), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations.

    ``dims = [in, h1, ..., out]``; the final layer has no activation unless
    ``final_activation`` is given ('sigmoid' is used by the probability
    regressor so predictions live in (0, 1)).
    """

    _ACTIVATIONS = ("relu", "sigmoid", "tanh", None)

    def __init__(
        self,
        dims: Sequence[int],
        rng: np.random.Generator,
        final_activation: Optional[str] = None,
    ):
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        if final_activation not in self._ACTIVATIONS:
            raise ValueError(f"unknown activation {final_activation!r}")
        self.dims = list(dims)
        self.final_activation = final_activation
        self.layers = [
            Linear(d_in, d_out, rng) for d_in, d_out in zip(dims[:-1], dims[1:])
        ]

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for k, layer in enumerate(self.layers):
            x = layer(x)
            if k < last:
                x = x.relu()
            elif self.final_activation == "relu":
                x = x.relu()
            elif self.final_activation == "sigmoid":
                x = x.sigmoid()
            elif self.final_activation == "tanh":
                x = x.tanh()
        return x


class GRUCell(Module):
    """Gated recurrent unit, the paper's COMBINE function (Eq. 6).

    ``h' = (1 - z) * n + z * h`` with reset gate ``r``, update gate ``z``
    and candidate ``n = tanh(W_n x + r * (U_n h) + b_n)``.

    Forward and backward run as one fused autograd node
    (:func:`repro.nn.kernels.gru_forward_np` /
    :func:`~repro.nn.kernels.gru_backward_np`) instead of ~15 elementwise
    ops, so a propagation step records a single closure and two saved
    activations per level group.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Tensor(
            init.xavier_uniform((input_size, 3 * hidden_size), rng),
            requires_grad=True,
        )
        self.w_hh = Tensor(
            init.xavier_uniform((hidden_size, 3 * hidden_size), rng),
            requires_grad=True,
        )
        self.b_ih = Tensor(init.zeros((3 * hidden_size,)), requires_grad=True)
        self.b_hh = Tensor(init.zeros((3 * hidden_size,)), requires_grad=True)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        w_ih, w_hh, b_ih, b_hh = self.w_ih, self.w_hh, self.b_ih, self.b_hh
        x_in = x.data
        data, saved = kernels.gru_forward_np(
            x_in, h.data, w_ih.data, w_hh.data, b_ih.data, b_hh.data
        )

        def backward(grad: np.ndarray) -> None:
            need_w = (
                w_ih.requires_grad or w_hh.requires_grad
                or b_ih.requires_grad or b_hh.requires_grad
            )
            dx, dh, dw_ih, dw_hh, db_ih, db_hh = kernels.gru_backward_np(
                grad,
                x_in,
                h.data,
                w_ih.data,
                w_hh.data,
                saved,
                need_x=x.requires_grad,
                need_h=h.requires_grad,
                need_w=need_w,
            )
            if dx is not None:
                x._accumulate(dx, own=True)
            if dh is not None:
                h._accumulate(dh, own=True)
            if need_w:
                for param, dparam in (
                    (w_ih, dw_ih), (w_hh, dw_hh), (b_ih, db_ih), (b_hh, db_hh)
                ):
                    if param.requires_grad:
                        param._accumulate(dparam, own=True)

        return Tensor._make(data, (x, h, w_ih, w_hh, b_ih, b_hh), backward)
