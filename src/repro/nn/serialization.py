"""Saving and loading model state as ``.npz`` archives.

Two layers:

* :func:`save_module` / :func:`load_module` — just the parameters of one
  module, for publishing trained weights;
* :func:`save_checkpoint` / :func:`load_checkpoint` — a full training
  checkpoint: arbitrary named arrays (model + optimizer slots) plus a
  JSON metadata blob (epoch counter, loss history, train config), written
  atomically so a checkpoint on disk is always complete.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .modules import Module

__all__ = [
    "save_module",
    "load_module",
    "save_checkpoint",
    "load_checkpoint",
    "CHECKPOINT_FORMAT_VERSION",
]

CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__checkpoint_meta__"


def save_module(module: "Module", path) -> None:
    """Write ``module.state_dict()`` to ``path`` (``.npz``)."""
    np.savez(path, **module.state_dict())


def load_module(module: "Module", path) -> None:
    """Restore parameters saved by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        module.load_state_dict({k: archive[k] for k in archive.files})


def save_checkpoint(
    path: Union[str, Path],
    arrays: Dict[str, np.ndarray],
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write arrays + JSON-able ``meta`` to one ``.npz``, atomically.

    The metadata rides along as a uint8 array of UTF-8 JSON, so a
    checkpoint is a single ordinary ``.npz`` file.  The write goes to a
    temp file first and is renamed into place: a reader never sees a torn
    checkpoint, and a crash mid-save leaves the previous one intact.
    """
    path = Path(path)
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    payload = {"format_version": CHECKPOINT_FORMAT_VERSION, "meta": meta or {}}
    blob = np.frombuffer(
        json.dumps(payload, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp.npz"
    try:
        np.savez(tmp, **arrays, **{_META_KEY: blob})
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def load_checkpoint(
    path: Union[str, Path]
) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Read back ``(arrays, meta)`` written by :func:`save_checkpoint`."""
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            raise ValueError(f"{path} is not a checkpoint (no metadata)")
        payload = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        version = payload.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {version!r} in {path} "
                f"(expected {CHECKPOINT_FORMAT_VERSION})"
            )
        arrays = {k: archive[k] for k in archive.files if k != _META_KEY}
    return arrays, dict(payload.get("meta", {}))
