"""Saving and loading model parameters as ``.npz`` archives."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .modules import Module

__all__ = ["save_module", "load_module"]


def save_module(module: "Module", path) -> None:
    """Write ``module.state_dict()`` to ``path`` (``.npz``)."""
    np.savez(path, **module.state_dict())


def load_module(module: "Module", path) -> None:
    """Restore parameters saved by :func:`save_module` into ``module``."""
    with np.load(path) as archive:
        module.load_state_dict({k: archive[k] for k in archive.files})
