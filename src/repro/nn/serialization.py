"""Saving and loading model state as ``.npz`` archives.

Three layers:

* :func:`save_module` / :func:`load_module` — just the parameters of one
  module, for publishing trained weights;
* :func:`save_checkpoint` / :func:`load_checkpoint` — a full training
  checkpoint: arbitrary named arrays (model + optimizer slots) plus a
  JSON metadata blob (epoch counter, loss history, train config), written
  atomically so a checkpoint on disk is always complete;
* :func:`save_model_checkpoint` / :func:`load_model_checkpoint` — a
  checkpoint whose metadata carries the model's own constructor config
  (``model.config()``), so a reader can rebuild the model without knowing
  anything beyond the file path — the contract ``repro serve`` relies on.

Every failure mode raises a named :class:`CheckpointError` (state-shape
and key mismatches the more specific :class:`CheckpointStateError`) that
says which file and which keys/shapes disagreed, instead of the bare
``KeyError``/broadcast ``ValueError`` that used to surface far from the
cause.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

import numpy as np

from ..utils import atomic_output

if TYPE_CHECKING:  # pragma: no cover
    from .modules import Module

__all__ = [
    "CheckpointError",
    "CheckpointStateError",
    "save_module",
    "load_module",
    "save_checkpoint",
    "load_checkpoint",
    "save_model_checkpoint",
    "load_model_checkpoint",
    "validate_state_dict",
    "CHECKPOINT_FORMAT_VERSION",
    "MODEL_ARRAY_PREFIX",
]

CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__checkpoint_meta__"

#: array-name prefix under which model state lives in full checkpoints
MODEL_ARRAY_PREFIX = "model/"


class CheckpointError(ValueError):
    """A checkpoint file is missing, malformed, or of the wrong format."""


class CheckpointStateError(CheckpointError):
    """Saved state does not fit the module it is being loaded into."""


def validate_state_dict(
    module: "Module", state: Dict[str, np.ndarray], source: str = "state"
) -> None:
    """Raise :class:`CheckpointStateError` unless ``state`` fits ``module``.

    Compares against ``module.state_dict()``: missing keys, unexpected
    keys and per-entry shape mismatches are all collected into one
    message naming ``source``, so a wrong-architecture load fails at the
    load site with the full diff instead of deep inside an assignment.
    """
    template = module.state_dict()
    missing = sorted(set(template) - set(state))
    unexpected = sorted(set(state) - set(template))
    mismatched = [
        f"{key} (checkpoint {state[key].shape} vs model "
        f"{template[key].shape})"
        for key in sorted(set(template) & set(state))
        if tuple(state[key].shape) != tuple(template[key].shape)
    ]
    problems = []
    if missing:
        problems.append(f"missing keys: {', '.join(missing)}")
    if unexpected:
        problems.append(f"unexpected keys: {', '.join(unexpected)}")
    if mismatched:
        problems.append(f"shape mismatches: {'; '.join(mismatched)}")
    if problems:
        raise CheckpointStateError(
            f"{source} does not match {type(module).__name__}: "
            + "; ".join(problems)
        )


def _open_npz(path: Union[str, Path]):
    """``np.load`` that reports unreadable archives as checkpoint errors.

    ``np.load`` surfaces a truncated, torn or plain-garbage ``.npz`` as a
    grab-bag of low-level exceptions (``zipfile.BadZipFile``, ``OSError``,
    ``EOFError``, bare ``ValueError``) far from any mention of the file;
    here they all become a :class:`CheckpointError` naming the path.
    """
    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, EOFError, ValueError) as exc:
        raise CheckpointError(
            f"{path} is not a readable .npz checkpoint "
            f"(truncated or corrupt?): {exc}"
        ) from exc


def save_module(module: "Module", path) -> None:
    """Write ``module.state_dict()`` to ``path`` (``.npz``), atomically."""
    with atomic_output(path) as tmp:
        # hand np.savez an open handle: given a *path* without an .npz
        # suffix it would silently append one and miss the temp name
        with open(tmp, "wb") as fh:
            np.savez(fh, **module.state_dict())


def load_module(module: "Module", path) -> None:
    """Restore parameters saved by :func:`save_module` into ``module``.

    Raises :class:`CheckpointStateError` (naming the file and the
    offending keys/shapes) if the archive does not match the module, and
    plain :class:`CheckpointError` if the file is not a readable ``.npz``.
    """
    with _open_npz(path) as archive:
        state = {k: archive[k] for k in archive.files}
    validate_state_dict(module, state, source=str(path))
    module.load_state_dict(state)


def save_checkpoint(
    path: Union[str, Path],
    arrays: Dict[str, np.ndarray],
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write arrays + JSON-able ``meta`` to one ``.npz``, atomically.

    The metadata rides along as a uint8 array of UTF-8 JSON, so a
    checkpoint is a single ordinary ``.npz`` file.  The write goes to a
    temp file first and is renamed into place: a reader never sees a torn
    checkpoint, and a crash mid-save leaves the previous one intact.
    """
    path = Path(path)
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    payload = {"format_version": CHECKPOINT_FORMAT_VERSION, "meta": meta or {}}
    blob = np.frombuffer(
        json.dumps(payload, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    with atomic_output(path) as tmp:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays, **{_META_KEY: blob})


def load_checkpoint(
    path: Union[str, Path]
) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Read back ``(arrays, meta)`` written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` when the file is not a checkpoint
    (including a truncated or otherwise unreadable archive) or is of an
    unsupported format version.
    """
    with _open_npz(path) as archive:
        if _META_KEY not in archive.files:
            raise CheckpointError(f"{path} is not a checkpoint (no metadata)")
        payload = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        version = payload.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format {version!r} in {path} "
                f"(expected {CHECKPOINT_FORMAT_VERSION})"
            )
        arrays = {k: archive[k] for k in archive.files if k != _META_KEY}
    return arrays, dict(payload.get("meta", {}))


def save_model_checkpoint(
    module: "Module",
    path: Union[str, Path],
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write a self-describing checkpoint for ``module``.

    The module's :meth:`config` (its JSON-able constructor arguments) is
    stored as ``meta["model_config"]`` and the state dict under the
    ``model/`` array prefix — the same layout the Trainer's checkpoints
    use — so :func:`load_model_checkpoint` can rebuild the model from the
    file alone.  Extra ``meta`` entries ride along untouched.
    """
    config_fn = getattr(module, "config", None)
    if config_fn is None:
        raise CheckpointError(
            f"{type(module).__name__} has no config() method; cannot write "
            "a self-describing model checkpoint"
        )
    merged = dict(meta or {})
    merged["model_config"] = config_fn()
    arrays = {
        MODEL_ARRAY_PREFIX + key: value
        for key, value in module.state_dict().items()
    }
    save_checkpoint(path, arrays, merged)


def load_model_checkpoint(path: Union[str, Path]):
    """Rebuild ``(module, meta)`` from a self-describing checkpoint.

    Accepts both :func:`save_model_checkpoint` files and full Trainer
    checkpoints (whose model state also lives under ``model/`` and whose
    meta records ``model_config``).  Raises :class:`CheckpointError` when
    the metadata cannot name a model, :class:`CheckpointStateError` when
    the stored state does not fit the reconstructed one.
    """
    arrays, meta = load_checkpoint(path)
    config = meta.get("model_config")
    if not isinstance(config, dict):
        raise CheckpointError(
            f"{path} has no model_config metadata; re-save it with "
            "save_model_checkpoint (or a Trainer from this version)"
        )
    from ..models.registry import model_from_config  # lazy: avoid cycle

    module = model_from_config(config)
    state = {
        key[len(MODEL_ARRAY_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(MODEL_ARRAY_PREFIX)
    }
    if not state:
        raise CheckpointError(f"{path} holds no model/* arrays")
    validate_state_dict(module, state, source=str(path))
    module.load_state_dict(state)
    return module, meta
