"""Optimisers: Adam (the paper's choice) and SGD.

Both optimisers expose ``state_dict``/``load_state_dict`` so a training
run can be checkpointed and resumed exactly: restoring the slot arrays
(and Adam's step counter) makes a resumed run bitwise-identical to an
uninterrupted one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .tensor import Tensor

__all__ = ["Adam", "SGD", "clip_grad_norm"]


class _Optimizer:
    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- checkpointing --------------------------------------------------
    def _slots(self) -> Dict[str, List[np.ndarray]]:
        """Per-parameter state arrays, keyed by slot name (subclasses)."""
        return {}

    def _scalars(self) -> Dict[str, float]:
        """Scalar state that must survive a checkpoint (subclasses)."""
        return {}

    def _restore_scalars(self, scalars: Dict[str, float]) -> None:
        pass

    def state_dict(self) -> Dict[str, np.ndarray]:
        """All resume-relevant state as named arrays (for ``.npz``)."""
        out: Dict[str, np.ndarray] = {
            f"__{name}__": np.asarray(value)
            for name, value in self._scalars().items()
        }
        for slot, arrays in self._slots().items():
            for i, arr in enumerate(arrays):
                out[f"{slot}/{i}"] = arr.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = {
            f"{slot}/{i}": arr
            for slot, arrays in self._slots().items()
            for i, arr in enumerate(arrays)
        }
        scalar_keys = {f"__{name}__" for name in self._scalars()}
        missing = (set(own) | scalar_keys) - set(state)
        extra = set(state) - set(own) - scalar_keys
        if missing or extra:
            raise KeyError(
                f"optimizer state mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for key, arr in own.items():
            value = np.asarray(state[key])
            if value.shape != arr.shape:
                raise ValueError(
                    f"optimizer slot {key!r}: shape {value.shape} != "
                    f"{arr.shape}"
                )
            arr[...] = value
        self._restore_scalars(
            {name: float(state[f"__{name}__"]) for name in self._scalars()}
        )


class SGD(_Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _slots(self) -> Dict[str, List[np.ndarray]]:
        return {"velocity": self._velocity}

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(_Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015).

    The paper trains every model with Adam at lr = 1e-4.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _slots(self) -> Dict[str, List[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def _scalars(self) -> Dict[str, float]:
        return {"step": float(self._step)}

    def _restore_scalars(self, scalars: Dict[str, float]) -> None:
        self._step = int(scalars["step"])

    def step(self) -> None:
        self._step += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._step
        bias2 = 1.0 - b2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm; recurrent models over deep circuits benefit
    from clipping exactly like seq2seq training does.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
