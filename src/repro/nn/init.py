"""Weight initialisation schemes."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "zeros", "normal"]


def xavier_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    a = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform: U(-a, a) with a = sqrt(6/fan_in), for ReLU stacks."""
    fan_in, _ = _fans(shape)
    a = np.sqrt(6.0 / fan_in)
    return rng.uniform(-a, a, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def normal(
    shape: Tuple[int, ...], rng: np.random.Generator, std: float = 1.0
) -> np.ndarray:
    return (rng.standard_normal(shape) * std).astype(np.float32)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
