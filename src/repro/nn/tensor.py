"""A small reverse-mode autograd engine on numpy arrays.

The paper implements DeepGate in PyTorch; no deep-learning framework is
available offline, so this module provides the required subset from scratch:
a :class:`Tensor` that records the operations applied to it and can
back-propagate gradients through arbitrary DAGs of those operations.

Design notes
------------
* Tensors wrap ``float32`` numpy arrays.  Gradients are plain numpy arrays
  of the same shape.
* Each operation creates a child tensor holding a closure that, given the
  child's gradient, accumulates gradients into its parents.  ``backward()``
  walks the recorded graph once in reverse topological order.
* Broadcasting follows numpy semantics; gradients are summed back over
  broadcast axes by :func:`unbroadcast`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "unbroadcast", "no_grad", "is_grad_enabled"]

Arrayish = Union["Tensor", np.ndarray, float, int]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager disabling graph recording (inference mode)."""

    def __enter__(self):
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, *exc):
        _GRAD_ENABLED[0] = self._prev
        return False


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[0]


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # sum leading extra axes
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum axes broadcast from size 1
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: Arrayish,
        requires_grad: bool = False,
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, recording the op if grads are enabled.

        Hand-rolled construction: this runs once per autograd node, so the
        generic ``__init__`` coercions (and generator-expression frames)
        are worth skipping on the hot path.
        """
        out = Tensor.__new__(Tensor)
        if type(data) is np.ndarray and data.dtype == np.float32:
            out.data = data
        else:
            out.data = np.asarray(data, dtype=np.float32)
        out.grad = None
        needs = False
        if _GRAD_ENABLED[0]:
            for p in parents:
                if p.requires_grad:
                    needs = True
                    break
        out.requires_grad = needs
        if needs:
            out._parents = tuple([p for p in parents if p.requires_grad])
            out._backward = backward
        else:
            out._parents = ()
            out._backward = None
        return out

    def _accumulate(self, grad: np.ndarray, own: bool = False) -> None:
        """Add ``grad`` into this tensor's gradient buffer.

        ``own=True`` promises the caller freshly allocated ``grad`` and
        will never touch it again, so the first accumulation can take the
        array as-is instead of copying — kernel backward closures use this
        to halve gradient-buffer churn.  Never pass a view of live data.
        """
        if self.grad is None:
            if own and grad.dtype == np.float32:
                self.grad = grad
            else:
                self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def _accumulate_rows(self, index: np.ndarray, grad: np.ndarray) -> None:
        """Add ``grad[k]`` into row ``index[k]`` of the gradient buffer.

        ``index`` entries must be unique (pre-reduce repeated rows with a
        segment kernel first).  Touches only the indexed rows, so sparse
        scatter-style backwards avoid materialising dense buffers.
        """
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad[index] += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar output")
            grad = np.ones_like(self.data)
        # iterative topological order over the autograd DAG
        order: List[Tensor] = []
        seen = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in seen:
                    stack.append((p, False))
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        """A view of the data cut off from the autograd graph."""
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # shape info
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy); do not mutate."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(x: Arrayish) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    def __add__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(grad, a.data.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(grad, b.data.shape))

        return Tensor._make(data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(-grad)

        return Tensor._make(-self.data, (a,), backward)

    def __sub__(self, other: Arrayish) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data * b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(grad * b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(grad * a.data, b.data.shape))

        return Tensor._make(data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data / b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(grad / b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate(
                    unbroadcast(-grad * a.data / (b.data * b.data), b.data.shape)
                )

        return Tensor._make(data, (a, b), backward)

    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data @ b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad @ b.data.T)
            if b.requires_grad:
                b._accumulate(a.data.T @ grad)

        return Tensor._make(data, (a, b), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        a = self
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * exponent * a.data ** (exponent - 1))

        return Tensor._make(data, (a,), backward)

    # ------------------------------------------------------------------
    # reductions and elementwise functions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        a = self
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not a.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            a._accumulate(np.broadcast_to(g, a.data.shape).astype(np.float32))

        return Tensor._make(data, (a,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        n = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def abs(self) -> "Tensor":
        a = self
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * np.sign(a.data))

        return Tensor._make(data, (a,), backward)

    def exp(self) -> "Tensor":
        a = self
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * data)

        return Tensor._make(data, (a,), backward)

    def log(self) -> "Tensor":
        a = self
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad / a.data)

        return Tensor._make(data, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * (1.0 - data * data))

        return Tensor._make(data, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * mask)

        return Tensor._make(data, (a,), backward)

    def clip_probability(self, eps: float = 1e-6) -> "Tensor":
        """Clamp into [eps, 1-eps] with straight-through gradient."""
        a = self
        data = np.clip(self.data, eps, 1.0 - eps)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad)

        return Tensor._make(data, (a,), backward)

    # ------------------------------------------------------------------
    # shaping
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        a = self
        data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad.reshape(a.data.shape))

        return Tensor._make(data, (a,), backward)

    def transpose(self) -> "Tensor":
        a = self
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad.T)

        return Tensor._make(data, (a,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()
