"""Graph-oriented autograd operations.

These are the operations a DAG-GNN needs beyond basic arithmetic: gathering
rows for message sources, scattering updated hidden states back into the
node-state matrix, and segment (per-destination) reductions used by the
aggregation functions — including the segment softmax that realises the
paper's additive attention (Eq. 5).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .tensor import Tensor

__all__ = [
    "concat",
    "gather_rows",
    "scatter_rows",
    "segment_sum",
    "segment_softmax",
    "l1_loss",
]


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    parts = list(tensors)
    data = np.concatenate([t.data for t in parts], axis=axis)
    sizes = [t.data.shape[axis] for t in parts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(parts, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(grad[tuple(sl)])

    return Tensor._make(data, parts, backward)


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows: ``out[k] = x[index[k]]`` (repeats allowed)."""
    index = np.asarray(index, dtype=np.int64)
    data = x.data[index]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            gx = np.zeros_like(x.data)
            np.add.at(gx, index, grad)
            x._accumulate(gx)

    return Tensor._make(data, (x,), backward)


def scatter_rows(base: Tensor, index: np.ndarray, rows: Tensor) -> Tensor:
    """Functional row update: ``out = base`` with ``out[index] = rows``.

    ``index`` entries must be unique.  This is how level-by-level message
    passing writes freshly-computed hidden states into the node-state matrix
    without in-place mutation (which would break autograd).
    """
    index = np.asarray(index, dtype=np.int64)
    data = base.data.copy()
    data[index] = rows.data

    def backward(grad: np.ndarray) -> None:
        if base.requires_grad:
            gb = grad.copy()
            gb[index] = 0.0
            base._accumulate(gb)
        if rows.requires_grad:
            rows._accumulate(grad[index])

    return Tensor._make(data, (base, rows), backward)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` grouped by ``segment_ids``.

    ``out[s] = sum_{k : segment_ids[k] == s} x[k]``; segments with no
    members yield zero rows.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + x.data.shape[1:]
    data = np.zeros(out_shape, dtype=np.float32)
    np.add.at(data, segment_ids, x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad[segment_ids])

    return Tensor._make(data, (x,), backward)


def segment_softmax(
    scores: Tensor, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """Numerically stable softmax within each segment.

    ``scores`` is a 1-D tensor (one entry per edge); the result sums to 1
    within every segment.  This implements the ``softmax_{u in P(v)}`` of the
    paper's attention coefficients.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    s = scores.data.reshape(-1)
    # per-segment max for stability
    seg_max = np.full(num_segments, -np.inf, dtype=np.float32)
    np.maximum.at(seg_max, segment_ids, s)
    shifted = s - seg_max[segment_ids]
    exps = np.exp(shifted)
    denom = np.zeros(num_segments, dtype=np.float32)
    np.add.at(denom, segment_ids, exps)
    out = exps / denom[segment_ids]

    def backward(grad: np.ndarray) -> None:
        if not scores.requires_grad:
            return
        g = grad.reshape(-1)
        # d softmax: out * (g - sum_segment(g * out))
        weighted = np.zeros(num_segments, dtype=np.float32)
        np.add.at(weighted, segment_ids, g * out)
        gs = out * (g - weighted[segment_ids])
        scores._accumulate(gs.reshape(scores.data.shape))

    return Tensor._make(out.reshape(scores.data.shape), (scores,), backward)


def l1_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean absolute error against a constant target (paper's Eq. 8 loss)."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float32))
    return diff.abs().mean()
