"""Graph-oriented autograd operations.

These are the operations a DAG-GNN needs beyond basic arithmetic: gathering
rows for message sources, scattering updated hidden states back into the
node-state matrix, and segment (per-destination) reductions used by the
aggregation functions — including the segment softmax that realises the
paper's additive attention (Eq. 5).

All segment reductions run on the sort-plus-``reduceat`` kernels of
:mod:`repro.nn.kernels` rather than ``np.add.at``/``np.maximum.at``.  Each
op accepts an optional precomputed :class:`~repro.nn.kernels.SegmentLayout`
so hot paths (the compiled propagation schedules) pay the sort once per
batch; without one, a layout is built on the fly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .kernels import (
    SegmentLayout,
    segment_present_sum,
    segment_softmax_np,
    segment_sum_np,
)
from .tensor import Tensor

__all__ = [
    "concat",
    "gather_rows",
    "scatter_rows",
    "segment_sum",
    "segment_softmax",
    "l1_loss",
]


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    parts = list(tensors)
    data = np.concatenate([t.data for t in parts], axis=axis)
    sizes = [t.data.shape[axis] for t in parts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(parts, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(grad[tuple(sl)])

    return Tensor._make(data, parts, backward)


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows: ``out[k] = x[index[k]]`` (repeats allowed).

    The backward pre-reduces repeated rows with a segment layout and
    accumulates only the touched rows rather than a dense zero matrix.
    """
    index = np.asarray(index, dtype=np.int64)
    data = x.data[index]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            lay = SegmentLayout(index, x.data.shape[0])
            rows, sums = segment_present_sum(grad, lay)
            x._accumulate_rows(rows, sums)

    return Tensor._make(data, (x,), backward)


def scatter_rows(base: Tensor, index: np.ndarray, rows: Tensor) -> Tensor:
    """Functional row update: ``out = base`` with ``out[index] = rows``.

    ``index`` entries must be unique (checked).  This is how level-by-level
    message passing writes freshly-computed hidden states into the
    node-state matrix without in-place mutation (which would break
    autograd).
    """
    index = np.asarray(index, dtype=np.int64)
    if index.size and np.unique(index).size != index.size:
        raise ValueError(
            "scatter_rows requires unique indices; duplicates would make "
            "the forward write order-dependent and silently corrupt "
            "gradients"
        )
    data = base.data.copy()
    data[index] = rows.data

    def backward(grad: np.ndarray) -> None:
        if base.requires_grad:
            gb = grad.copy()
            gb[index] = 0.0
            base._accumulate(gb, own=True)
        if rows.requires_grad:
            rows._accumulate(grad[index], own=True)

    return Tensor._make(data, (base, rows), backward)


def segment_sum(
    x: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    layout: Optional[SegmentLayout] = None,
) -> Tensor:
    """Sum rows of ``x`` grouped by ``segment_ids``.

    ``out[s] = sum_{k : segment_ids[k] == s} x[k]``; segments with no
    members yield zero rows.
    """
    lay = (
        layout
        if layout is not None
        else SegmentLayout(segment_ids, num_segments)
    )
    data = segment_sum_np(x.data, lay)
    ids = lay.segment_ids

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad[ids], own=True)

    return Tensor._make(data, (x,), backward)


def segment_softmax(
    scores: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    layout: Optional[SegmentLayout] = None,
) -> Tensor:
    """Numerically stable softmax within each segment.

    ``scores`` is a 1-D tensor (one entry per edge); the result sums to 1
    within every segment.  This implements the ``softmax_{u in P(v)}`` of
    the paper's attention coefficients.
    """
    lay = (
        layout
        if layout is not None
        else SegmentLayout(segment_ids, num_segments)
    )
    ids = lay.segment_ids
    out = segment_softmax_np(scores.data.reshape(-1), lay)

    def backward(grad: np.ndarray) -> None:
        if not scores.requires_grad:
            return
        g = grad.reshape(-1)
        # d softmax: out * (g - sum_segment(g * out))
        weighted = segment_sum_np(g * out, lay)
        gs = out * (g - weighted[ids])
        scores._accumulate(gs.reshape(scores.data.shape), own=True)

    return Tensor._make(out.reshape(scores.data.shape), (scores,), backward)


def l1_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean absolute error against a constant target (paper's Eq. 8 loss)."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float32))
    return diff.abs().mean()
