"""Pluggable GEMM backends: the kernel layer's matmul seam.

Every matrix multiply in the compiled fast path — the closed-form kernels
of :mod:`repro.nn.kernels`, the whole-pass runner's batched input
transforms, and the fused regressor epilogue — goes through
:func:`matmul` instead of calling ``np.matmul`` directly.  Which backend
actually runs the product is a per-process choice:

* ``numpy`` (the default) — plain ``np.matmul``.  This is the canonical
  reference implementation: byte-deterministic run to run, and the
  oracle every other backend must match.
* ``threaded`` — splits tall 2-D products row-wise across a small thread
  pool.  numpy releases the GIL inside BLAS, so chunks genuinely overlap;
  small products (below ``min_rows``) fall through to ``np.matmul``
  unchanged, which keeps deep-circuit passes (many tiny GEMMs) on the
  zero-overhead path and only parallelises wide batches.

Selection:

* environment — ``REPRO_KERNEL_BACKEND=threaded`` before the process
  starts (read lazily on first use);
* code/CLI — :func:`set_backend` (``repro bench run --backend`` /
  ``repro serve --backend`` call it during startup);
* tests — the :func:`use_backend` context manager restores the previous
  backend on exit.

An unknown name raises :class:`KernelBackendError` listing the
registered backends.  New backends plug in via :func:`register_backend`.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Optional, Tuple, Union

import numpy as np

__all__ = [
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "KernelBackendError",
    "NumpyBackend",
    "ThreadedBackend",
    "available_backends",
    "register_backend",
    "get_backend",
    "set_backend",
    "use_backend",
    "matmul",
]

BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"


class KernelBackendError(ValueError):
    """Unknown kernel backend name; the message lists the valid ones."""


class KernelBackend:
    """One GEMM provider.  Subclasses implement :meth:`matmul`.

    ``matmul`` must accept everything ``np.matmul`` does on float arrays
    (1-D vectors, 2-D matrices, stacked 3-D batches, transposed views)
    and agree with it to float round-off; the numpy backend is the
    equivalence oracle the test matrix checks every registration against.
    """

    #: registry key; subclasses must override
    name: str = "abstract"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class NumpyBackend(KernelBackend):
    """The canonical reference: ``np.matmul``, byte-deterministic."""

    name = "numpy"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)


class ThreadedBackend(KernelBackend):
    """Row-chunked 2-D matmul over a shared thread pool.

    Only products with at least ``min_rows`` left-hand rows are split;
    everything else (small matrices, vectors, 3-D stacks) runs through
    ``np.matmul`` directly.  The pool is created lazily on the first
    large product and shared for the life of the process.
    """

    name = "threaded"

    def __init__(
        self, num_threads: Optional[int] = None, min_rows: int = 4096
    ):
        self.num_threads = num_threads or min(4, os.cpu_count() or 1)
        self.min_rows = min_rows
        self._pool = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self):
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    self._pool = ThreadPoolExecutor(
                        max_workers=self.num_threads,
                        thread_name_prefix="repro-mm",
                    )
        return self._pool

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if (
            self.num_threads < 2
            or a.ndim != 2
            or b.ndim != 2
            or a.shape[0] < self.min_rows
        ):
            return np.matmul(a, b)
        pool = self._ensure_pool()
        out = np.empty((a.shape[0], b.shape[1]), dtype=np.result_type(a, b))
        bounds = np.linspace(
            0, a.shape[0], self.num_threads + 1, dtype=np.int64
        )
        futures = [
            pool.submit(np.matmul, a[lo:hi], b, out=out[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        for f in futures:
            f.result()
        return out


_REGISTRY: Dict[str, KernelBackend] = {}
_active: Optional[KernelBackend] = None
_resolve_lock = threading.Lock()


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add ``backend`` to the registry (last registration wins per name)."""
    _REGISTRY[backend.name] = backend
    return backend


register_backend(NumpyBackend())
register_backend(ThreadedBackend())


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def _lookup(name: str, source: str) -> KernelBackend:
    backend = _REGISTRY.get(name)
    if backend is None:
        raise KernelBackendError(
            f"unknown kernel backend {name!r} (from {source}); "
            f"valid backends: {', '.join(available_backends())}"
        )
    return backend


def get_backend() -> KernelBackend:
    """The process's active backend, resolving the env var on first use."""
    global _active
    if _active is None:
        with _resolve_lock:
            if _active is None:
                name = os.environ.get(BACKEND_ENV_VAR, "").strip()
                _active = (
                    _lookup(name, f"${BACKEND_ENV_VAR}")
                    if name
                    else _REGISTRY["numpy"]
                )
    return _active


def set_backend(backend: Union[str, KernelBackend]) -> KernelBackend:
    """Activate a backend by name (or instance); returns it."""
    global _active
    if isinstance(backend, str):
        backend = _lookup(backend, "set_backend")
    _active = backend
    return backend


@contextmanager
def use_backend(backend: Union[str, KernelBackend]):
    """Temporarily activate a backend; restores the previous one on exit."""
    global _active
    previous = _active
    try:
        yield set_backend(backend)
    finally:
        _active = previous


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product through the active backend."""
    return get_backend().matmul(a, b)
