"""Typed request/response messages for the inference server.

The wire format follows the frozen, versioned named-message pattern of
gridworks-scada's ``gwsproto`` (and mirrors this repo's frozen experiment
spec dataclasses): every message is a frozen dataclass with a dotted
``type_name`` and a protocol ``version`` carried in its JSON payload, so
payloads are self-describing, hashable in memory, and forward-compatible
(unknown payload fields are ignored; unknown type names and versions are
rejected loudly).

JSON round trip: ``msg.to_json()`` → text → :func:`parse_message` →
an equal message.  Malformed payloads raise :class:`ProtocolError`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple, Type, Union

__all__ = [
    "PROTOCOL_VERSION",
    "CIRCUIT_FORMATS",
    "ProtocolError",
    "Message",
    "QueryRequest",
    "QueryResponse",
    "ErrorReply",
    "StatsReply",
    "HealthReply",
    "MESSAGE_TYPES",
    "parse_message",
]

PROTOCOL_VERSION = 1

#: accepted circuit formats (aliases normalise to the first three)
CIRCUIT_FORMATS = ("aiger", "bench", "verilog")

_FORMAT_ALIASES = {
    "aag": "aiger",
    "v": "verilog",
}


class ProtocolError(ValueError):
    """A payload that does not parse as a valid protocol message."""


@dataclass(frozen=True)
class Message:
    """Base for all protocol messages: frozen, named, versioned."""

    TYPE_NAME: ClassVar[str] = ""

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "type_name": self.TYPE_NAME,
            "version": PROTOCOL_VERSION,
        }
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[f.name] = value
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Message":
        if not isinstance(payload, dict):
            raise ProtocolError(f"payload must be an object, got {type(payload).__name__}")
        kwargs = {}
        for f in dataclasses.fields(cls):
            if f.name in payload:
                kwargs[f.name] = payload[f.name]
            elif (
                f.default is dataclasses.MISSING
                and f.default_factory is dataclasses.MISSING
            ):
                raise ProtocolError(
                    f"{cls.TYPE_NAME} payload missing required field {f.name!r}"
                )
        try:
            return cls(**kwargs)
        except ProtocolError:
            raise
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad {cls.TYPE_NAME} payload: {exc}") from exc


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _freeze(msg: Message, name: str, value: object) -> None:
    object.__setattr__(msg, name, value)


@dataclass(frozen=True)
class QueryRequest(Message):
    """Ask for per-node predictions on one circuit.

    ``circuit`` is the full source text in ``fmt`` (``aiger`` ``.aag``,
    ``bench``, or structural ``verilog``); ``num_iterations`` optionally
    overrides the recurrent model's propagation depth.
    """

    TYPE_NAME: ClassVar[str] = "repro.serve.query.request"

    circuit: str = ""
    fmt: str = "aiger"
    num_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.circuit, str) and bool(self.circuit.strip()),
            "circuit must be non-empty text",
        )
        _require(isinstance(self.fmt, str), "fmt must be a string")
        fmt = _FORMAT_ALIASES.get(self.fmt.lower(), self.fmt.lower())
        _require(
            fmt in CIRCUIT_FORMATS,
            f"unknown circuit format {self.fmt!r}; expected one of "
            f"{CIRCUIT_FORMATS} (or aliases {tuple(_FORMAT_ALIASES)})",
        )
        _freeze(self, "fmt", fmt)
        if self.num_iterations is not None:
            _require(
                isinstance(self.num_iterations, int)
                and not isinstance(self.num_iterations, bool)
                and self.num_iterations >= 1,
                "num_iterations must be a positive integer",
            )


@dataclass(frozen=True)
class QueryResponse(Message):
    """Per-node predictions over the canonical (strashed) circuit.

    ``predictions[k]`` is the predicted signal probability of node ``k``
    of the canonical AIG's gate graph (PIs, then AND/NOT gates in
    topological order).  ``structural_hash`` is the compilation-cache
    key; ``cache_hit`` says the compiled circuit was reused, and
    ``coalesced`` how many concurrent requests were answered by the same
    fused propagation pass (1 = this request alone).
    """

    TYPE_NAME: ClassVar[str] = "repro.serve.query.response"

    structural_hash: str = ""
    num_nodes: int = 0
    num_pis: int = 0
    num_ands: int = 0
    predictions: Tuple[float, ...] = ()
    cache_hit: bool = False
    coalesced: int = 1
    model: str = ""
    elapsed_ms: float = 0.0

    def __post_init__(self) -> None:
        _require(
            isinstance(self.predictions, (list, tuple)),
            "predictions must be a sequence",
        )
        try:
            preds = tuple(float(p) for p in self.predictions)
        except (TypeError, ValueError):
            raise ProtocolError("predictions must be numbers")
        _freeze(self, "predictions", preds)
        _require(
            isinstance(self.num_nodes, int) and self.num_nodes >= 0,
            "num_nodes must be a non-negative integer",
        )
        _require(
            len(preds) == self.num_nodes,
            f"{len(preds)} predictions for {self.num_nodes} nodes",
        )


@dataclass(frozen=True)
class ErrorReply(Message):
    """Structured rejection: a machine-readable kind plus diagnostics.

    ``error`` is one of ``protocol_error`` / ``parse_error`` /
    ``circuit_error`` / ``not_found`` / ``internal_error``; ``line`` is
    the offending source line for parse errors when known.
    """

    TYPE_NAME: ClassVar[str] = "repro.serve.error"

    error: str = "internal_error"
    detail: str = ""
    line: Optional[int] = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.error, str) and bool(self.error),
            "error kind must be a non-empty string",
        )
        _require(isinstance(self.detail, str), "detail must be a string")
        _require(
            self.line is None
            or (isinstance(self.line, int) and self.line >= 1),
            "line must be a positive integer or null",
        )


@dataclass(frozen=True)
class StatsReply(Message):
    """Server counters: the cache-hit observability surface."""

    TYPE_NAME: ClassVar[str] = "repro.serve.stats"

    model: str = ""
    uptime_s: float = 0.0
    requests: int = 0
    errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_entries: int = 0
    cache_capacity: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch_observed: int = 0
    max_batch_size: int = 0
    max_wait_ms: float = 0.0
    max_queue: int = 0
    rejected: int = 0
    batch_mode: str = "exact"


@dataclass(frozen=True)
class HealthReply(Message):
    """Liveness probe response."""

    TYPE_NAME: ClassVar[str] = "repro.serve.health"

    status: str = "ok"


MESSAGE_TYPES: Dict[str, Type[Message]] = {
    cls.TYPE_NAME: cls
    for cls in (QueryRequest, QueryResponse, ErrorReply, StatsReply, HealthReply)
}


def parse_message(data: Union[str, bytes, Dict[str, object]]) -> Message:
    """Parse JSON text (or an already-decoded payload) into a message.

    Rejects non-object payloads, unknown ``type_name`` values and
    protocol versions newer than this build with :class:`ProtocolError`.
    """
    if isinstance(data, (str, bytes)):
        try:
            payload = json.loads(data)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"payload is not valid JSON: {exc}") from exc
    else:
        payload = data
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"payload must be a JSON object, got {type(payload).__name__}"
        )
    type_name = payload.get("type_name")
    if not isinstance(type_name, str):
        raise ProtocolError("payload has no type_name")
    cls = MESSAGE_TYPES.get(type_name)
    if cls is None:
        raise ProtocolError(
            f"unknown message type {type_name!r}; expected one of "
            f"{sorted(MESSAGE_TYPES)}"
        )
    version = payload.get("version", PROTOCOL_VERSION)
    if not isinstance(version, int) or version < 1:
        raise ProtocolError(f"bad protocol version {version!r}")
    if version > PROTOCOL_VERSION:
        raise ProtocolError(
            f"message version {version} is newer than this server "
            f"(protocol {PROTOCOL_VERSION})"
        )
    return cls.from_payload(payload)
