"""Tiny stdlib client for a running ``repro serve`` instance.

``urllib.request`` only — the same no-new-deps rule as the server.  HTTP
error bodies are parsed back into :class:`~repro.serve.protocol.ErrorReply`
and surfaced as :class:`ServeClientError` carrying the structured kind,
detail, and (for parse errors) line number.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional

from .protocol import (
    ErrorReply,
    HealthReply,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    StatsReply,
    parse_message,
)

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """A structured error answer (or transport failure) from the server."""

    def __init__(
        self,
        detail: str,
        kind: str = "transport_error",
        status: Optional[int] = None,
        line: Optional[int] = None,
    ):
        prefix = f"[{kind}" + (f"/{status}" if status is not None else "") + "] "
        super().__init__(prefix + detail)
        self.kind = kind
        self.status = status
        self.detail = detail
        self.line = line


class ServeClient:
    """Blocking HTTP client bound to one server base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, body: Optional[bytes] = None):
        req = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"} if body else {},
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                text = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                reply = parse_message(raw)
            except (ProtocolError, json.JSONDecodeError):
                raise ServeClientError(
                    raw.strip() or str(exc), status=exc.code
                ) from exc
            if isinstance(reply, ErrorReply):
                raise ServeClientError(
                    reply.detail,
                    kind=reply.error,
                    status=exc.code,
                    line=reply.line,
                ) from exc
            raise ServeClientError(raw.strip(), status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServeClientError(str(exc.reason)) from exc
        return parse_message(text)

    def query(
        self,
        circuit: str,
        fmt: str = "aiger",
        num_iterations: Optional[int] = None,
    ) -> QueryResponse:
        request = QueryRequest(
            circuit=circuit, fmt=fmt, num_iterations=num_iterations
        )
        reply = self._request("/query", request.to_json().encode("utf-8"))
        if not isinstance(reply, QueryResponse):
            raise ServeClientError(
                f"expected {QueryResponse.TYPE_NAME}, got {reply.TYPE_NAME}",
                kind="protocol_error",
            )
        return reply

    def stats(self) -> StatsReply:
        reply = self._request("/stats")
        if not isinstance(reply, StatsReply):
            raise ServeClientError(
                f"expected {StatsReply.TYPE_NAME}, got {reply.TYPE_NAME}",
                kind="protocol_error",
            )
        return reply

    def health(self) -> bool:
        reply = self._request("/healthz")
        return isinstance(reply, HealthReply) and reply.status == "ok"
