"""Tiny stdlib client for a running ``repro serve`` instance.

``urllib.request`` only — the same no-new-deps rule as the server.  HTTP
error bodies are parsed back into :class:`~repro.serve.protocol.ErrorReply`
and surfaced as :class:`ServeClientError` carrying the structured kind,
detail, and (for parse errors) line number.

The client can optionally retry transient failures: construct it with
``retries > 0`` and 503 answers (server saturated or shutting down) and
transport errors are retried with exponential backoff, honouring the
server's ``Retry-After`` header when it suggests a longer wait.
Non-transient errors (4xx, 500) are never retried.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from .protocol import (
    ErrorReply,
    HealthReply,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    StatsReply,
    parse_message,
)

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """A structured error answer (or transport failure) from the server."""

    def __init__(
        self,
        detail: str,
        kind: str = "transport_error",
        status: Optional[int] = None,
        line: Optional[int] = None,
        retry_after: Optional[float] = None,
    ):
        prefix = f"[{kind}" + (f"/{status}" if status is not None else "") + "] "
        super().__init__(prefix + detail)
        self.kind = kind
        self.status = status
        self.detail = detail
        self.line = line
        #: the server's Retry-After suggestion in seconds, when it sent one
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        """Transient by construction: worth retrying with backoff."""
        return self.status == 503 or self.status is None


def _retry_after_seconds(headers) -> Optional[float]:
    """Parse a numeric ``Retry-After`` header (HTTP-date form is rare
    enough from our own server to ignore)."""
    if headers is None:
        return None
    value = headers.get("Retry-After")
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class ServeClient:
    """Blocking HTTP client bound to one server base URL.

    ``retries`` is the number of *extra* attempts after the first for
    transient failures (503, connection errors); waits grow as
    ``backoff_base * 2**n`` capped at ``backoff_cap``, and a server
    ``Retry-After`` hint raises (never lowers below) the computed wait.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retries: int = 0,
        backoff_base: float = 0.25,
        backoff_cap: float = 5.0,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

    def _request_once(self, path: str, body: Optional[bytes] = None):
        req = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"} if body else {},
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                text = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            retry_after = _retry_after_seconds(exc.headers)
            try:
                reply = parse_message(raw)
            except (ProtocolError, json.JSONDecodeError):
                raise ServeClientError(
                    raw.strip() or str(exc),
                    status=exc.code,
                    retry_after=retry_after,
                ) from exc
            if isinstance(reply, ErrorReply):
                raise ServeClientError(
                    reply.detail,
                    kind=reply.error,
                    status=exc.code,
                    line=reply.line,
                    retry_after=retry_after,
                ) from exc
            raise ServeClientError(
                raw.strip(), status=exc.code, retry_after=retry_after
            ) from exc
        except urllib.error.URLError as exc:
            raise ServeClientError(str(exc.reason)) from exc
        return parse_message(text)

    def _request(self, path: str, body: Optional[bytes] = None):
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(path, body)
            except ServeClientError as exc:
                if attempt >= self.retries or not exc.retryable:
                    raise
                wait = min(
                    self.backoff_cap, self.backoff_base * (2 ** attempt)
                )
                if exc.retry_after is not None:
                    wait = max(wait, exc.retry_after)
                time.sleep(wait)
        raise AssertionError("unreachable")  # pragma: no cover

    def query(
        self,
        circuit: str,
        fmt: str = "aiger",
        num_iterations: Optional[int] = None,
    ) -> QueryResponse:
        request = QueryRequest(
            circuit=circuit, fmt=fmt, num_iterations=num_iterations
        )
        reply = self._request("/query", request.to_json().encode("utf-8"))
        if not isinstance(reply, QueryResponse):
            raise ServeClientError(
                f"expected {QueryResponse.TYPE_NAME}, got {reply.TYPE_NAME}",
                kind="protocol_error",
            )
        return reply

    def stats(self) -> StatsReply:
        reply = self._request("/stats")
        if not isinstance(reply, StatsReply):
            raise ServeClientError(
                f"expected {StatsReply.TYPE_NAME}, got {reply.TYPE_NAME}",
                kind="protocol_error",
            )
        return reply

    def health(self) -> bool:
        reply = self._request("/healthz")
        return isinstance(reply, HealthReply) and reply.status == "ok"
