"""Bounded micro-batching queue: coalesce concurrent requests.

HTTP handler threads submit jobs and block on a future; one worker
thread drains the queue and hands each batch to a ``run_batch``
callable.  Two knobs bound the coalescing window: ``max_batch_size``
(drain at most this many jobs per cycle) and ``max_wait_ms`` (after the
first job arrives, wait at most this long for companions).  A lone
request therefore pays at most ``max_wait_ms`` extra latency, and a
burst of concurrent requests is fused into one cycle.  A third knob,
``max_queue``, bounds the backlog: once that many jobs are in flight,
``submit`` raises :class:`BatcherSaturated` immediately instead of
queueing, so overload turns into fast 503s rather than an unbounded
pile of blocked handler threads.

The single worker thread is also the concurrency-correctness boundary:
the autograd engine's ``no_grad`` flag is process-global, so *all* model
execution happens on this thread and handler threads never touch the
model.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Sequence, TypeVar

__all__ = ["MicroBatcher", "BatcherClosed", "BatcherSaturated"]

J = TypeVar("J")


class BatcherClosed(RuntimeError):
    """Submit after (or during) shutdown."""


class BatcherSaturated(RuntimeError):
    """Submit while the queue is at ``max_queue`` — shed load, retry later."""


class MicroBatcher:
    """Single-worker batching executor with a bounded coalescing window.

    ``run_batch(jobs)`` must return one result per job, in order; an
    element that is an ``Exception`` instance fails that job alone,
    while ``run_batch`` raising fails the whole cycle.
    """

    def __init__(
        self,
        run_batch: Callable[[List[object]], Sequence[object]],
        max_batch_size: int = 16,
        max_wait_ms: float = 2.0,
        max_queue: int = 128,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self._run_batch = run_batch
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False
        self._lock = threading.Lock()
        # jobs submitted but not yet resolved; guarded by _lock
        self._pending = 0
        # cycle counters (written only by the worker thread, except
        # rejected, which submitters bump under _lock)
        self.batches = 0
        self.jobs = 0
        self.max_batch_observed = 0
        self.rejected = 0
        self._worker = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    # -- producer side -------------------------------------------------
    def submit(self, job: object):
        """Run ``job`` in some upcoming batch; block for its result.

        Raises :class:`BatcherSaturated` (without queueing) when
        ``max_queue`` jobs are already in flight — the HTTP layer maps
        this to 503 + ``Retry-After`` so overload sheds quickly instead
        of stacking blocked handler threads without bound.
        """
        with self._lock:
            if self._closed:
                raise BatcherClosed("micro-batcher is closed")
            if self._pending >= self.max_queue:
                self.rejected += 1
                raise BatcherSaturated(
                    f"micro-batcher queue is full "
                    f"({self._pending}/{self.max_queue} jobs in flight)"
                )
            self._pending += 1
            future: "Future" = Future()
            self._queue.put((job, future))
        try:
            return future.result()
        finally:
            with self._lock:
                self._pending -= 1

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, finish queued jobs, join the worker.

        If the worker does not exit within ``timeout`` (``run_batch``
        wedged mid-cycle), every job still sitting in the queue has its
        future failed with :class:`BatcherClosed` so no submitter blocks
        forever on a result that will never come.  Jobs already handed to
        the wedged ``run_batch`` cannot be recovered here — their futures
        stay with the cycle that owns them.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)
        self._worker.join(timeout=timeout)
        if not self._worker.is_alive():
            return
        # drain whatever the wedged worker will never reach
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                continue
            _, future = item
            future.set_exception(
                BatcherClosed("micro-batcher closed before the job ran")
            )
        # leave a sentinel so a worker that eventually un-wedges exits
        # instead of blocking forever on an empty queue
        self._queue.put(None)

    # -- worker side ----------------------------------------------------
    def _drain(self) -> List[tuple]:
        """Block for the first job, then coalesce within the window."""
        first = self._queue.get()
        if first is None:
            return []
        batch = [first]
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            try:
                item = (
                    self._queue.get_nowait()
                    if remaining <= 0
                    else self._queue.get(timeout=remaining)
                )
            except queue.Empty:
                break
            if item is None:
                # re-post the sentinel so the loop exits after this batch
                self._queue.put(None)
                break
            batch.append(item)
        return batch

    def _loop(self) -> None:
        while True:
            batch = self._drain()
            if not batch:
                return
            jobs = [job for job, _ in batch]
            self.batches += 1
            self.jobs += len(jobs)
            self.max_batch_observed = max(self.max_batch_observed, len(jobs))
            try:
                results = list(self._run_batch(jobs))
                if len(results) != len(jobs):
                    raise RuntimeError(
                        f"run_batch returned {len(results)} results for "
                        f"{len(jobs)} jobs"
                    )
            except BaseException as exc:  # noqa: BLE001 - fail the cycle's jobs
                for _, future in batch:
                    future.set_exception(exc)
                continue
            for (_, future), result in zip(batch, results):
                if isinstance(result, Exception):
                    future.set_exception(result)
                else:
                    future.set_result(result)
