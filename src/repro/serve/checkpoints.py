"""Resolve a servable checkpoint from a path, run directory, or run name.

Trained checkpoints are first-class run artifacts: an experiment that
publishes one lists ``checkpoint`` in its run manifest (see
``write_run_artifacts``), so ``repro serve --run <experiment>`` can find
the newest trained model under the runs root without a hand-given path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..runtime.runner import MANIFEST_NAME, default_runs_dir, list_runs

__all__ = ["CheckpointNotFound", "resolve_checkpoint"]


class CheckpointNotFound(FileNotFoundError):
    """No checkpoint could be resolved from the given reference."""


def _from_run_dir(out_dir: Path) -> Optional[Path]:
    import json

    try:
        manifest = json.loads((out_dir / MANIFEST_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(manifest, dict):
        return None
    filename = manifest.get("checkpoint")
    if not isinstance(filename, str):
        return None
    path = out_dir / filename
    return path if path.is_file() else None


def resolve_checkpoint(
    ref: Union[str, Path],
    runs_dir: Optional[Union[str, Path]] = None,
) -> Path:
    """Turn ``ref`` into a checkpoint file path.

    ``ref`` may be: a checkpoint file, a run directory whose manifest
    records a ``checkpoint`` artifact, or an experiment name — in which
    case the newest complete run of that experiment (by manifest mtime)
    under ``runs_dir`` that published a checkpoint wins.
    """
    p = Path(ref)
    if p.is_file():
        return p
    if p.is_dir():
        found = _from_run_dir(p)
        if found is not None:
            return found
        raise CheckpointNotFound(
            f"{p} has no manifest with a 'checkpoint' artifact"
        )
    root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    candidates = []
    for manifest in list_runs(root):
        if manifest.get("experiment") != str(ref):
            continue
        out_dir = Path(str(manifest["out_dir"]))
        found = _from_run_dir(out_dir)
        if found is not None:
            candidates.append(found)
    if not candidates:
        raise CheckpointNotFound(
            f"no checkpoint for {str(ref)!r}: not a file, not a run "
            f"directory, and no complete run under {root} publishes one "
            "(train one with: repro experiment run train_backbone)"
        )
    return max(candidates, key=lambda c: (c.parent / MANIFEST_NAME).stat().st_mtime)
