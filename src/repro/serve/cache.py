"""Thread-safe LRU cache for compiled circuits, keyed by structural hash.

The server's amortisation lever: ``PreparedBatch`` memoises its level
schedules and compiled fast-path plans internally, so holding one
prepared batch per *structure* means the first query for a circuit pays
parse + featurise + schedule compilation and every structurally identical
resubmission — whatever its node names — reuses all of it.
Hit/miss/eviction counters feed the ``/stats`` endpoint, which is
how the cache's behaviour is observed from outside.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar

__all__ = ["CacheStats", "CompilationCache"]

T = TypeVar("T")


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot (consistent: taken under the cache lock)."""

    hits: int
    misses: int
    evictions: int
    entries: int
    capacity: int


class CompilationCache(Generic[T]):
    """Bounded LRU mapping structural hash → compiled circuit entry.

    ``get_or_build`` runs the builder under the lock, so concurrent
    requests for the same new circuit compile it exactly once (the
    second request blocks briefly and then hits).  Compilation is
    milliseconds against a model pass, so the simplicity beats a
    per-key future dance.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, T]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_build(
        self, key: str, builder: Callable[[], T]
    ) -> Tuple[T, bool]:
        """Return ``(entry, cache_hit)``, building and inserting on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry, True
            self._misses += 1
            entry = builder()
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return entry, False

    def peek(self, key: str) -> Optional[T]:
        """The entry for ``key`` without touching LRU order or counters."""
        with self._lock:
            return self._entries.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                capacity=self.capacity,
            )

    def counters(self) -> Dict[str, int]:
        s = self.stats()
        return {
            "cache_hits": s.hits,
            "cache_misses": s.misses,
            "cache_evictions": s.evictions,
            "cache_entries": s.entries,
            "cache_capacity": s.capacity,
        }
