"""Thread-safe LRU cache for compiled circuits, keyed by structural hash.

The server's amortisation lever: ``PreparedBatch`` memoises its level
schedules and compiled fast-path plans internally, so holding one
prepared batch per *structure* means the first query for a circuit pays
parse + featurise + schedule compilation and every structurally identical
resubmission — whatever its node names — reuses all of it.
Hit/miss/eviction counters feed the ``/stats`` endpoint, which is
how the cache's behaviour is observed from outside.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar

__all__ = ["CacheStats", "CompilationCache"]

T = TypeVar("T")


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot (consistent: taken under the cache lock)."""

    hits: int
    misses: int
    evictions: int
    entries: int
    capacity: int


class _InFlight:
    """A build in progress: waiters block on the event, not the cache lock."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None


class CompilationCache(Generic[T]):
    """Bounded LRU mapping structural hash → compiled circuit entry.

    ``get_or_build`` runs the builder OUTSIDE the cache lock: the first
    requester for a key registers an in-flight marker and builds; later
    requesters for the *same* key wait on that marker (build-once, and a
    wait still counts as a hit), while requests for *other* keys proceed
    unblocked — a slow compile never head-of-line blocks the rest of the
    cache.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, T]" = OrderedDict()
        self._building: Dict[str, _InFlight] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_build(
        self, key: str, builder: Callable[[], T]
    ) -> Tuple[T, bool]:
        """Return ``(entry, cache_hit)``, building and inserting on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry, True
            flight = self._building.get(key)
            if flight is None:
                # we own the build for this key
                flight = self._building[key] = _InFlight()
                self._misses += 1
                owner = True
            else:
                owner = False
        if not owner:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                # the owner inserted before signalling; refresh LRU order
                # unless the entry was already evicted under pressure
                if key in self._entries:
                    self._entries.move_to_end(key)
                self._hits += 1
            return flight.value, True  # type: ignore[return-value]
        try:
            entry = builder()
        except BaseException as exc:
            with self._lock:
                self._building.pop(key, None)
            flight.error = exc
            flight.done.set()
            raise
        with self._lock:
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._building.pop(key, None)
        flight.value = entry
        flight.done.set()
        return entry, False

    def peek(self, key: str) -> Optional[T]:
        """The entry for ``key`` without touching LRU order or counters."""
        with self._lock:
            return self._entries.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                capacity=self.capacity,
            )

    def counters(self) -> Dict[str, int]:
        s = self.stats()
        return {
            "cache_hits": s.hits,
            "cache_misses": s.misses,
            "cache_evictions": s.evictions,
            "cache_entries": s.entries,
            "cache_capacity": s.capacity,
        }
