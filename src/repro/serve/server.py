"""HTTP front end for the inference service (stdlib only).

Endpoints:

* ``POST /query`` — a :class:`~repro.serve.protocol.QueryRequest`
  payload; answers 200 with a ``QueryResponse``, 400 with a structured
  ``ErrorReply`` for protocol/parse/circuit faults (parse errors carry
  the offending line), 503 when the batcher is shutting down or its
  queue is full (with a ``Retry-After`` header inviting a backed-off
  retry), 500 for anything unexpected.
* ``GET /stats`` — cache/batcher/request counters (``StatsReply``).
* ``GET /healthz`` — liveness probe.

``ThreadingHTTPServer`` gives one handler thread per connection; handler
threads only parse and wait on the micro-batcher, so the model itself
stays single-threaded (see :mod:`repro.serve.batcher`).
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..aig.errors import CircuitParseError
from .batcher import BatcherClosed, BatcherSaturated
from .protocol import (
    ErrorReply,
    HealthReply,
    Message,
    ProtocolError,
    QueryRequest,
    parse_message,
)
from .service import CircuitRejected, InferenceService

__all__ = ["ServeServer"]

_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Retry-After seconds sent with saturation 503s — one micro-batch
#: window is usually enough for the queue to drain below the bound
RETRY_AFTER_S = 1


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> InferenceService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        message: Message,
        retry_after: Optional[int] = None,
    ) -> None:
        body = (message.to_json() + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_reply(
        self,
        status: int,
        kind: str,
        detail: str,
        line: Optional[int] = None,
        retry_after: Optional[int] = None,
    ) -> None:
        self._send(
            status,
            ErrorReply(error=kind, detail=detail, line=line),
            retry_after=retry_after,
        )

    # -- endpoints ------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._send(200, HealthReply())
        elif self.path == "/stats":
            self._send(200, self.service.stats())
        else:
            self._send_error_reply(404, "not_found", f"no such path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path != "/query":
            self._send_error_reply(404, "not_found", f"no such path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._send_error_reply(
                400, "protocol_error", "Content-Length required (and bounded)"
            )
            return
        body = self.rfile.read(length)
        try:
            message = parse_message(body.decode("utf-8", errors="replace"))
            if not isinstance(message, QueryRequest):
                raise ProtocolError(
                    f"POST /query expects {QueryRequest.TYPE_NAME}, got "
                    f"{message.TYPE_NAME}"
                )
            response = self.service.query(message)
        except ProtocolError as exc:
            self._send_error_reply(400, "protocol_error", str(exc))
        except CircuitParseError as exc:
            self._send_error_reply(400, "parse_error", str(exc), line=exc.line)
        except CircuitRejected as exc:
            self._send_error_reply(400, "circuit_error", str(exc))
        except BatcherSaturated as exc:
            # deliberate load shedding: the queue is full right now, and
            # Retry-After tells well-behaved clients when to come back
            self._send_error_reply(
                503, "saturated", str(exc), retry_after=RETRY_AFTER_S
            )
        except BatcherClosed as exc:
            # shutdown race, not a server fault: the client may retry
            # against a live replica
            self._send_error_reply(503, "unavailable", str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._send_error_reply(
                500, "internal_error", f"{type(exc).__name__}: {exc}"
            )
        else:
            self._send(200, response)


class ServeServer:
    """The threaded HTTP server wrapping one :class:`InferenceService`."""

    def __init__(
        self,
        service: InferenceService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ):
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` is called."""
        self._httpd.serve_forever(poll_interval=0.2)

    def shutdown(self) -> None:
        """Stop ``serve_forever`` from another thread."""
        self._httpd.shutdown()

    def close(self) -> None:
        """Release the socket and drain the service's worker thread."""
        self._httpd.server_close()
        self.service.close()

    def __enter__(self) -> "ServeServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def describe(server: ServeServer) -> str:
    """One-line startup banner."""
    svc = server.service
    return (
        f"serving {svc.model_label} on http://{server.host}:{server.port} "
        f"(cache {svc.cache.capacity}, batch<= {svc.batcher.max_batch_size}, "
        f"wait {svc.batcher.max_wait_ms}ms, mode {svc.batch_mode})"
    )
