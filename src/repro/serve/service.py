"""The inference service: parse → canonicalise → cache → batch → predict.

Request flow (handler thread):

1. parse the circuit text (:mod:`repro.aig`; malformed input raises a
   :class:`~repro.aig.errors.CircuitParseError` with a line number),
2. lower to an AIG and canonicalise with strash
   (:func:`repro.synth.structural_hash` is the cache key, so node names
   don't matter — predictions are per canonical node, so the key keeps
   the canonical node ordering),
3. fetch-or-build the compiled circuit from the strash-keyed LRU
   (:class:`~repro.serve.cache.CompilationCache`),
4. submit to the micro-batcher and block for predictions.

Batch cycle (worker thread): jobs are grouped by (structural hash,
iteration override) and each **unique** circuit runs one fused
propagation pass — K concurrent submissions of the same structure are
answered by a single pass, which keeps every response bitwise identical
to the serial single-request path.  ``batch_mode="merged"`` additionally
fuses *distinct* circuits of a cycle into one disjoint-union pass via
the singles' cached schedules (:func:`repro.graphdata.merge_prepared`);
that mode trades strict bitwise reproducibility (BLAS kernels may round
differently on different row counts — differences are ~1 ulp) for fewer
passes under heterogeneous load, so it is opt-in.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..aig import aiger, bench, verilog
from ..aig.graph import AIG
from ..graphdata.dataset import PreparedBatch, merge_prepared
from ..graphdata.features import inference_graph
from ..nn.tensor import no_grad
from ..synth import (
    has_constant_outputs,
    netlist_to_aig,
    strash,
    strip_constant_outputs,
    structural_hash,
)
from .batcher import MicroBatcher
from .cache import CompilationCache
from .protocol import QueryRequest, QueryResponse, StatsReply

__all__ = [
    "CircuitRejected",
    "CompiledCircuit",
    "InferenceService",
    "BATCH_MODES",
    "service_from_checkpoint",
]

BATCH_MODES = ("exact", "merged")


class CircuitRejected(ValueError):
    """A well-formed request the service cannot serve (semantic 400)."""


@dataclass
class CompiledCircuit:
    """One cache entry: the canonical AIG and its prepared batch.

    ``prepared`` memoises level schedules and compiled fast-path plans
    internally, so repeat queries skip all compilation.
    """

    key: str
    aig: AIG
    prepared: PreparedBatch

    @property
    def num_nodes(self) -> int:
        return self.prepared.num_nodes


def parse_circuit(text: str, fmt: str) -> AIG:
    """Parse ``text`` in ``fmt`` and lower it to a raw AIG."""
    if fmt == "aiger":
        return aiger.loads(text, name="query")
    if fmt == "bench":
        return netlist_to_aig(bench.loads(text, name="query"))
    if fmt == "verilog":
        return netlist_to_aig(verilog.loads(text))
    raise CircuitRejected(f"unknown circuit format {fmt!r}")


def canonicalize(aig: AIG) -> Tuple[str, AIG]:
    """Strash ``aig`` into its canonical form; return (cache key, AIG)."""
    canonical = strash(aig)
    if has_constant_outputs(canonical):
        try:
            canonical = strip_constant_outputs(canonical)
        except ValueError as exc:
            raise CircuitRejected(str(exc)) from exc
    key = structural_hash(canonical, canonicalize=False)
    return key, canonical


@dataclass
class _Job:
    entry: CompiledCircuit
    num_iterations: Optional[int]


class InferenceService:
    """A loaded model behind the compilation cache and micro-batcher."""

    def __init__(
        self,
        model,
        model_label: str = "model",
        cache_size: int = 128,
        max_batch_size: int = 16,
        max_wait_ms: float = 2.0,
        max_queue: int = 128,
        batch_mode: str = "exact",
    ):
        if batch_mode not in BATCH_MODES:
            raise ValueError(
                f"unknown batch_mode {batch_mode!r}; expected one of {BATCH_MODES}"
            )
        self.model = model
        self.model_label = model_label
        self.batch_mode = batch_mode
        self._supports_iterations = hasattr(model, "num_iterations")
        self.cache: CompilationCache = CompilationCache(cache_size)
        self.batcher = MicroBatcher(
            self._run_cycle,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
        )
        self._started = time.monotonic()
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._closed = False

    # -- request path (handler threads) ---------------------------------
    def compile_circuit(self, text: str, fmt: str) -> Tuple[CompiledCircuit, bool]:
        """Parse + canonicalise ``text`` and fetch/build its cache entry."""
        aig = parse_circuit(text, fmt)
        key, canonical = canonicalize(aig)

        def build() -> CompiledCircuit:
            graph = inference_graph(canonical)
            return CompiledCircuit(
                key=key, aig=canonical, prepared=PreparedBatch(graph)
            )

        return self.cache.get_or_build(key, build)

    def query(self, request: QueryRequest) -> QueryResponse:
        """Serve one request; raises the error the server maps to 4xx/5xx."""
        start = time.perf_counter()
        with self._counter_lock:
            self._requests += 1
        try:
            if request.num_iterations is not None and not self._supports_iterations:
                raise CircuitRejected(
                    f"model {self.model_label!r} is not recurrent; "
                    "num_iterations cannot be overridden"
                )
            entry, cache_hit = self.compile_circuit(request.circuit, request.fmt)
            predictions, coalesced = self.batcher.submit(
                _Job(entry, request.num_iterations)
            )
        except Exception:
            with self._counter_lock:
                self._errors += 1
            raise
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return QueryResponse(
            structural_hash=entry.key,
            num_nodes=entry.num_nodes,
            num_pis=entry.aig.num_pis,
            num_ands=entry.aig.num_ands,
            predictions=tuple(float(p) for p in predictions),
            cache_hit=cache_hit,
            coalesced=coalesced,
            model=self.model_label,
            elapsed_ms=elapsed_ms,
        )

    # -- batch cycle (worker thread) -------------------------------------
    def _predict(self, prepared: PreparedBatch, num_iterations: Optional[int]):
        if num_iterations is not None:
            out = self.model.forward(prepared, num_iterations=num_iterations)
        else:
            out = self.model.forward(prepared)
        return np.asarray(out.data, dtype=np.float32)

    def _run_cycle(self, jobs: List[_Job]) -> List[object]:
        # group by (structure, iteration override): each unique group runs
        # ONE pass and every job in it shares the result bitwise
        groups: Dict[Tuple[str, Optional[int]], List[int]] = {}
        for idx, job in enumerate(jobs):
            groups.setdefault((job.entry.key, job.num_iterations), []).append(idx)
        results: List[object] = [None] * len(jobs)
        with no_grad():
            if self.batch_mode == "merged" and len(groups) > 1:
                self._run_merged(jobs, groups, results)
            else:
                for (key, iters), indices in groups.items():
                    entry = jobs[indices[0]].entry
                    try:
                        preds = self._predict(entry.prepared, iters)
                    except Exception as exc:  # noqa: BLE001 - fail this group only
                        for idx in indices:
                            results[idx] = exc
                        continue
                    for idx in indices:
                        results[idx] = (preds, len(indices))
        return results

    def _run_merged(
        self,
        jobs: List[_Job],
        groups: Dict[Tuple[str, Optional[int]], List[int]],
        results: List[object],
    ) -> None:
        """Fuse a cycle's distinct circuits into one pass per iteration
        override (predictions match the per-circuit path to ~1 ulp, not
        bitwise — that is why this mode is opt-in)."""
        by_iters: Dict[Optional[int], List[Tuple[str, List[int]]]] = {}
        for (key, iters), indices in groups.items():
            by_iters.setdefault(iters, []).append((key, indices))
        for iters, members in by_iters.items():
            entries = [jobs[indices[0]].entry for _, indices in members]
            coalesced = sum(len(indices) for _, indices in members)
            try:
                merged = merge_prepared([e.prepared for e in entries])
                preds = self._predict(merged, iters)
            except Exception as exc:  # noqa: BLE001 - fail this pass's jobs
                for _, indices in members:
                    for idx in indices:
                        results[idx] = exc
                continue
            offsets = np.cumsum([0] + [e.num_nodes for e in entries])
            for (_, indices), lo, hi in zip(members, offsets[:-1], offsets[1:]):
                part = np.ascontiguousarray(preds[lo:hi])
                for idx in indices:
                    results[idx] = (part, coalesced)

    # -- observability / lifecycle ---------------------------------------
    def stats(self) -> StatsReply:
        cache = self.cache.counters()
        with self._counter_lock:
            requests, errors = self._requests, self._errors
        return StatsReply(
            model=self.model_label,
            uptime_s=time.monotonic() - self._started,
            requests=requests,
            errors=errors,
            batches=self.batcher.batches,
            batched_requests=self.batcher.jobs,
            max_batch_observed=self.batcher.max_batch_observed,
            max_batch_size=self.batcher.max_batch_size,
            max_wait_ms=self.batcher.max_wait_ms,
            max_queue=self.batcher.max_queue,
            rejected=self.batcher.rejected,
            batch_mode=self.batch_mode,
            **cache,
        )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.batcher.close()


def service_from_checkpoint(path, **kwargs) -> InferenceService:
    """Load a model checkpoint (``save_model_checkpoint`` format) and wrap
    it in an :class:`InferenceService`; extra kwargs configure the service."""
    from ..nn.serialization import load_model_checkpoint

    model, meta = load_model_checkpoint(path)
    config = meta.get("model_config", {})
    label = config.get("class", type(model).__name__)
    detail = ",".join(
        f"{k}={config[k]}" for k in ("dim", "num_iterations", "num_layers")
        if k in config
    )
    if detail:
        label = f"{label}({detail})"
    kwargs.setdefault("model_label", label)
    return InferenceService(model, **kwargs)
