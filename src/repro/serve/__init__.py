"""Persistent inference serving: HTTP server, strash-keyed compilation
cache, and async micro-batching over a trained checkpoint."""

from .batcher import BatcherClosed, BatcherSaturated, MicroBatcher
from .cache import CacheStats, CompilationCache
from .checkpoints import CheckpointNotFound, resolve_checkpoint
from .client import ServeClient, ServeClientError
from .protocol import (
    CIRCUIT_FORMATS,
    PROTOCOL_VERSION,
    ErrorReply,
    HealthReply,
    Message,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    StatsReply,
    parse_message,
)
from .server import ServeServer, describe
from .service import (
    BATCH_MODES,
    CircuitRejected,
    CompiledCircuit,
    InferenceService,
    service_from_checkpoint,
)

__all__ = [
    "BATCH_MODES",
    "BatcherClosed",
    "BatcherSaturated",
    "CIRCUIT_FORMATS",
    "CacheStats",
    "CheckpointNotFound",
    "CircuitRejected",
    "CompilationCache",
    "CompiledCircuit",
    "ErrorReply",
    "HealthReply",
    "InferenceService",
    "Message",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "ServeClient",
    "ServeClientError",
    "ServeServer",
    "StatsReply",
    "describe",
    "parse_message",
    "resolve_checkpoint",
    "service_from_checkpoint",
]
