"""Propagation micro-benchmarks: ``repro bench run`` / ``repro bench compare``.

Times the model stack over three circuit regimes — a *small* batch of mixed
circuits, a single *deep* carry-chain circuit (many levels, the worst case
for level-by-level propagation), and a *wide* shallow batch — plus four
``default_<aggregator>`` suites that train one DeepGate variant per
AGGREGATE design (Table II) over several default-scale mini-batches per
epoch, and writes a machine-comparable ``BENCH_<name>.json``.  Metrics per
suite:

``forward_s``      best-of-N wall-clock of an inference forward pass
``backward_s``     best-of-N wall-clock of forward + backward
``train_epoch_s``  best-of-N wall-clock of a full Adam training epoch
``nodes_per_s``    training throughput (batch nodes / train_epoch_s)

Time metrics report the *minimum* over the repeats (the ``timeit``
convention): on shared machines scheduler interference only ever adds
time, so the fastest sample is the closest to the code's true cost and
is far more stable run-to-run than a median of a handful of samples.
``tracemalloc_peak_mb``  peak traced python/numpy allocations in one
                   forward+backward (measured outside the timed repeats)
``peak_rss_kb``    process high-water RSS after the suite, in KB on every
                   platform (``ru_maxrss`` is bytes on macOS, KB on Linux —
                   normalised here).  It is a lifetime high-water mark, so
                   it is monotone across suites; ``peak_rss_delta_kb`` is
                   the growth attributable to this suite (high-water after
                   minus high-water before, floored at 0)

``repro bench compare old.json new.json`` prints per-metric speedups
(``old / new`` for time metrics) and a headline deep-circuit training
speedup, which is how the fast-path gain over a committed baseline file is
tracked in CI.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .datagen.generators import decoder, multiplier, parity, ripple_adder
from .graphdata import PreparedBatch, from_aig, prepare
from .models.aggregators import AGGREGATOR_NAMES
from .models.deepgate import DeepGate
from .nn.functional import l1_loss
from .nn.optim import Adam, clip_grad_norm
from .nn.tensor import no_grad
from .synth import synthesize

__all__ = [
    "BENCH_SUITES",
    "AGGREGATOR_SUITES",
    "HUGE_SUITE",
    "all_suite_names",
    "bench_huge_suite",
    "run_benchmarks",
    "write_bench_file",
    "compare_bench",
    "max_rss_regression",
    "render_compare",
]

#: time metrics where "old / new > 1" means the new run is faster
TIME_METRICS = ("forward_s", "backward_s", "train_epoch_s")

#: suite name -> list of (generator, kwargs) building its circuits
BENCH_SUITES: Dict[str, List[Tuple[Callable, Dict[str, int]]]] = {
    "small": [
        (ripple_adder, {"width": 4}),
        (parity, {"width": 8}),
        (ripple_adder, {"width": 6}),
        (parity, {"width": 12}),
        (decoder, {"select_bits": 4}),
        (multiplier, {"width": 3}),
    ],
    # one long carry chain: many levels with few nodes each, the regime
    # where per-level full-state copies dominate
    "deep": [(ripple_adder, {"width": 48})],
    # few levels with many nodes each: per-level overheads amortise, the
    # segment reductions themselves dominate
    "wide": [
        (decoder, {"select_bits": 7}),
        (multiplier, {"width": 6}),
    ],
}

#: the mini-batches of the ``default_<aggregator>`` suites: circuit sizes
#: sit inside the `default` experiment scale's node window, and a train
#: epoch steps once per batch (the multi-batch regime real training runs
#: in, where schedule-compilation caching pays off per batch, not once)
DEFAULT_SCALE_BATCHES: List[List[Tuple[Callable, Dict[str, int]]]] = [
    [(ripple_adder, {"width": 16}), (decoder, {"select_bits": 5})],
    [(multiplier, {"width": 4}), (parity, {"width": 16})],
    [(ripple_adder, {"width": 24}), (decoder, {"select_bits": 6})],
]

#: suite name -> aggregator: each trains a DeepGate variant with that
#: AGGREGATE design over :data:`DEFAULT_SCALE_BATCHES` (skip connections
#: only where the design supports them, i.e. attention)
AGGREGATOR_SUITES: Dict[str, str] = {
    f"default_{name}": name for name in AGGREGATOR_NAMES
}


#: the streaming-scale suite: a generated ~10^5-gate circuit run through
#: the windowed propagation path.  Opt-in only (never part of the default
#: "run everything" sweep — it is a memory-regime benchmark, not a speed
#: micro-benchmark, and takes minutes at full size).
HUGE_SUITE = "huge"


def all_suite_names() -> List[str]:
    """Every default-runnable suite, circuit regimes first.

    :data:`HUGE_SUITE` is deliberately excluded — it only runs when named
    explicitly (``repro bench run --suite huge``).
    """
    return sorted(BENCH_SUITES) + sorted(AGGREGATOR_SUITES)


def build_suite(name: str, num_patterns: int = 512) -> PreparedBatch:
    """Featurise and merge a circuit suite into one prepared batch."""
    if name not in BENCH_SUITES:
        raise ValueError(f"unknown bench suite {name!r}; choose from "
                         f"{sorted(BENCH_SUITES)}")
    graphs = [
        from_aig(synthesize(factory(**kwargs)), num_patterns=num_patterns,
                 seed=k)
        for k, (factory, kwargs) in enumerate(BENCH_SUITES[name])
    ]
    return prepare(graphs)


def build_suite_batches(
    name: str, num_patterns: int = 512
) -> List[PreparedBatch]:
    """The suite's prepared batches: one for the circuit regimes, one per
    mini-batch for the ``default_<aggregator>`` suites."""
    if name not in BENCH_SUITES and name not in AGGREGATOR_SUITES:
        raise ValueError(f"unknown bench suite {name!r}; choose from "
                         f"{all_suite_names()}")
    if name in AGGREGATOR_SUITES:
        return [
            prepare([
                from_aig(
                    synthesize(factory(**kwargs)),
                    num_patterns=num_patterns,
                    seed=bi * 10 + k,
                )
                for k, (factory, kwargs) in enumerate(circuits)
            ])
            for bi, circuits in enumerate(DEFAULT_SCALE_BATCHES)
        ]
    return [build_suite(name, num_patterns=num_patterns)]


def _make_model(
    dim: int, iterations: int, variant: str, aggregator: Optional[str] = None
) -> DeepGate:
    """Build the benchmark model; ``variant`` picks the propagation path.

    Runs against older checkouts that predate the ``compiled`` knob (for
    capturing pre-fast-path baselines): there the variant is recorded as
    ``legacy``.
    """
    kwargs = dict(dim=dim, num_iterations=iterations,
                  rng=np.random.default_rng(0))
    if aggregator is not None:
        kwargs.update(
            aggregator=aggregator, use_skip=(aggregator == "attention")
        )
    try:
        return DeepGate(compiled=(variant != "reference"), **kwargs)
    except TypeError:
        return DeepGate(**kwargs)


def _variant_label(variant: str) -> str:
    import inspect

    if "compiled" not in inspect.signature(DeepGate.__init__).parameters:
        return "legacy"
    return variant


def _normalise_rss_kb(
    ru_maxrss: int, platform_name: Optional[str] = None
) -> int:
    """``getrusage`` reports ``ru_maxrss`` in KB on Linux but in BYTES on
    macOS; normalise to KB so bench files compare across platforms."""
    if platform_name is None:
        platform_name = sys.platform
    value = int(ru_maxrss)
    return value // 1024 if platform_name == "darwin" else value


def _rss_kb() -> int:
    """Current process high-water RSS in KB (platform-normalised)."""
    return _normalise_rss_kb(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    )


def _time(fn: Callable[[], None], repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    # min, not median: interference is strictly additive, so the fastest
    # sample is the least-noisy estimate (same convention as timeit)
    return min(samples)


def bench_suite(
    name: str,
    dim: int = 64,
    iterations: int = 4,
    repeats: int = 3,
    epochs: int = 2,
    variant: str = "compiled",
    num_patterns: int = 512,
) -> Dict[str, object]:
    """Benchmark one suite; returns the metrics dict for the JSON file.

    For ``default_<aggregator>`` suites the model is the matching DeepGate
    variant, and every metric spans ALL of the suite's mini-batches (a
    train epoch steps the optimiser once per batch).
    """
    rss_before_kb = _rss_kb()
    batches = build_suite_batches(name, num_patterns=num_patterns)
    model = _make_model(
        dim, iterations, variant, aggregator=AGGREGATOR_SUITES.get(name)
    )

    def forward() -> None:
        with no_grad():
            for batch in batches:
                model(batch)

    def backward() -> None:
        model.zero_grad()
        for batch in batches:
            loss = l1_loss(model(batch), batch.labels)
            loss.backward()

    # warm up once so schedule compilation/caching is not inside the clock
    # of the first repeat (it is a one-off cost per batch, not per pass)
    forward()
    forward_s = _time(forward, repeats)
    backward()
    backward_s = _time(backward, repeats)

    optimizer = Adam(model.parameters(), lr=1e-4)

    def train_epoch() -> None:
        for batch in batches:
            optimizer.zero_grad()
            loss = l1_loss(model(batch), batch.labels)
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()

    epoch_samples = []
    for _ in range(max(1, epochs)):
        t0 = time.perf_counter()
        train_epoch()
        epoch_samples.append(time.perf_counter() - t0)
    train_epoch_s = min(epoch_samples)

    # allocation high-water mark of one forward+backward, measured outside
    # the timed repeats (tracemalloc slows numpy allocation down)
    tracemalloc.start()
    tracemalloc.reset_peak()
    backward()
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    num_nodes = sum(b.graph.num_nodes for b in batches)
    metrics = {
        "circuits": sum(
            len(c) for c in DEFAULT_SCALE_BATCHES
        ) if name in AGGREGATOR_SUITES else len(BENCH_SUITES[name]),
        "nodes": int(num_nodes),
        "edges": int(sum(b.graph.num_edges for b in batches)),
        "levels": int(
            max(b.graph.levels.max(initial=0) for b in batches)
        ),
        "forward_s": forward_s,
        "backward_s": backward_s,
        "train_epoch_s": train_epoch_s,
        "nodes_per_s": float(num_nodes / train_epoch_s),
        "tracemalloc_peak_mb": float(traced_peak / 1e6),
        "peak_rss_kb": _rss_kb(),
        "peak_rss_delta_kb": max(0, _rss_kb() - rss_before_kb),
    }
    if name in AGGREGATOR_SUITES:
        metrics["batches"] = len(batches)
        metrics["aggregator"] = AGGREGATOR_SUITES[name]
    return metrics


# ---------------------------------------------------------------------------
# huge suite (windowed streaming path)
# ---------------------------------------------------------------------------

_PROBE_CHILD = """\
import json, os, resource, sys
status, err = "completed", ""
try:
    os.environ.pop("REPRO_WINDOW_BUDGET", None)
    from repro.bench import _make_model, _rss_kb
    from repro.datagen.generators import huge_circuit
    from repro.graphdata import prepare
    from repro.nn.functional import l1_loss

    graph = huge_circuit({num_gates}, seed={seed})
    batch = prepare([graph])
    model = _make_model({dim}, {iterations}, "compiled",
                        aggregator="attention")
    # cap the address space at (what is mapped now) + the allowance the
    # windowed path is given; only the pass itself runs under the cap
    page = os.sysconf("SC_PAGE_SIZE")
    with open("/proc/self/statm") as fh:
        vm = int(fh.read().split()[0]) * page
    limit = vm + {budget_bytes}
    _, hard = resource.getrlimit(resource.RLIMIT_AS)
    # soft limit only: the hard limit cannot be raised back afterwards
    resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    model.zero_grad()
    loss = l1_loss(model(batch), batch.labels)
    loss.backward()
except MemoryError:
    status = "memory_error"
except Exception as exc:  # noqa: BLE001 - report, don't crash the parent
    status, err = "failed", f"{{type(exc).__name__}}: {{exc}}"
_, hard = resource.getrlimit(resource.RLIMIT_AS)
resource.setrlimit(resource.RLIMIT_AS, (hard, hard))
print(json.dumps({{"status": status, "error": err,
                   "peak_rss_kb": _rss_kb()}}))
"""


def probe_full_path(
    num_gates: int,
    seed: int,
    dim: int,
    iterations: int,
    budget_mb: float,
    timeout_s: float = 1800.0,
) -> Dict[str, object]:
    """Run the FULL (non-windowed) pass in a subprocess under a memory cap.

    The child prepares the batch unrestricted, then clamps its address
    space to ``current + budget_mb`` before the forward+backward — the
    same allowance the windowed path works within.  Returns a status dict:
    ``completed`` means the full path fit (the bound is too generous to
    discriminate), ``memory_error``/``failed`` means it did not — which is
    the expected outcome that motivates streaming windows.
    """
    if not Path("/proc/self/statm").exists():
        return {"status": "skipped", "error": "no /proc; probe is Linux-only"}
    src_root = Path(__file__).resolve().parents[1]
    child = _PROBE_CHILD.format(
        num_gates=int(num_gates), seed=int(seed), dim=int(dim),
        iterations=int(iterations),
        budget_bytes=int(budget_mb * 1024 * 1024),
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    try:
        proc = subprocess.run(
            [sys.executable, "-c", child], capture_output=True, text=True,
            env=env, timeout=timeout_s,
        )
    except subprocess.TimeoutExpired:
        return {"status": "timeout", "error": f"no result in {timeout_s}s"}
    for line in reversed(proc.stdout.splitlines()):
        line = line.strip()
        if line.startswith("{"):
            try:
                return json.loads(line)
            except json.JSONDecodeError:
                break
    # a hard crash (e.g. allocator abort inside BLAS under the rlimit)
    # never reaches the JSON print; that still answers the question
    return {
        "status": "failed",
        "error": f"exit {proc.returncode}: {proc.stderr.strip()[-300:]}",
    }


def bench_huge_suite(
    num_gates: int = 100_000,
    window_budget: int = 8192,
    dim: int = 32,
    iterations: int = 1,
    repeats: int = 1,
    seed: int = 0,
    full_check: bool = False,
    full_budget_mb: float = 512.0,
    dump_path: Optional[Path] = None,
) -> Dict[str, object]:
    """Benchmark the windowed streaming path on a generated huge circuit.

    Unlike the speed suites this is a *memory-regime* benchmark: the
    interesting outputs are ``peak_rss_kb`` (gated in CI via
    ``--max-rss-kb``), the window/frontier statistics, and — with
    ``full_check`` — a subprocess probe showing the non-windowed path
    cannot run the same pass inside the same allowance.

    ``dump_path``, when set, writes the model's (untrained, seed-pinned)
    forward predictions as a deterministic ``.npz``: two runs at
    different ``window_budget`` values must produce byte-identical files,
    which is how CI enforces the bitwise windowed==full criterion at
    scale.
    """
    from .datagen.generators import huge_circuit
    from .graphdata.shards import write_npz_deterministic
    from .models.propagation import (
        get_window_stats,
        reset_window_stats,
        use_window_budget,
    )

    rss_before_kb = _rss_kb()
    graph = huge_circuit(num_gates, seed=seed)
    batch = prepare([graph])
    model = _make_model(dim, iterations, "compiled", aggregator="attention")
    reset_window_stats()

    with use_window_budget(int(window_budget)):
        def forward() -> None:
            with no_grad():
                model(batch)

        if dump_path is not None:
            # dump BEFORE any gradient step: forward outputs are bitwise
            # identical across window budgets, trained weights are only
            # round-off equal
            with no_grad():
                pred = model(batch).data
            write_npz_deterministic(
                Path(dump_path), {"pred": np.ascontiguousarray(pred)}
            )
        else:
            forward()  # warm-up: schedule windowing happens off the clock
        forward_s = _time(forward, repeats)

        def backward() -> None:
            model.zero_grad()
            loss = l1_loss(model(batch), batch.labels)
            loss.backward()

        backward()
        backward_s = _time(backward, repeats)

        optimizer = Adam(model.parameters(), lr=1e-4)
        t0 = time.perf_counter()
        optimizer.zero_grad()
        loss = l1_loss(model(batch), batch.labels)
        loss.backward()
        clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()
        train_epoch_s = time.perf_counter() - t0

    stats = get_window_stats()
    num_nodes = batch.graph.num_nodes
    metrics: Dict[str, object] = {
        "circuits": 1,
        "nodes": int(num_nodes),
        "edges": int(batch.graph.num_edges),
        "levels": int(batch.graph.levels.max(initial=0)),
        "forward_s": forward_s,
        "backward_s": backward_s,
        "train_epoch_s": train_epoch_s,
        "nodes_per_s": float(num_nodes / train_epoch_s),
        "peak_rss_kb": _rss_kb(),
        "peak_rss_delta_kb": max(0, _rss_kb() - rss_before_kb),
        "window_budget": int(window_budget),
        "window_stats": {k: int(v) for k, v in stats.items()},
    }
    if full_check:
        metrics["full_path_probe"] = dict(
            probe_full_path(
                num_gates, seed, dim, iterations, full_budget_mb
            ),
            budget_mb=float(full_budget_mb),
        )
    return metrics


def run_benchmarks(
    suites: Optional[Sequence[str]] = None,
    name: str = "bench",
    dim: int = 64,
    iterations: int = 4,
    repeats: int = 3,
    epochs: int = 2,
    variant: str = "compiled",
    huge: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Run the suites and assemble the ``BENCH_<name>.json`` payload.

    The :data:`HUGE_SUITE` runs only when explicitly named in ``suites``;
    ``huge`` carries its keyword arguments (see :func:`bench_huge_suite`).
    """
    chosen = list(suites) if suites else all_suite_names()
    results = {
        suite: bench_huge_suite(**(huge or {}))
        if suite == HUGE_SUITE
        else bench_suite(
            suite, dim=dim, iterations=iterations, repeats=repeats,
            epochs=epochs, variant=variant,
        )
        for suite in chosen
    }
    return {
        "schema": 1,
        "name": name,
        "variant": _variant_label(variant),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "config": {
            "dim": dim,
            "iterations": iterations,
            "repeats": repeats,
            "epochs": epochs,
        },
        "suites": results,
    }


#: per-suite metrics pooled by ``merge_bench`` — all "lower is better"
_MERGE_MIN_METRICS = TIME_METRICS + (
    "tracemalloc_peak_mb", "peak_rss_kb", "peak_rss_delta_kb"
)


def merge_bench(
    old: Dict[str, object], new: Dict[str, object]
) -> Dict[str, object]:
    """Pool two runs of the same benchmark: per-metric best of both.

    On machines with bursty background load a single invocation is a
    lottery — one suite can land in a slow patch while another lands in
    a fast one.  Repeated interleaved runs merged with this function
    converge every suite to its quiet-machine floor.  Time metrics (and
    the memory high-water marks) take the elementwise minimum;
    ``nodes_per_s`` is recomputed from the merged ``train_epoch_s`` so
    it stays consistent with it.  Suites present in only one payload
    are kept as-is.
    """
    merged = dict(new)
    suites = dict(new.get("suites", {}))
    for suite, old_metrics in dict(old.get("suites", {})).items():
        if suite not in suites:
            suites[suite] = dict(old_metrics)
            continue
        pooled = dict(suites[suite])
        for metric in _MERGE_MIN_METRICS:
            if metric in old_metrics and metric in pooled:
                pooled[metric] = min(
                    float(old_metrics[metric]), float(pooled[metric])
                )
        if "train_epoch_s" in pooled and pooled["train_epoch_s"]:
            pooled["nodes_per_s"] = float(
                pooled["nodes"] / pooled["train_epoch_s"]
            )
        suites[suite] = pooled
    merged["suites"] = suites
    merged["merged_runs"] = int(old.get("merged_runs", 1)) + 1
    return merged


def write_bench_file(payload: Dict[str, object], out: Path) -> Path:
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


# ---------------------------------------------------------------------------
# compare
# ---------------------------------------------------------------------------


def compare_bench(
    old: Dict[str, object], new: Dict[str, object]
) -> Dict[str, object]:
    """Per-suite metric diff; speedup = old/new for time metrics.

    Suites present in only one file produce no speedup rows (there is
    nothing to compare against), but they are never silently dropped:
    ``missing_suites`` names them per side, so a renamed or removed suite
    cannot masquerade as a clean comparison.
    """
    rows = []
    old_suites = dict(old.get("suites", {}))
    new_suites = dict(new.get("suites", {}))
    for suite in sorted(set(old_suites) & set(new_suites)):
        a, b = old_suites[suite], new_suites[suite]
        for metric in TIME_METRICS + (
            "tracemalloc_peak_mb", "peak_rss_delta_kb"
        ):
            if metric not in a or metric not in b:
                continue
            before, after = float(a[metric]), float(b[metric])
            rows.append({
                "suite": suite,
                "metric": metric,
                "old": before,
                "new": after,
                "speedup": before / after if after else float("inf"),
            })
    headline = next(
        (
            r["speedup"]
            for r in rows
            if r["suite"] == "deep" and r["metric"] == "train_epoch_s"
        ),
        None,
    )
    return {
        "old": {"name": old.get("name"), "variant": old.get("variant")},
        "new": {"name": new.get("name"), "variant": new.get("variant")},
        "rows": rows,
        "deep_train_speedup": headline,
        "missing_suites": {
            "old_only": sorted(set(old_suites) - set(new_suites)),
            "new_only": sorted(set(new_suites) - set(old_suites)),
        },
    }


def max_rss_regression(diff: Dict[str, object]) -> Optional[Dict[str, object]]:
    """Worst peak-RSS growth ratio (new/old) across compared suites.

    Fuel for the ``--max-rss-regression`` CI gate: returns ``{"suite",
    "ratio", "old", "new"}`` for the suite whose ``peak_rss_delta_kb``
    grew the most, or ``None`` when no compared suite carries the metric.
    Old values are floored at 1024 KB so a near-zero baseline delta (a
    suite that fit in pre-warmed memory) cannot turn jitter into a
    thousand-fold "regression".
    """
    worst: Optional[Dict[str, object]] = None
    for r in diff["rows"]:
        if r["metric"] != "peak_rss_delta_kb":
            continue
        old = max(float(r["old"]), 1024.0)
        ratio = float(r["new"]) / old
        if worst is None or ratio > float(worst["ratio"]):
            worst = {
                "suite": r["suite"], "ratio": ratio,
                "old": r["old"], "new": r["new"],
            }
    return worst


def render_compare(diff: Dict[str, object]) -> str:
    lines = [
        f"bench compare: {diff['old']['name']} ({diff['old']['variant']}) "
        f"-> {diff['new']['name']} ({diff['new']['variant']})",
        f"{'suite':18s} {'metric':22s} {'old':>12s} {'new':>12s} {'speedup':>8s}",
    ]
    for r in diff["rows"]:
        lines.append(
            f"{r['suite']:18s} {r['metric']:22s} {r['old']:12.6f} "
            f"{r['new']:12.6f} {r['speedup']:7.2f}x"
        )
    missing = diff.get("missing_suites") or {}
    for key, label in (
        ("old_only", "only in old, not compared"),
        ("new_only", "only in new, not compared"),
    ):
        if missing.get(key):
            lines.append(
                f"missing suites ({label}): {', '.join(missing[key])}"
            )
    if diff.get("deep_train_speedup") is not None:
        lines.append(
            f"deep-circuit training speedup: {diff['deep_train_speedup']:.2f}x"
        )
    return "\n".join(lines)
