"""Circuit-to-graph data pipeline: features, batching, datasets."""

from .batching import LevelGroup, LevelSchedule, merge
from .dataset import CircuitDataset, PreparedBatch, prepare
from .positional import positional_encoding
from .features import (
    AIG_TYPE_NAMES,
    NETLIST_TYPE_NAMES,
    CircuitGraph,
    from_aig,
    from_netlist,
)

__all__ = [
    "positional_encoding",
    "LevelGroup",
    "LevelSchedule",
    "merge",
    "CircuitDataset",
    "PreparedBatch",
    "prepare",
    "AIG_TYPE_NAMES",
    "NETLIST_TYPE_NAMES",
    "CircuitGraph",
    "from_aig",
    "from_netlist",
]
