"""Circuit-to-graph data pipeline: features, batching, datasets."""

from .batching import (
    CompiledSchedule,
    LevelGroup,
    LevelSchedule,
    merge,
    merge_schedules,
)
from .dataset import (
    CircuitDataset,
    MergedPreparedBatch,
    PreparedBatch,
    ShardedCircuitDataset,
    merge_prepared,
    prepare,
)
from .loader import DataLoader, as_loader, epoch_seed
from .positional import positional_encoding
from .shards import read_shard, write_shard
from .features import (
    AIG_TYPE_NAMES,
    NETLIST_TYPE_NAMES,
    CircuitGraph,
    from_aig,
    from_netlist,
    inference_graph,
)

__all__ = [
    "DataLoader",
    "as_loader",
    "epoch_seed",
    "positional_encoding",
    "CompiledSchedule",
    "LevelGroup",
    "LevelSchedule",
    "merge",
    "merge_schedules",
    "CircuitDataset",
    "MergedPreparedBatch",
    "PreparedBatch",
    "ShardedCircuitDataset",
    "merge_prepared",
    "prepare",
    "read_shard",
    "write_shard",
    "AIG_TYPE_NAMES",
    "NETLIST_TYPE_NAMES",
    "CircuitGraph",
    "from_aig",
    "from_netlist",
    "inference_graph",
]
