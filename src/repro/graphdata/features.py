"""Circuit graphs as learning examples.

:class:`CircuitGraph` is the model-facing view of a circuit: typed nodes,
directed edges, per-node logic levels, per-node probability labels and the
reconvergence skip edges.  Two constructors cover the paper's two regimes:

* :func:`from_aig` — the standard flow: unified AIG (3 node types), the
  setting of Tables I-III;
* :func:`from_netlist` — the "w/o transformation" ablation of Table IV:
  original gate types (7-way one-hot), no AIG lowering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..aig.graph import AIG, NODE_TYPE_NAMES
from ..aig.netlist import GateType, Netlist
from ..sim.analysis import find_reconvergences
from ..sim.bitparallel import popcount, random_patterns
from ..sim.probability import gate_graph_probabilities

__all__ = [
    "CircuitGraph",
    "AIG_TYPE_NAMES",
    "NETLIST_TYPE_NAMES",
    "from_aig",
    "from_netlist",
    "inference_graph",
]

#: node vocabulary for AIG-form circuits (the paper's 3-d one-hot)
AIG_TYPE_NAMES: Tuple[str, ...] = NODE_TYPE_NAMES  # ("PI", "AND", "NOT")

#: node vocabulary for original netlists (the paper's 7-d one-hot:
#: inputs plus the six library gate types kept after elaboration)
NETLIST_TYPE_NAMES: Tuple[str, ...] = (
    "INPUT",
    "AND",
    "NAND",
    "OR",
    "NOR",
    "XOR",
    "NOT",
)

_NETLIST_TYPE_INDEX: Dict[str, int] = {t: i for i, t in enumerate(NETLIST_TYPE_NAMES)}
#: gate types folded into vocabulary entries during netlist featurisation
_NETLIST_FOLD = {GateType.XNOR: "XOR", GateType.BUF: "NOT"}


@dataclass
class CircuitGraph:
    """A featurised circuit ready for GNN consumption."""

    node_type: np.ndarray  # (N,) int64 indices into type_names
    type_names: Tuple[str, ...]
    edges: np.ndarray  # (E, 2) int64 (src, dst), topologically ordered
    levels: np.ndarray  # (N,) int64
    labels: np.ndarray  # (N,) float32 signal probabilities
    skip_edges: np.ndarray  # (S, 2) int64 (stem, reconv node)
    skip_level_diff: np.ndarray  # (S,) int64
    name: str = "circuit"

    @property
    def num_nodes(self) -> int:
        return int(self.node_type.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def num_types(self) -> int:
        return len(self.type_names)

    @property
    def depth(self) -> int:
        return int(self.levels.max()) if self.num_nodes else 0

    def one_hot(self) -> np.ndarray:
        """(N, num_types) float32 one-hot gate-type features ``x_v``."""
        out = np.zeros((self.num_nodes, self.num_types), dtype=np.float32)
        out[np.arange(self.num_nodes), self.node_type] = 1.0
        return out

    def validate(self) -> None:
        assert (self.edges[:, 0] < self.edges[:, 1]).all(), "edges not topological"
        assert self.labels.shape == (self.num_nodes,)
        assert (self.labels >= 0).all() and (self.labels <= 1).all()
        assert self.node_type.max(initial=0) < self.num_types
        if len(self.skip_edges):
            assert (self.skip_edges[:, 0] < self.skip_edges[:, 1]).all()


def from_aig(
    aig: AIG,
    num_patterns: int = 100_000,
    seed: Optional[int] = None,
    with_skip_edges: bool = True,
    exact_below_pis: int = 0,
) -> CircuitGraph:
    """Featurise an AIG: expand to a gate graph, label, detect skip edges."""
    graph = aig.to_gate_graph()
    labels = gate_graph_probabilities(
        graph, num_patterns=num_patterns, seed=seed, exact_below_pis=exact_below_pis
    )
    if with_skip_edges:
        skips = find_reconvergences(graph, mode="nearest")
    else:
        skips = []
    skip_edges = np.asarray(
        [(e.source, e.target) for e in skips], dtype=np.int64
    ).reshape(-1, 2)
    skip_diff = np.asarray([e.level_diff for e in skips], dtype=np.int64)
    return CircuitGraph(
        node_type=graph.node_type.astype(np.int64),
        type_names=AIG_TYPE_NAMES,
        edges=graph.edges,
        levels=graph.levels(),
        labels=labels.astype(np.float32),
        skip_edges=skip_edges,
        skip_level_diff=skip_diff,
        name=aig.name,
    )


def inference_graph(aig: AIG, with_skip_edges: bool = True) -> CircuitGraph:
    """Featurise an AIG for prediction only: no label simulation.

    Structure, levels and skip edges are computed exactly as in
    :func:`from_aig`, but the (expensive, Monte-Carlo) probability labels
    are skipped and zero-filled — a query circuit has no ground truth.
    ``repro serve`` builds its cached entries through this.
    """
    graph = aig.to_gate_graph()
    if with_skip_edges:
        skips = find_reconvergences(graph, mode="nearest")
    else:
        skips = []
    skip_edges = np.asarray(
        [(e.source, e.target) for e in skips], dtype=np.int64
    ).reshape(-1, 2)
    skip_diff = np.asarray([e.level_diff for e in skips], dtype=np.int64)
    return CircuitGraph(
        node_type=graph.node_type.astype(np.int64),
        type_names=AIG_TYPE_NAMES,
        edges=graph.edges,
        levels=graph.levels(),
        labels=np.zeros(graph.num_nodes, dtype=np.float32),
        skip_edges=skip_edges,
        skip_level_diff=skip_diff,
        name=aig.name,
    )


def from_netlist(
    netlist: Netlist,
    num_patterns: int = 100_000,
    seed: Optional[int] = None,
) -> CircuitGraph:
    """Featurise an original (non-AIG) netlist for the Table IV ablation.

    XNOR folds into XOR's slot and BUF into NOT's, mirroring the paper's
    6-gate-type + input vocabulary.  Constants are rejected (the ablation
    datasets never contain them).  No skip edges are computed: the paper's
    skip connections are defined on AIG reconvergence only.
    """
    netlist.validate()
    order = netlist.topological_order()
    index = {name: k for k, name in enumerate(order)}
    node_type = np.empty(len(order), dtype=np.int64)
    edge_list: List[Tuple[int, int]] = []
    for name in order:
        gate = netlist.gate(name)
        t = gate.gate_type
        t = _NETLIST_FOLD.get(t, t)
        if t == GateType.INPUT:
            t = "INPUT"
        if t not in _NETLIST_TYPE_INDEX:
            raise ValueError(
                f"gate type {gate.gate_type!r} not supported in netlist "
                "featurisation (synthesise to AIG instead)"
            )
        node_type[index[name]] = _NETLIST_TYPE_INDEX[t]
        for f in gate.fanins:
            edge_list.append((index[f], index[name]))

    num_patterns = max(64, ((num_patterns + 63) // 64) * 64)
    rng = np.random.default_rng(seed)
    pats = random_patterns(len(netlist.inputs), num_patterns, rng)
    values = netlist.evaluate(
        {name: pats[k] for k, name in enumerate(netlist.inputs)}
    )
    stacked = np.stack([values[name] for name in order])
    labels = popcount(stacked) / float(num_patterns)

    levels_by_name = netlist.levels()
    levels = np.array([levels_by_name[name] for name in order], dtype=np.int64)
    return CircuitGraph(
        node_type=node_type,
        type_names=NETLIST_TYPE_NAMES,
        edges=np.asarray(edge_list, dtype=np.int64).reshape(-1, 2),
        levels=levels,
        labels=labels.astype(np.float32),
        skip_edges=np.zeros((0, 2), dtype=np.int64),
        skip_level_diff=np.zeros(0, dtype=np.int64),
        name=netlist.name,
    )
