"""Datasets of featurised circuits and prepared training batches.

Two dataset flavours share one mental model:

* :class:`CircuitDataset` — everything in memory; fine up to a few hundred
  circuits (the ``smoke``/``default`` experiment scales);
* :class:`ShardedCircuitDataset` — a lazy view over a directory of shards
  written by :mod:`repro.datagen.pipeline`; shards are loaded on demand
  through a small LRU cache, so paper-scale datasets stream through a
  bounded memory footprint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .batching import (
    CompiledSchedule,
    LevelSchedule,
    WindowedSchedule,
    merge,
    merge_schedules,
)
from .features import CircuitGraph
from .shards import iter_shard, load_manifest, read_shard

__all__ = [
    "PreparedBatch",
    "MergedPreparedBatch",
    "CircuitDataset",
    "ShardedCircuitDataset",
    "prepare",
    "merge_prepared",
]


class PreparedBatch:
    """A merged mini-batch with cached level schedules and features.

    Schedules depend only on graph structure, so they are computed once and
    reused across every epoch and every model that sees the batch.
    """

    def __init__(self, graph: CircuitGraph):
        self.graph = graph
        self.x = graph.one_hot()
        self.labels = graph.labels
        self._forward: Dict[Tuple[bool, int], LevelSchedule] = {}
        self._reverse: Optional[LevelSchedule] = None
        self._undirected: Optional[LevelSchedule] = None
        self._compiled: Dict[Tuple[str, bool, int], CompiledSchedule] = {}
        self._windowed: Dict[
            Tuple[str, bool, int, int], WindowedSchedule
        ] = {}

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def forward_schedule(
        self, include_skip: bool = False, pe_levels: int = 8
    ) -> LevelSchedule:
        key = (include_skip, pe_levels)
        if key not in self._forward:
            self._forward[key] = LevelSchedule.forward(
                self.graph, include_skip=include_skip, pe_levels=pe_levels
            )
        return self._forward[key]

    def reverse_schedule(self) -> LevelSchedule:
        if self._reverse is None:
            self._reverse = LevelSchedule.reverse(self.graph)
        return self._reverse

    def undirected_schedule(self) -> LevelSchedule:
        if self._undirected is None:
            self._undirected = LevelSchedule.undirected(self.graph)
        return self._undirected

    # -- compiled fast-path schedules ----------------------------------
    def compiled_forward_schedule(
        self, include_skip: bool = False, pe_levels: int = 8
    ) -> CompiledSchedule:
        """Forward schedule compiled for the fast path (cached).

        With ``include_skip``, skip edges and their positional-encoding
        attribute blocks are folded into each group once, instead of being
        re-concatenated on every propagation iteration.
        """
        key = ("forward", include_skip, pe_levels)
        if key not in self._compiled:
            attr_dim = 2 * pe_levels + 1 if include_skip else None
            self._compiled[key] = CompiledSchedule.compile(
                self.forward_schedule(include_skip, pe_levels),
                self.x,
                edge_attr_dim=attr_dim,
            )
        return self._compiled[key]

    def compiled_reverse_schedule(self) -> CompiledSchedule:
        key = ("reverse", False, 0)
        if key not in self._compiled:
            self._compiled[key] = CompiledSchedule.compile(
                self.reverse_schedule(), self.x
            )
        return self._compiled[key]

    def compiled_undirected_schedule(self) -> CompiledSchedule:
        key = ("undirected", False, 0)
        if key not in self._compiled:
            self._compiled[key] = CompiledSchedule.compile(
                self.undirected_schedule(), self.x
            )
        return self._compiled[key]

    # -- windowed (streaming) schedules --------------------------------
    def windowed_forward_schedule(
        self,
        node_budget: int,
        include_skip: bool = False,
        pe_levels: int = 8,
    ) -> WindowedSchedule:
        """Forward schedule partitioned into bounded windows (cached per
        budget) — the streaming propagation plan of
        :func:`repro.models.propagation.run_pass`."""
        key = ("forward", include_skip, pe_levels, int(node_budget))
        if key not in self._windowed:
            attr_dim = 2 * pe_levels + 1 if include_skip else None
            self._windowed[key] = WindowedSchedule.build(
                self.forward_schedule(include_skip, pe_levels),
                self.x,
                node_budget,
                edge_attr_dim=attr_dim,
            )
        return self._windowed[key]

    def windowed_reverse_schedule(self, node_budget: int) -> WindowedSchedule:
        key = ("reverse", False, 0, int(node_budget))
        if key not in self._windowed:
            self._windowed[key] = WindowedSchedule.build(
                self.reverse_schedule(), self.x, node_budget
            )
        return self._windowed[key]


def prepare(graphs: Sequence[CircuitGraph]) -> PreparedBatch:
    """Merge graphs and wrap them as a :class:`PreparedBatch`."""
    graphs = list(graphs)
    merged = graphs[0] if len(graphs) == 1 else merge(graphs)
    return PreparedBatch(merged)


class MergedPreparedBatch(PreparedBatch):
    """A batch built from already-prepared single circuits.

    Instead of recomputing level schedules on the merged graph, the
    singles' cached forward/reverse schedules are concatenated per level
    with node offsets (:func:`repro.graphdata.batching.merge_schedules`)
    — the serving batcher's way of fusing cached circuits into one pass
    without paying schedule construction again.  ``offsets`` records
    each circuit's node range so per-circuit predictions can be sliced
    back out of the fused result.
    """

    def __init__(self, singles: Sequence[PreparedBatch]):
        singles = list(singles)
        if not singles:
            raise ValueError("cannot merge an empty list of batches")
        super().__init__(merge([b.graph for b in singles]))
        self._singles = singles
        self.offsets = np.cumsum([0] + [b.num_nodes for b in singles])

    def forward_schedule(
        self, include_skip: bool = False, pe_levels: int = 8
    ) -> LevelSchedule:
        key = (include_skip, pe_levels)
        if key not in self._forward:
            self._forward[key] = merge_schedules(
                [b.forward_schedule(include_skip, pe_levels) for b in self._singles],
                [b.graph for b in self._singles],
            )
        return self._forward[key]

    def reverse_schedule(self) -> LevelSchedule:
        if self._reverse is None:
            self._reverse = merge_schedules(
                [b.reverse_schedule() for b in self._singles],
                [b.graph for b in self._singles],
                descending=True,
            )
        return self._reverse


def merge_prepared(batches: Sequence[PreparedBatch]) -> PreparedBatch:
    """Fuse prepared batches, reusing their cached schedules when merging."""
    batches = list(batches)
    if len(batches) == 1:
        return batches[0]
    return MergedPreparedBatch(batches)


class CircuitDataset:
    """An in-memory collection of circuit graphs with train/test splitting."""

    def __init__(self, graphs: Sequence[CircuitGraph], name: str = "dataset"):
        self.graphs = list(graphs)
        self.name = name

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, index: int) -> CircuitGraph:
        return self.graphs[index]

    def __iter__(self):
        return iter(self.graphs)

    def split(
        self, train_fraction: float = 0.9, seed: int = 0
    ) -> Tuple["CircuitDataset", "CircuitDataset"]:
        """Shuffled train/test split (the paper uses 90/10)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.graphs))
        cut = max(1, int(round(train_fraction * len(self.graphs))))
        cut = min(cut, len(self.graphs) - 1) if len(self.graphs) > 1 else cut
        train = [self.graphs[i] for i in order[:cut]]
        test = [self.graphs[i] for i in order[cut:]]
        return (
            CircuitDataset(train, f"{self.name}/train"),
            CircuitDataset(test, f"{self.name}/test"),
        )

    def batches(
        self, batch_size: int, seed: Optional[int] = None
    ) -> Iterator[PreparedBatch]:
        """Yield merged mini-batches, optionally shuffled."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = np.arange(len(self.graphs))
        if seed is not None:
            np.random.default_rng(seed).shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = [self.graphs[i] for i in order[start : start + batch_size]]
            yield prepare(chunk)

    def prepared_batches(
        self, batch_size: int, seed: int = 0
    ) -> List[PreparedBatch]:
        """Materialise all batches once (schedule reuse across epochs)."""
        return list(self.batches(batch_size, seed=seed))

    # -- statistics (Table I) ------------------------------------------
    def node_count_range(self) -> Tuple[int, int]:
        counts = [g.num_nodes for g in self.graphs]
        return (min(counts), max(counts)) if counts else (0, 0)

    def level_range(self) -> Tuple[int, int]:
        depths = [g.depth for g in self.graphs]
        return (min(depths), max(depths)) if depths else (0, 0)

    def summary(self) -> Dict[str, object]:
        lo_n, hi_n = self.node_count_range()
        lo_l, hi_l = self.level_range()
        return {
            "name": self.name,
            "circuits": len(self.graphs),
            "nodes": (lo_n, hi_n),
            "levels": (lo_l, hi_l),
        }


class ShardedCircuitDataset:
    """A lazy dataset over a pipeline-built directory of ``.npz`` shards.

    Random access (``ds[i]``) and streaming iteration both go through an
    LRU cache of ``cache_shards`` decoded shards, so sequential scans load
    each shard exactly once and memory stays bounded by the cache size
    rather than the dataset size.
    """

    def __init__(
        self, root: Union[str, Path], cache_shards: int = 2
    ):
        self.root = Path(root)
        manifest = load_manifest(self.root)
        if manifest is None:
            raise FileNotFoundError(
                f"no dataset manifest in {self.root}; run "
                f"'python -m repro dataset build' first"
            )
        if cache_shards < 1:
            raise ValueError("cache_shards must be >= 1")
        self.manifest = manifest
        self.name = f"sharded[{self.root.name}]"
        self._shards: List[Dict[str, object]] = list(manifest["shards"])
        # global index -> (shard number, index within shard)
        self._index: List[Tuple[int, int]] = [
            (s, k)
            for s, shard in enumerate(self._shards)
            for k in range(int(shard["num_circuits"]))
        ]
        self._cache_shards = cache_shards
        self._cache: "OrderedDict[int, List[CircuitGraph]]" = OrderedDict()
        # the DataLoader's prefetch thread and the consumer may both reach
        # the LRU; serialise mutations so eviction can't race a lookup
        self._cache_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._index)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def _load_shard(self, shard_number: int) -> List[CircuitGraph]:
        with self._cache_lock:
            if shard_number in self._cache:
                self._cache.move_to_end(shard_number)
                return self._cache[shard_number]
        path = self.root / str(self._shards[shard_number]["filename"])
        graphs = read_shard(path)
        with self._cache_lock:
            self._cache[shard_number] = graphs
            while len(self._cache) > self._cache_shards:
                self._cache.popitem(last=False)
        return graphs

    def __getitem__(self, index: int) -> CircuitGraph:
        shard_number, local = self._index[index]
        return self._load_shard(shard_number)[local]

    def __iter__(self) -> Iterator[CircuitGraph]:
        """Stream graphs one at a time.

        Cached shards are served from the LRU; un-cached shards stream
        through :func:`repro.graphdata.shards.iter_shard` *without*
        materialising the whole shard, so a sequential scan's memory is
        bounded by one graph (plus whatever the cache already holds),
        not by shard size.
        """
        for shard_number in range(len(self._shards)):
            with self._cache_lock:
                cached = self._cache.get(shard_number)
                if cached is not None:
                    self._cache.move_to_end(shard_number)
            if cached is not None:
                yield from cached
            else:
                path = self.root / str(self._shards[shard_number]["filename"])
                yield from iter_shard(path)

    def batches(
        self, batch_size: int, seed: Optional[int] = None
    ) -> Iterator[PreparedBatch]:
        """Stream merged mini-batches.

        Shuffling is *shard-local*: the shard order and the order within
        each shard are permuted, but consecutive indices stay on the same
        shard, so an epoch decodes every shard exactly once instead of
        thrashing the LRU cache with a global permutation.  The
        unshuffled path streams lazily per graph and never decodes a
        whole shard at once.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if seed is None:
            chunk: List[CircuitGraph] = []
            for graph in self:
                chunk.append(graph)
                if len(chunk) == batch_size:
                    yield prepare(chunk)
                    chunk = []
            if chunk:
                yield prepare(chunk)
            return
        rng = np.random.default_rng(seed)
        counts = [int(s["num_circuits"]) for s in self._shards]
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        parts = [
            starts[s] + rng.permutation(counts[s])
            for s in rng.permutation(len(self._shards))
        ]
        order = np.concatenate(parts) if parts else np.arange(0)
        for start in range(0, len(order), batch_size):
            chunk = [self[int(i)] for i in order[start : start + batch_size]]
            yield prepare(chunk)

    def suite_names(self) -> List[str]:
        seen: List[str] = []
        for shard in self._shards:
            if shard["suite"] not in seen:
                seen.append(str(shard["suite"]))
        return seen

    def suite(self, name: str) -> CircuitDataset:
        """Materialise one suite's circuits as an in-memory dataset."""
        graphs: List[CircuitGraph] = []
        for shard_number, shard in enumerate(self._shards):
            if shard["suite"] == name:
                graphs.extend(self._load_shard(shard_number))
        if not graphs:
            raise KeyError(f"suite {name!r} not in {self.suite_names()}")
        return CircuitDataset(graphs, name=name)

    def by_suite(self) -> Dict[str, CircuitDataset]:
        return {name: self.suite(name) for name in self.suite_names()}

    def materialize(self) -> CircuitDataset:
        """Load everything into a plain :class:`CircuitDataset`."""
        return CircuitDataset(list(self), name=self.name)

    def summary(self) -> Dict[str, object]:
        counts = [int(s["num_circuits"]) for s in self._shards]
        return {
            "name": self.name,
            "circuits": sum(counts),
            "shards": len(self._shards),
            "suites": self.suite_names(),
        }

    def suite_summaries(self) -> Dict[str, Dict[str, object]]:
        """Per-suite circuit count and node/level ranges, computed by
        streaming one shard at a time (never holds a whole suite in
        memory — ``dataset info`` uses this)."""
        out: Dict[str, Dict[str, object]] = {}
        for shard_number, shard in enumerate(self._shards):
            suite = str(shard["suite"])
            stats = out.setdefault(
                suite, {"circuits": 0, "nodes": None, "levels": None}
            )
            for g in self._load_shard(shard_number):
                stats["circuits"] = int(stats["circuits"]) + 1
                for field, value in (("nodes", g.num_nodes), ("levels", g.depth)):
                    lo, hi = stats[field] or (value, value)
                    stats[field] = (min(lo, value), max(hi, value))
        return out
