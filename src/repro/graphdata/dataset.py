"""Datasets of featurised circuits and prepared training batches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .batching import LevelSchedule, merge
from .features import CircuitGraph

__all__ = ["PreparedBatch", "CircuitDataset", "prepare"]


class PreparedBatch:
    """A merged mini-batch with cached level schedules and features.

    Schedules depend only on graph structure, so they are computed once and
    reused across every epoch and every model that sees the batch.
    """

    def __init__(self, graph: CircuitGraph):
        self.graph = graph
        self.x = graph.one_hot()
        self.labels = graph.labels
        self._forward: Dict[Tuple[bool, int], LevelSchedule] = {}
        self._reverse: Optional[LevelSchedule] = None
        self._undirected: Optional[LevelSchedule] = None

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def forward_schedule(
        self, include_skip: bool = False, pe_levels: int = 8
    ) -> LevelSchedule:
        key = (include_skip, pe_levels)
        if key not in self._forward:
            self._forward[key] = LevelSchedule.forward(
                self.graph, include_skip=include_skip, pe_levels=pe_levels
            )
        return self._forward[key]

    def reverse_schedule(self) -> LevelSchedule:
        if self._reverse is None:
            self._reverse = LevelSchedule.reverse(self.graph)
        return self._reverse

    def undirected_schedule(self) -> LevelSchedule:
        if self._undirected is None:
            self._undirected = LevelSchedule.undirected(self.graph)
        return self._undirected


def prepare(graphs: Sequence[CircuitGraph]) -> PreparedBatch:
    """Merge graphs and wrap them as a :class:`PreparedBatch`."""
    graphs = list(graphs)
    merged = graphs[0] if len(graphs) == 1 else merge(graphs)
    return PreparedBatch(merged)


class CircuitDataset:
    """An in-memory collection of circuit graphs with train/test splitting."""

    def __init__(self, graphs: Sequence[CircuitGraph], name: str = "dataset"):
        self.graphs = list(graphs)
        self.name = name

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, index: int) -> CircuitGraph:
        return self.graphs[index]

    def __iter__(self):
        return iter(self.graphs)

    def split(
        self, train_fraction: float = 0.9, seed: int = 0
    ) -> Tuple["CircuitDataset", "CircuitDataset"]:
        """Shuffled train/test split (the paper uses 90/10)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.graphs))
        cut = max(1, int(round(train_fraction * len(self.graphs))))
        cut = min(cut, len(self.graphs) - 1) if len(self.graphs) > 1 else cut
        train = [self.graphs[i] for i in order[:cut]]
        test = [self.graphs[i] for i in order[cut:]]
        return (
            CircuitDataset(train, f"{self.name}/train"),
            CircuitDataset(test, f"{self.name}/test"),
        )

    def batches(
        self, batch_size: int, seed: Optional[int] = None
    ) -> Iterator[PreparedBatch]:
        """Yield merged mini-batches, optionally shuffled."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = np.arange(len(self.graphs))
        if seed is not None:
            np.random.default_rng(seed).shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = [self.graphs[i] for i in order[start : start + batch_size]]
            yield prepare(chunk)

    def prepared_batches(
        self, batch_size: int, seed: int = 0
    ) -> List[PreparedBatch]:
        """Materialise all batches once (schedule reuse across epochs)."""
        return list(self.batches(batch_size, seed=seed))

    # -- statistics (Table I) ------------------------------------------
    def node_count_range(self) -> Tuple[int, int]:
        counts = [g.num_nodes for g in self.graphs]
        return (min(counts), max(counts)) if counts else (0, 0)

    def level_range(self) -> Tuple[int, int]:
        depths = [g.depth for g in self.graphs]
        return (min(depths), max(depths)) if depths else (0, 0)

    def summary(self) -> Dict[str, object]:
        lo_n, hi_n = self.node_count_range()
        lo_l, hi_l = self.level_range()
        return {
            "name": self.name,
            "circuits": len(self.graphs),
            "nodes": (lo_n, hi_n),
            "levels": (lo_l, hi_l),
        }
