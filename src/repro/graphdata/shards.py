"""On-disk shard format for featurised circuit graphs.

A *shard* is a handful of :class:`~repro.graphdata.features.CircuitGraph`
examples stored in one ``.npz`` file.  Shards are the unit of parallelism
(one worker builds one shard) and the unit of streaming (the sharded
dataset loads one shard at a time), so two properties matter:

* **byte-determinism** — the same graphs must always serialise to the same
  bytes, so that cache validation and the ``--workers N`` ==
  ``--workers 1`` guarantee can compare files directly.  ``np.savez``
  embeds wall-clock zip timestamps, so shards are written through
  :func:`write_npz_deterministic`, which pins every zip entry to the epoch
  and stores entries uncompressed in sorted key order.  The result is
  still a perfectly ordinary ``.npz`` readable by ``np.load``.
* **self-description** — a shard can be read back into full
  :class:`CircuitGraph` objects (names, type vocabularies and all) without
  consulting the manifest.

Layout inside the archive: a scalar ``num_graphs`` plus, per graph ``i``,
the keys ``g{i}/node_type``, ``g{i}/edges``, ``g{i}/levels``,
``g{i}/labels``, ``g{i}/skip_edges``, ``g{i}/skip_level_diff``,
``g{i}/name`` and ``g{i}/type_names``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from pathlib import Path
from typing import Dict, List, Union

import numpy as np
from numpy.lib import format as _npformat

from .features import CircuitGraph

__all__ = [
    "SHARD_FORMAT_VERSION",
    "MANIFEST_NAME",
    "MANIFEST_FORMAT_VERSION",
    "write_npz_deterministic",
    "write_shard",
    "read_shard",
    "iter_shard",
    "load_manifest",
    "file_sha256",
]

SHARD_FORMAT_VERSION = 1

#: the index file a dataset directory is identified by
MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT_VERSION = 1

#: per-graph array fields serialised verbatim
_ARRAY_FIELDS = (
    "node_type",
    "edges",
    "levels",
    "labels",
    "skip_edges",
    "skip_level_diff",
)

# fixed zip timestamp (DOS epoch): keeps shard bytes independent of when
# they were written
_EPOCH = (1980, 1, 1, 0, 0, 0)


def write_npz_deterministic(
    path: Union[str, Path], arrays: Dict[str, np.ndarray]
) -> None:
    """Write an ``.npz`` whose bytes depend only on ``arrays``.

    Entries are stored uncompressed, in sorted key order, with a pinned
    timestamp — the three places ``np.savez`` is non-reproducible.  The
    file is written to a writer-unique temp name and renamed into place,
    so readers never observe a half-written archive and two racing
    writers never interleave into one temp file.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with zipfile.ZipFile(tmp, "w", zipfile.ZIP_STORED, allowZip64=True) as zf:
        for key in sorted(arrays):
            buf = io.BytesIO()
            _npformat.write_array(
                buf, np.asarray(arrays[key]), allow_pickle=False
            )
            info = zipfile.ZipInfo(key + ".npy", date_time=_EPOCH)
            info.compress_type = zipfile.ZIP_STORED
            info.external_attr = 0o644 << 16
            zf.writestr(info, buf.getvalue())
    os.replace(tmp, path)


def write_shard(path: Union[str, Path], graphs: List[CircuitGraph]) -> str:
    """Serialise ``graphs`` to ``path``; returns the file's sha256 hex."""
    arrays: Dict[str, np.ndarray] = {
        "format_version": np.int64(SHARD_FORMAT_VERSION),
        "num_graphs": np.int64(len(graphs)),
    }
    for i, g in enumerate(graphs):
        prefix = f"g{i}/"
        for field in _ARRAY_FIELDS:
            arrays[prefix + field] = getattr(g, field)
        arrays[prefix + "name"] = np.asarray(g.name)
        arrays[prefix + "type_names"] = np.asarray(g.type_names)
    write_npz_deterministic(path, arrays)
    return file_sha256(path)


def iter_shard(path: Union[str, Path]):
    """Yield a shard's graphs one at a time without materialising all.

    ``np.load`` on an ``.npz`` is lazy per key, so each graph's arrays
    are decoded only when its turn comes and nothing pins the previous
    graphs — a scan's memory is bounded by one graph, not the shard.
    The archive stays open until the generator is exhausted or closed.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != SHARD_FORMAT_VERSION:
            raise ValueError(
                f"shard {path} has format version {version}, "
                f"expected {SHARD_FORMAT_VERSION}"
            )
        for i in range(int(data["num_graphs"])):
            prefix = f"g{i}/"
            fields = {f: data[prefix + f] for f in _ARRAY_FIELDS}
            yield CircuitGraph(
                **fields,
                name=str(data[prefix + "name"]),
                type_names=tuple(data[prefix + "type_names"].tolist()),
            )


def read_shard(path: Union[str, Path]) -> List[CircuitGraph]:
    """Load a shard back into a list of :class:`CircuitGraph`."""
    return list(iter_shard(path))


def load_manifest(out_dir: Union[str, Path]):
    """Read ``manifest.json`` from a dataset directory.

    Returns the manifest dict, or ``None`` when the file is missing,
    unparsable or of an unknown format version — callers treat all three
    as "no usable build here".
    """
    path = Path(out_dir) / MANIFEST_NAME
    if not path.is_file():
        return None
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if manifest.get("format_version") != MANIFEST_FORMAT_VERSION:
        return None
    return manifest


def file_sha256(path: Union[str, Path]) -> str:
    """Sha256 hex digest of a file's bytes (shard integrity checks)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()
