"""Sinusoidal positional encoding of logic-level differences (paper Eq. 7).

gamma(D) = (sin(2^0 pi D), cos(2^0 pi D), ..., sin(2^{L-1} pi D),
cos(2^{L-1} pi D)) maps the distance between a fanout stem and its
reconvergence node into R^{2L}, letting the attention score discount distant
stems.  The paper uses L = 8.
"""

from __future__ import annotations

import numpy as np

__all__ = ["positional_encoding"]


def positional_encoding(level_diff: np.ndarray, num_levels: int = 8) -> np.ndarray:
    """Encode integer distances as a ``(len(level_diff), 2 * num_levels)`` array.

    Frequencies follow Eq. (7) with the angle scaled by ``pi * D / D_norm``
    where ``D_norm`` keeps one full period across typical circuit depths —
    raw ``pi * D`` with integer ``D`` would collapse every sin term to ~0
    and every cos to ±1, destroying the distance information the encoding
    exists to provide.
    """
    d = np.asarray(level_diff, dtype=np.float64).reshape(-1)
    if num_levels < 1:
        raise ValueError("num_levels must be >= 1")
    d_norm = 64.0  # deeper than any training circuit level difference
    out = np.empty((d.shape[0], 2 * num_levels), dtype=np.float32)
    for k in range(num_levels):
        angle = (2.0**k) * np.pi * d / d_norm
        out[:, 2 * k] = np.sin(angle)
        out[:, 2 * k + 1] = np.cos(angle)
    return out
