"""Streaming batch loader: per-epoch reshuffling + background prefetch.

The :class:`DataLoader` is the one abstraction the trainer sees.  It wraps
either dataset flavour (:class:`~repro.graphdata.dataset.CircuitDataset`
in memory, :class:`~repro.graphdata.dataset.ShardedCircuitDataset`
streaming from disk) and yields :class:`PreparedBatch` objects one at a
time, so training never materialises a whole epoch:

* **per-epoch reshuffling** — every epoch draws a fresh batch order from
  ``SeedSequence([seed, epoch])``; deterministic given ``(seed, epoch)``
  and independent of how many epochs ran before, which is what makes
  resume-from-checkpoint bitwise-reproducible;
* **background prefetch** — a daemon thread decodes/merges the next
  batches (and therefore pulls the next shard off disk) while the model
  trains on the current one, hiding shard-decode latency.

Shuffling delegates to ``dataset.batches``: global permutation for the
in-memory dataset, shard-local permutation for the sharded one (so an
epoch still decodes every shard exactly once).
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator, List, Optional, Union

import numpy as np

from .dataset import CircuitDataset, PreparedBatch, ShardedCircuitDataset

__all__ = ["DataLoader", "epoch_seed", "as_loader"]

AnyCircuitDataset = Union[CircuitDataset, ShardedCircuitDataset]


def epoch_seed(seed: int, epoch: int) -> int:
    """Deterministic shuffle seed for one epoch of one run.

    Derived through :class:`numpy.random.SeedSequence` so consecutive
    epochs get statistically independent orders (``seed + epoch`` would
    make epoch ``e`` of run ``s`` collide with epoch ``e-1`` of ``s+1``).
    """
    return int(np.random.SeedSequence([seed, epoch]).generate_state(1)[0])


_SENTINEL = object()


def _prefetch_worker(
    source: Iterator[PreparedBatch],
    out: "queue.Queue[object]",
    stop: threading.Event,
) -> None:
    """Producer loop: module-level (not a bound method) so the worker
    thread holds no reference to its iterator — an abandoned iterator can
    be garbage-collected, whose finalizer then stops this thread."""
    try:
        for item in source:
            while not stop.is_set():
                try:
                    out.put(item, timeout=0.1)
                    break
                except queue.Full:
                    continue
            if stop.is_set():
                return
        item = _SENTINEL
    except BaseException as exc:  # propagate into the consumer
        item = exc
    while not stop.is_set():
        try:
            out.put(item, timeout=0.1)
            return
        except queue.Full:
            continue


class _PrefetchIterator:
    """Pull items from ``source`` on a daemon thread, ``depth`` ahead."""

    def __init__(self, source: Iterator[PreparedBatch], depth: int):
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._done = False
        self._thread = threading.Thread(
            target=_prefetch_worker,
            args=(source, self._queue, self._stop),
            daemon=True,
        )
        self._thread.start()

    def __iter__(self) -> "_PrefetchIterator":
        return self

    def __next__(self) -> PreparedBatch:
        # after close()/exhaustion/a propagated error there is nothing
        # left to wait for; blocking on the queue would hang forever
        if self._done:
            raise StopIteration
        item = self._queue.get()
        if item is _SENTINEL:
            self._finish()
            raise StopIteration
        if isinstance(item, BaseException):
            self._finish()
            raise item
        return item  # type: ignore[return-value]

    def _finish(self) -> None:
        """Mark the stream over and reap the worker (it has already put
        its final item and is exiting)."""
        self._done = True
        self._thread.join()

    def close(self) -> None:
        """Stop and reap the worker (early exit from an epoch).

        Joins the thread so no stale producer is still touching the
        dataset (e.g. the sharded LRU cache) when the next epoch's worker
        starts.  Idempotent; iterating afterwards raises
        ``StopIteration`` instead of blocking on an empty queue.
        """
        self._done = True
        self._stop.set()
        while True:  # unblock a producer stuck on a full queue
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        if self._thread.is_alive():
            self._thread.join()

    def __del__(self) -> None:  # abandoned mid-epoch without close()
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


class DataLoader:
    """Lazy, reshuffling, prefetching view of a dataset for training.

    ``prefetch`` is the number of prepared batches the background thread
    may run ahead; ``0`` disables the thread entirely (useful under a
    debugger, and what :func:`epoch_batches` compares against in tests).
    With ``shuffle=False`` batches come in the dataset's storage order —
    identical for a sharded dataset and its materialised copy, which is
    the parity contract the test suite pins down.
    """

    def __init__(
        self,
        dataset: AnyCircuitDataset,
        batch_size: int,
        *,
        shuffle: bool = True,
        seed: int = 0,
        prefetch: int = 2,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.prefetch = prefetch

    def __len__(self) -> int:
        """Number of batches per epoch."""
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    @property
    def num_circuits(self) -> int:
        return len(self.dataset)

    def epoch(self, epoch: int = 0) -> Iterator[PreparedBatch]:
        """Iterate one epoch's batches (reshuffled when ``shuffle``)."""
        seed = epoch_seed(self.seed, epoch) if self.shuffle else None
        source = self.dataset.batches(self.batch_size, seed=seed)
        if self.prefetch:
            return _PrefetchIterator(source, self.prefetch)
        return source

    def __iter__(self) -> Iterator[PreparedBatch]:
        return self.epoch(0)

    def materialize(self, epoch: int = 0) -> List[PreparedBatch]:
        """One epoch's batches as a list (eval sets, small datasets)."""
        it = self.epoch(epoch)
        try:
            return list(it)
        finally:
            if isinstance(it, _PrefetchIterator):
                it.close()


def as_loader(
    data: Union[AnyCircuitDataset, DataLoader],
    batch_size: int,
    *,
    shuffle: bool = True,
    seed: int = 0,
    prefetch: Optional[int] = None,
) -> DataLoader:
    """Coerce a dataset (or pass through a loader) for the trainer."""
    if isinstance(data, DataLoader):
        return data
    kwargs = {} if prefetch is None else {"prefetch": prefetch}
    return DataLoader(
        data, batch_size, shuffle=shuffle, seed=seed, **kwargs
    )
