"""Graph batching and topological level schedules.

Two pieces of machinery the models rely on:

* :func:`merge` — combine several :class:`CircuitGraph` objects into one
  disjoint batched graph with offset node ids, so one forward pass trains on
  a whole mini-batch of circuits.
* :class:`LevelSchedule` — the *topological batching* of Thost & Chen
  (paper §IV-B): nodes are grouped by logic level, and message passing
  processes one level at a time with all of the level's nodes updated in a
  single vectorised step.  Forward schedules walk levels upward, reverse
  schedules walk them downward (the paper's reversed propagation layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn.kernels import SegmentLayout
from .features import CircuitGraph
from .positional import positional_encoding

__all__ = [
    "merge",
    "merge_schedules",
    "LevelGroup",
    "LevelSchedule",
    "GatherSplit",
    "CompiledGroup",
    "CompiledSchedule",
    "PassBlock",
    "PASS_INPUT",
    "FRONTIER",
    "Window",
    "WindowedSchedule",
]

#: :class:`GatherSplit` producer sentinel — rows come from the pass input
PASS_INPUT = -1
#: :class:`GatherSplit` producer sentinel — rows come from an earlier
#: window's output (the frontier cut set; see :class:`WindowedSchedule`)
FRONTIER = -2


def _level_runs(levels: np.ndarray) -> List[Tuple[int, np.ndarray]]:
    """Group positions by value with ONE stable argsort.

    Returns ``[(level, positions), ...]`` in ascending level order, with
    each ``positions`` array preserving the original relative order —
    exactly what a per-level ``np.nonzero(levels == lv)`` scan would give,
    without the O(max_level × E) repeated passes.
    """
    if levels.size == 0:
        return []
    order = np.argsort(levels, kind="stable")
    sorted_levels = levels[order]
    boundaries = np.flatnonzero(np.diff(sorted_levels)) + 1
    starts = np.concatenate([np.zeros(1, np.int64), boundaries])
    stops = np.concatenate([boundaries, [levels.size]])
    return [
        (int(sorted_levels[a]), order[a:b]) for a, b in zip(starts, stops)
    ]


def merge(graphs: Sequence[CircuitGraph]) -> CircuitGraph:
    """Disjoint union of circuit graphs (the mini-batch collate function)."""
    graphs = list(graphs)
    if not graphs:
        raise ValueError("cannot merge an empty list of graphs")
    type_names = graphs[0].type_names
    for g in graphs[1:]:
        if g.type_names != type_names:
            raise ValueError("cannot merge graphs with different type vocabularies")
    offsets = np.cumsum([0] + [g.num_nodes for g in graphs])
    node_type = np.concatenate([g.node_type for g in graphs])
    levels = np.concatenate([g.levels for g in graphs])
    labels = np.concatenate([g.labels for g in graphs])
    edges = np.concatenate(
        [g.edges + off for g, off in zip(graphs, offsets)], axis=0
    )
    skip_edges = np.concatenate(
        [g.skip_edges + off for g, off in zip(graphs, offsets)], axis=0
    )
    skip_diff = np.concatenate([g.skip_level_diff for g in graphs])
    return CircuitGraph(
        node_type=node_type,
        type_names=type_names,
        edges=edges,
        levels=levels,
        labels=labels,
        skip_edges=skip_edges,
        skip_level_diff=skip_diff,
        name=f"batch[{len(graphs)}]",
    )


@dataclass
class LevelGroup:
    """One vectorised message-passing step: update ``nodes`` together.

    ``src[k]`` feeds the node at position ``seg[k]`` within ``nodes``.
    ``skip_*`` carry the reconvergence skip connections landing on this
    level, with their positional-encoding edge attributes (paper Eq. 7).
    """

    nodes: np.ndarray
    src: np.ndarray
    seg: np.ndarray
    skip_src: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    skip_seg: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    skip_attr: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0), np.float32)
    )

    @property
    def has_skip(self) -> bool:
        return len(self.skip_src) > 0


class LevelSchedule:
    """Precomputed level-by-level propagation plan for a (batched) graph."""

    def __init__(self, groups: List[LevelGroup], num_nodes: int):
        self.groups = groups
        self.num_nodes = num_nodes

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    # ------------------------------------------------------------------
    @classmethod
    def forward(
        cls,
        graph: CircuitGraph,
        include_skip: bool = False,
        pe_levels: int = 8,
    ) -> "LevelSchedule":
        """Schedule walking levels 1..max (predecessor aggregation)."""
        edges = graph.edges
        dst_level = graph.levels[edges[:, 1]]
        groups: List[LevelGroup] = []
        if graph.num_nodes == 0:
            return cls(groups, 0)
        skip = graph.skip_edges if include_skip else np.zeros((0, 2), np.int64)
        skip_level = (
            graph.levels[skip[:, 1]] if len(skip) else np.zeros(0, np.int64)
        )
        # edge attribute = [gamma(D), is_skip]: the trailing indicator lets
        # the attention learn one global gate over skip connections (and its
        # negative initialisation starts them nearly muted, so they cannot
        # dilute real fan-in messages before training decides to use them)
        if include_skip and len(skip):
            pe = positional_encoding(graph.skip_level_diff, pe_levels)
            skip_attr_all = np.concatenate(
                [pe, np.ones((len(skip), 1), np.float32)], axis=1
            )
        else:
            skip_attr_all = np.zeros((0, 2 * pe_levels + 1), np.float32)
        skip_runs = dict(_level_runs(skip_level))
        for lv, sel in _level_runs(dst_level):
            e = edges[sel]
            nodes, seg = np.unique(e[:, 1], return_inverse=True)
            group = LevelGroup(nodes=nodes, src=e[:, 0], seg=seg)
            ssel = skip_runs.get(lv)
            if ssel is not None:
                s = skip[ssel]
                pos = np.searchsorted(nodes, s[:, 1])
                group.skip_src = s[:, 0]
                group.skip_seg = pos
                group.skip_attr = skip_attr_all[ssel]
            groups.append(group)
        return cls(groups, graph.num_nodes)

    @classmethod
    def reverse(cls, graph: CircuitGraph) -> "LevelSchedule":
        """Schedule walking levels max-1..0 (successor aggregation).

        Every edge ``u -> v`` becomes a reverse message ``v -> u``; node
        ``u`` is updated when its (forward) level is reached on the way
        down, by which time all successors have been processed.
        """
        edges = graph.edges
        groups: List[LevelGroup] = []
        if graph.num_nodes == 0:
            return cls(groups, 0)
        src_level = graph.levels[edges[:, 0]]
        for lv, sel in reversed(_level_runs(src_level)):
            e = edges[sel]
            nodes, seg = np.unique(e[:, 0], return_inverse=True)
            groups.append(LevelGroup(nodes=nodes, src=e[:, 1], seg=seg))
        return cls(groups, graph.num_nodes)

    @classmethod
    def undirected(cls, graph: CircuitGraph) -> "LevelSchedule":
        """Single-step schedule over the symmetrised edge set (GCN mode)."""
        if graph.num_edges == 0:
            return cls([], graph.num_nodes)
        fwd = graph.edges
        both = np.concatenate([fwd, fwd[:, ::-1]], axis=0)
        nodes, seg = np.unique(both[:, 1], return_inverse=True)
        return cls(
            [LevelGroup(nodes=nodes, src=both[:, 0], seg=seg)], graph.num_nodes
        )


def merge_schedules(
    schedules: Sequence[LevelSchedule],
    graphs: Sequence[CircuitGraph],
    descending: bool = False,
) -> LevelSchedule:
    """Merge per-circuit level schedules into the batched graph's schedule.

    Produces exactly what ``LevelSchedule.forward`` / ``.reverse`` would
    compute on ``merge(graphs)``, without touching the merged edge list:
    the level groups of each single-circuit schedule are concatenated
    per level with node-id and segment offsets applied.  This holds
    because the batched construction sorts stably by level and circuit
    offsets ascend, so within a level the batched arrays are the
    circuits' arrays in order.  ``repro serve`` uses it to batch cached
    single-circuit prepares without recompiling.  Not applicable to
    ``undirected`` schedules, whose single group interleaves forward and
    flipped edges rather than circuits.
    """
    schedules = list(schedules)
    graphs = list(graphs)
    if len(schedules) != len(graphs):
        raise ValueError("need one graph per schedule")
    if not schedules:
        raise ValueError("cannot merge an empty list of schedules")
    offsets = np.cumsum([0] + [g.num_nodes for g in graphs])
    by_level: dict = {}
    for ci, (sched, graph) in enumerate(zip(schedules, graphs)):
        if sched.num_nodes != graph.num_nodes:
            raise ValueError("schedule/graph node count mismatch")
        for group in sched:
            lv = int(graph.levels[group.nodes[0]])
            by_level.setdefault(lv, []).append((ci, group))
    groups: List[LevelGroup] = []
    for lv in sorted(by_level, reverse=descending):
        parts = by_level[lv]
        node_base = np.cumsum([0] + [len(g.nodes) for _, g in parts])
        merged = LevelGroup(
            nodes=np.concatenate([g.nodes + offsets[ci] for ci, g in parts]),
            src=np.concatenate([g.src + offsets[ci] for ci, g in parts]),
            seg=np.concatenate(
                [g.seg + base for (_, g), base in zip(parts, node_base)]
            ),
        )
        if any(g.has_skip for _, g in parts):
            merged.skip_src = np.concatenate(
                [g.skip_src + offsets[ci] for ci, g in parts]
            )
            merged.skip_seg = np.concatenate(
                [g.skip_seg + base for (_, g), base in zip(parts, node_base)]
            )
            merged.skip_attr = np.concatenate(
                [g.skip_attr for _, g in parts if g.has_skip]
            )
        groups.append(merged)
    return LevelSchedule(groups, int(offsets[-1]))


# ---------------------------------------------------------------------------
# compiled schedules (the propagation fast path's precomputed plan)
# ---------------------------------------------------------------------------


@dataclass
class GatherSplit:
    """One producer's share of a group's source gather.

    ``producer`` is the index of the level group (within the same pass —
    window-local when compiled per window) whose output the rows come
    from, :data:`PASS_INPUT` (``-1``) for the pass's input state, or
    :data:`FRONTIER` (``-2``) for rows produced by an *earlier window*
    of a :class:`WindowedSchedule` (read from the window's frontier cut
    set rather than a full working matrix).  ``positions`` selects the
    entries of the group's ``src`` array that read from this producer
    (``None`` = all of them); ``layout`` is the segment layout over the
    producer-local row indices used to pre-reduce repeated rows before
    scattering gradients back.

    ``layout.segment_ids`` doubles as the forward gather index array in
    position order: global node ids for :data:`PASS_INPUT`, rows into
    the window's ``ext_rows`` snapshot for :data:`FRONTIER`, and
    producer-local output rows for in-pass producers.
    """

    producer: int
    positions: Optional[np.ndarray]
    layout: SegmentLayout


def _fold_skip(
    g: LevelGroup, edge_attr_dim: Optional[int]
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Concatenate a group's real and skip edges (and attribute block)."""
    if g.has_skip:
        src = np.concatenate([g.src, g.skip_src])
        seg = np.concatenate([g.seg, g.skip_seg])
    else:
        src, seg = g.src, g.seg
    edge_attr = None
    if edge_attr_dim is not None:
        edge_attr = np.zeros((len(src), edge_attr_dim), np.float32)
        if g.has_skip:
            edge_attr[len(g.src):] = g.skip_attr
    return src, seg, edge_attr


@dataclass
class CompiledGroup:
    """Everything one propagation step needs, precomputed once per batch.

    Compared to a :class:`LevelGroup`, the skip connections are already
    folded in (``src``/``seg`` are the concatenated real+skip arrays and
    ``edge_attr`` the matching zero/PE attribute block), the gate-type
    feature rows are pre-gathered, and the segment sort layout is built.
    """

    nodes: np.ndarray
    src: np.ndarray
    seg: np.ndarray
    seg_layout: SegmentLayout
    gather_plan: List[GatherSplit]
    x_rows: np.ndarray
    edge_attr: Optional[np.ndarray] = None
    #: row offsets of this group within the pass-wide block layout (see
    #: :class:`PassBlock`): nodes occupy ``[node_offset, node_offset +
    #: len(nodes))`` of the written-node axis, edges likewise on the edge
    #: axis
    node_offset: int = 0
    edge_offset: int = 0


@dataclass
class PassBlock:
    """Packed per-pass block layout over a compiled schedule's groups.

    The whole-pass runner's batched ("block") execution mode lays every
    per-group quantity of a pass out contiguously, in group order, so the
    work that does not depend on mid-pass state runs as ONE large GEMM
    per pass instead of one tiny GEMM per level group:

    * the static share of the GRU input transform
      (``x_rows @ W_ih[d:] + b_ih``) is computed over ``x_rows`` up
      front and sliced per group;
    * every parameter gradient of the backward walk accumulates per-group
      intermediates into ``(num_written, ·)`` / ``(num_edges, ·)``
      buffers (contiguous slice writes, no scatter) and contracts them
      against these concatenated inputs once per pass.

    ``node_offsets``/``edge_offsets`` are ``(G+1,)`` cumulative sums;
    group ``k``'s rows are ``[offsets[k], offsets[k+1])``.  ``written``
    is the concatenation of the groups' node ids (the same array as
    ``CompiledSchedule.written``), ``x_rows``/``edge_attr`` the
    concatenated per-group feature/attribute blocks, and ``counts`` the
    per-written-node fan-in counts (concatenated segment-layout counts).
    """

    node_offsets: np.ndarray
    edge_offsets: np.ndarray
    written: np.ndarray
    x_rows: np.ndarray
    counts: np.ndarray
    edge_attr: Optional[np.ndarray]

    @property
    def num_written(self) -> int:
        return int(self.node_offsets[-1])

    @property
    def num_edges(self) -> int:
        return int(self.edge_offsets[-1])


class CompiledSchedule:
    """A :class:`LevelSchedule` compiled against a batch's features.

    Precomputes what the propagation loop would otherwise rebuild on every
    iteration of every epoch: concatenated skip index/segment arrays, the
    zero-padded edge-attribute blocks, per-group segment sort layouts, the
    gathered one-hot input rows, and — because a forward/reverse pass
    writes each node at most once — a *provenance plan* mapping every
    source row to the in-pass group that produced it (or to the pass
    input).  The plan lets the runner gather from a single working matrix
    and materialise the state exactly once per pass instead of once per
    level.
    """

    def __init__(
        self,
        groups: List[CompiledGroup],
        num_nodes: int,
        written: np.ndarray,
    ):
        self.groups = groups
        self.num_nodes = num_nodes
        #: all node ids written during the pass (unique by construction)
        self.written = written
        self._block: Optional[PassBlock] = None

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    def block(self) -> PassBlock:
        """The pass-wide :class:`PassBlock` layout, built once and cached.

        Valid because group offsets are assigned at compile time and the
        groups' arrays never change afterwards.
        """
        if self._block is None:
            groups = self.groups
            node_offsets = np.cumsum(
                [0] + [len(g.nodes) for g in groups], dtype=np.int64
            )
            edge_offsets = np.cumsum(
                [0] + [len(g.src) for g in groups], dtype=np.int64
            )
            feat = groups[0].x_rows.shape[1] if groups else 0
            x_rows = (
                np.concatenate([g.x_rows for g in groups])
                if groups
                else np.zeros((0, feat), np.float32)
            )
            counts = (
                np.concatenate([g.seg_layout.counts for g in groups])
                if groups
                else np.zeros(0, np.float32)
            )
            edge_attr = None
            if groups and groups[0].edge_attr is not None:
                edge_attr = np.concatenate([g.edge_attr for g in groups])
            self._block = PassBlock(
                node_offsets=node_offsets,
                edge_offsets=edge_offsets,
                written=self.written,
                x_rows=x_rows,
                counts=counts,
                edge_attr=edge_attr,
            )
        return self._block

    @classmethod
    def compile(
        cls,
        schedule: LevelSchedule,
        x: np.ndarray,
        edge_attr_dim: Optional[int] = None,
    ) -> "CompiledSchedule":
        """Compile ``schedule`` for a batch with feature matrix ``x``.

        ``edge_attr_dim`` enables the per-edge attribute blocks (real edges
        zero, skip edges their positional encoding); ``None`` skips them
        for models that don't consume edge attributes.
        """
        num_nodes = schedule.num_nodes
        # which group (this pass) last wrote each node, and at which local row
        writer = np.full(num_nodes, -1, dtype=np.int64)
        local = np.zeros(num_nodes, dtype=np.int64)
        groups: List[CompiledGroup] = []
        node_offset = 0
        edge_offset = 0
        for gi, g in enumerate(schedule):
            src, seg, edge_attr = _fold_skip(g, edge_attr_dim)
            prov = writer[src]
            plan: List[GatherSplit] = []
            for p in np.unique(prov) if src.size else ():
                if prov.size and (prov == p).all():
                    positions = None
                    chosen = src
                else:
                    positions = np.flatnonzero(prov == p)
                    chosen = src[positions]
                if p < 0:
                    rows, size = chosen, num_nodes
                else:
                    rows, size = local[chosen], len(groups[p].nodes)
                plan.append(
                    GatherSplit(int(p), positions, SegmentLayout(rows, size))
                )
            groups.append(
                CompiledGroup(
                    nodes=g.nodes,
                    src=src,
                    seg=seg,
                    seg_layout=SegmentLayout(seg, len(g.nodes)),
                    gather_plan=plan,
                    x_rows=np.ascontiguousarray(x[g.nodes]),
                    edge_attr=edge_attr,
                    node_offset=node_offset,
                    edge_offset=edge_offset,
                )
            )
            node_offset += len(g.nodes)
            edge_offset += len(src)
            writer[g.nodes] = gi
            local[g.nodes] = np.arange(len(g.nodes))
        written = (
            np.concatenate([g.nodes for g in groups])
            if groups
            else np.zeros(0, np.int64)
        )
        return cls(groups, num_nodes, written)


# ---------------------------------------------------------------------------
# windowed schedules (bounded-memory streaming propagation)
# ---------------------------------------------------------------------------


@dataclass
class Window:
    """One bounded slice of a pass: consecutive level groups compiled
    together, plus the frontier cut set they read from earlier windows.

    ``compiled`` is a per-window :class:`CompiledSchedule` whose
    ``gather_plan`` producers are *window-local* group indices (or the
    :data:`PASS_INPUT`/:data:`FRONTIER` sentinels) and whose block
    layout (:meth:`CompiledSchedule.block`) therefore packs only this
    window's rows.  ``ext_rows`` is the sorted array of global node ids
    written by earlier windows and read by this one — the rows whose
    values cross the window boundary and must be carried (or spilled)
    between windows.  ``written_start``/``written_stop`` locate this
    window's written nodes inside the pass-global written-node axis.
    """

    index: int
    compiled: CompiledSchedule
    ext_rows: np.ndarray
    written_start: int
    written_stop: int

    @property
    def num_written(self) -> int:
        return self.written_stop - self.written_start


class WindowedSchedule:
    """A level schedule partitioned into windows of bounded size.

    Greedy partition of the level groups into consecutive windows whose
    written-node count stays within ``node_budget`` (and, optionally,
    whose folded edge count stays within ``edge_budget``); a window
    always takes at least one group, so a single oversized level group
    becomes its own window rather than failing.  Each window compiles
    exactly like :meth:`CompiledSchedule.compile` — the provenance
    ``writer``/``local`` maps are shared across windows, so a source
    row's producer is classified as in-window (window-local index),
    earlier-window (:data:`FRONTIER`, resolved through the window's
    ``ext_rows`` cut set), or the pass input (:data:`PASS_INPUT`).

    The windowed pass runner streams windows in level order, keeping
    only the current window's state plus the bounded frontier rows —
    see :func:`repro.models.propagation.run_pass`.  ``x`` (the batch
    feature matrix) is retained so the runner can recompute the static
    GRU input-transform share per window with pass-global GEMM chunk
    extents (the bitwise-identity convention of the execute layer).
    """

    def __init__(
        self,
        windows: List[Window],
        num_nodes: int,
        written: np.ndarray,
        x: np.ndarray,
        node_budget: int,
        edge_budget: Optional[int] = None,
    ):
        self.windows = windows
        self.num_nodes = num_nodes
        #: all node ids written during the pass, in window/group order
        self.written = written
        self.x = x
        self.node_budget = node_budget
        self.edge_budget = edge_budget

    def __iter__(self):
        return iter(self.windows)

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def num_groups(self) -> int:
        return sum(len(w.compiled.groups) for w in self.windows)

    @property
    def max_frontier_rows(self) -> int:
        return max((len(w.ext_rows) for w in self.windows), default=0)

    @classmethod
    def build(
        cls,
        schedule: LevelSchedule,
        x: np.ndarray,
        node_budget: int,
        edge_attr_dim: Optional[int] = None,
        edge_budget: Optional[int] = None,
    ) -> "WindowedSchedule":
        """Partition and compile ``schedule`` into bounded windows."""
        node_budget = int(node_budget)
        if node_budget < 1:
            raise ValueError(f"node_budget must be >= 1, got {node_budget}")
        if edge_budget is not None and edge_budget < 1:
            raise ValueError(f"edge_budget must be >= 1, got {edge_budget}")
        num_nodes = schedule.num_nodes
        folded = [_fold_skip(g, edge_attr_dim) for g in schedule]
        nodes_per_group = [len(g.nodes) for g in schedule]
        # greedy spans: [g0, g1) per window, >= 1 group each
        spans: List[Tuple[int, int]] = []
        g0 = 0
        while g0 < len(folded):
            n_sum = nodes_per_group[g0]
            e_sum = len(folded[g0][0])
            g1 = g0 + 1
            while g1 < len(folded):
                n_next = n_sum + nodes_per_group[g1]
                e_next = e_sum + len(folded[g1][0])
                if n_next > node_budget:
                    break
                if edge_budget is not None and e_next > edge_budget:
                    break
                n_sum, e_sum = n_next, e_next
                g1 += 1
            spans.append((g0, g1))
            g0 = g1
        # pass-global provenance, shared across windows
        writer = np.full(num_nodes, -1, dtype=np.int64)
        local = np.zeros(num_nodes, dtype=np.int64)
        windows: List[Window] = []
        written_parts: List[np.ndarray] = []
        w_start = 0
        for wi, (a, b) in enumerate(spans):
            # first sweep: record each group's provenance, then mark the
            # group as written so later groups in this window see it
            provs: List[np.ndarray] = []
            for k in range(a, b):
                g = schedule.groups[k]
                src = folded[k][0]
                provs.append(writer[src])
                writer[g.nodes] = k
                local[g.nodes] = np.arange(len(g.nodes))
            ext_parts = [
                src[(prov >= 0) & (prov < a)]
                for (src, _, _), prov in zip(folded[a:b], provs)
            ]
            ext_cat = (
                np.concatenate(ext_parts)
                if ext_parts
                else np.zeros(0, np.int64)
            )
            ext_rows = np.unique(ext_cat)
            # second sweep: build the window's compiled groups with
            # window-local producers and frontier splits
            cgroups: List[CompiledGroup] = []
            node_offset = 0
            edge_offset = 0
            for k in range(a, b):
                g = schedule.groups[k]
                src, seg, edge_attr = folded[k]
                prov = provs[k - a]
                plan: List[GatherSplit] = []
                for p in np.unique(prov) if src.size else ():
                    if prov.size and (prov == p).all():
                        positions = None
                        chosen = src
                    else:
                        positions = np.flatnonzero(prov == p)
                        chosen = src[positions]
                    if p < 0:
                        producer = PASS_INPUT
                        rows, size = chosen, num_nodes
                    elif p < a:
                        producer = FRONTIER
                        rows = np.searchsorted(ext_rows, chosen)
                        size = len(ext_rows)
                    else:
                        producer = int(p - a)
                        rows = local[chosen]
                        size = nodes_per_group[p]
                    plan.append(
                        GatherSplit(
                            producer, positions, SegmentLayout(rows, size)
                        )
                    )
                cgroups.append(
                    CompiledGroup(
                        nodes=g.nodes,
                        src=src,
                        seg=seg,
                        seg_layout=SegmentLayout(seg, len(g.nodes)),
                        gather_plan=plan,
                        x_rows=np.ascontiguousarray(x[g.nodes]),
                        edge_attr=edge_attr,
                        node_offset=node_offset,
                        edge_offset=edge_offset,
                    )
                )
                node_offset += len(g.nodes)
                edge_offset += len(src)
            win_written = (
                np.concatenate([cg.nodes for cg in cgroups])
                if cgroups
                else np.zeros(0, np.int64)
            )
            written_parts.append(win_written)
            windows.append(
                Window(
                    index=wi,
                    compiled=CompiledSchedule(cgroups, num_nodes, win_written),
                    ext_rows=ext_rows,
                    written_start=w_start,
                    written_stop=w_start + len(win_written),
                )
            )
            w_start += len(win_written)
        written = (
            np.concatenate(written_parts)
            if written_parts
            else np.zeros(0, np.int64)
        )
        return cls(
            windows, num_nodes, written, x, node_budget, edge_budget
        )
