"""Graph batching and topological level schedules.

Two pieces of machinery the models rely on:

* :func:`merge` — combine several :class:`CircuitGraph` objects into one
  disjoint batched graph with offset node ids, so one forward pass trains on
  a whole mini-batch of circuits.
* :class:`LevelSchedule` — the *topological batching* of Thost & Chen
  (paper §IV-B): nodes are grouped by logic level, and message passing
  processes one level at a time with all of the level's nodes updated in a
  single vectorised step.  Forward schedules walk levels upward, reverse
  schedules walk them downward (the paper's reversed propagation layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .features import CircuitGraph
from .positional import positional_encoding

__all__ = ["merge", "LevelGroup", "LevelSchedule"]


def merge(graphs: Sequence[CircuitGraph]) -> CircuitGraph:
    """Disjoint union of circuit graphs (the mini-batch collate function)."""
    graphs = list(graphs)
    if not graphs:
        raise ValueError("cannot merge an empty list of graphs")
    type_names = graphs[0].type_names
    for g in graphs[1:]:
        if g.type_names != type_names:
            raise ValueError("cannot merge graphs with different type vocabularies")
    offsets = np.cumsum([0] + [g.num_nodes for g in graphs])
    node_type = np.concatenate([g.node_type for g in graphs])
    levels = np.concatenate([g.levels for g in graphs])
    labels = np.concatenate([g.labels for g in graphs])
    edges = np.concatenate(
        [g.edges + off for g, off in zip(graphs, offsets)], axis=0
    )
    skip_edges = np.concatenate(
        [g.skip_edges + off for g, off in zip(graphs, offsets)], axis=0
    )
    skip_diff = np.concatenate([g.skip_level_diff for g in graphs])
    return CircuitGraph(
        node_type=node_type,
        type_names=type_names,
        edges=edges,
        levels=levels,
        labels=labels,
        skip_edges=skip_edges,
        skip_level_diff=skip_diff,
        name=f"batch[{len(graphs)}]",
    )


@dataclass
class LevelGroup:
    """One vectorised message-passing step: update ``nodes`` together.

    ``src[k]`` feeds the node at position ``seg[k]`` within ``nodes``.
    ``skip_*`` carry the reconvergence skip connections landing on this
    level, with their positional-encoding edge attributes (paper Eq. 7).
    """

    nodes: np.ndarray
    src: np.ndarray
    seg: np.ndarray
    skip_src: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    skip_seg: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    skip_attr: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0), np.float32)
    )

    @property
    def has_skip(self) -> bool:
        return len(self.skip_src) > 0


class LevelSchedule:
    """Precomputed level-by-level propagation plan for a (batched) graph."""

    def __init__(self, groups: List[LevelGroup], num_nodes: int):
        self.groups = groups
        self.num_nodes = num_nodes

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    # ------------------------------------------------------------------
    @classmethod
    def forward(
        cls,
        graph: CircuitGraph,
        include_skip: bool = False,
        pe_levels: int = 8,
    ) -> "LevelSchedule":
        """Schedule walking levels 1..max (predecessor aggregation)."""
        edges = graph.edges
        dst_level = graph.levels[edges[:, 1]]
        groups: List[LevelGroup] = []
        if graph.num_nodes == 0:
            return cls(groups, 0)
        skip = graph.skip_edges if include_skip else np.zeros((0, 2), np.int64)
        skip_level = (
            graph.levels[skip[:, 1]] if len(skip) else np.zeros(0, np.int64)
        )
        # edge attribute = [gamma(D), is_skip]: the trailing indicator lets
        # the attention learn one global gate over skip connections (and its
        # negative initialisation starts them nearly muted, so they cannot
        # dilute real fan-in messages before training decides to use them)
        if include_skip and len(skip):
            pe = positional_encoding(graph.skip_level_diff, pe_levels)
            skip_attr_all = np.concatenate(
                [pe, np.ones((len(skip), 1), np.float32)], axis=1
            )
        else:
            skip_attr_all = np.zeros((0, 2 * pe_levels + 1), np.float32)
        for lv in range(1, int(graph.levels.max()) + 1):
            sel = np.nonzero(dst_level == lv)[0]
            if sel.size == 0:
                continue
            e = edges[sel]
            nodes, seg = np.unique(e[:, 1], return_inverse=True)
            group = LevelGroup(nodes=nodes, src=e[:, 0], seg=seg)
            if include_skip and len(skip):
                ssel = np.nonzero(skip_level == lv)[0]
                if ssel.size:
                    s = skip[ssel]
                    pos = np.searchsorted(nodes, s[:, 1])
                    group.skip_src = s[:, 0]
                    group.skip_seg = pos
                    group.skip_attr = skip_attr_all[ssel]
            groups.append(group)
        return cls(groups, graph.num_nodes)

    @classmethod
    def reverse(cls, graph: CircuitGraph) -> "LevelSchedule":
        """Schedule walking levels max-1..0 (successor aggregation).

        Every edge ``u -> v`` becomes a reverse message ``v -> u``; node
        ``u`` is updated when its (forward) level is reached on the way
        down, by which time all successors have been processed.
        """
        edges = graph.edges
        groups: List[LevelGroup] = []
        if graph.num_nodes == 0:
            return cls(groups, 0)
        src_level = graph.levels[edges[:, 0]]
        for lv in range(int(graph.levels.max()) - 1, -1, -1):
            sel = np.nonzero(src_level == lv)[0]
            if sel.size == 0:
                continue
            e = edges[sel]
            nodes, seg = np.unique(e[:, 0], return_inverse=True)
            groups.append(LevelGroup(nodes=nodes, src=e[:, 1], seg=seg))
        return cls(groups, graph.num_nodes)

    @classmethod
    def undirected(cls, graph: CircuitGraph) -> "LevelSchedule":
        """Single-step schedule over the symmetrised edge set (GCN mode)."""
        if graph.num_edges == 0:
            return cls([], graph.num_nodes)
        fwd = graph.edges
        both = np.concatenate([fwd, fwd[:, ::-1]], axis=0)
        nodes, seg = np.unique(both[:, 1], return_inverse=True)
        return cls(
            [LevelGroup(nodes=nodes, src=both[:, 0], seg=seg)], graph.num_nodes
        )
