"""Training loop: Adam + L1 loss on signal probabilities (paper §III-C).

The :class:`Trainer` streams batches through a
:class:`~repro.graphdata.loader.DataLoader`: nothing is materialised up
front, every epoch reshuffles deterministically (seeded by
``SeedSequence([seed, epoch])``), and a background thread prefetches the
next batch — so the same loop trains from an in-memory
:class:`CircuitDataset` or straight from on-disk shards.  Checkpoints
capture model parameters, optimizer slots and the loss history; a resumed
run continues bitwise-identically to an uninterrupted one because the
per-epoch shuffle depends only on ``(seed, epoch)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from ..graphdata.dataset import (
    CircuitDataset,
    PreparedBatch,
    ShardedCircuitDataset,
)
from ..graphdata.loader import DataLoader, as_loader
from ..models.deepgate import DeepGate
from ..nn.functional import l1_loss
from ..nn.modules import Module
from ..nn.optim import Adam, clip_grad_norm
from ..nn.serialization import load_checkpoint, save_checkpoint
from ..nn.tensor import no_grad
from .callbacks import Callback
from .metrics import ErrorAccumulator

__all__ = ["TrainConfig", "TrainHistory", "Trainer", "evaluate_model"]

TrainData = Union[CircuitDataset, ShardedCircuitDataset, DataLoader]


@dataclass
class TrainConfig:
    """Hyper-parameters; paper defaults are lr=1e-4 Adam for 60 epochs.

    ``shuffle`` reshuffles the training batches every epoch (seeded, so
    runs stay reproducible); ``prefetch`` is how many prepared batches the
    loader's background thread may run ahead (0 disables the thread).
    """

    epochs: int = 60
    batch_size: int = 16
    lr: float = 1e-4
    grad_clip: float = 5.0
    seed: int = 0
    verbose: bool = False
    shuffle: bool = True
    prefetch: int = 2


@dataclass
class TrainHistory:
    train_loss: List[float] = field(default_factory=list)
    eval_error: List[float] = field(default_factory=list)

    @property
    def final_train_loss(self) -> Optional[float]:
        """Last epoch's training loss; ``None`` before any epoch has run."""
        return self.train_loss[-1] if self.train_loss else None

    @property
    def best_eval_error(self) -> Optional[float]:
        """Best evaluation error seen; ``None`` if never evaluated."""
        return min(self.eval_error) if self.eval_error else None

    def to_dict(self) -> Dict[str, List[float]]:
        return {
            "train_loss": list(self.train_loss),
            "eval_error": list(self.eval_error),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, List[float]]) -> "TrainHistory":
        return cls(
            train_loss=[float(x) for x in data.get("train_loss", [])],
            eval_error=[float(x) for x in data.get("eval_error", [])],
        )


def evaluate_model(
    model: Module,
    batches: Iterable[PreparedBatch],
    num_iterations: Optional[int] = None,
) -> float:
    """Average prediction error (Eq. 8) of ``model`` over ``batches``."""
    acc = ErrorAccumulator()
    with no_grad():
        for batch in batches:
            if num_iterations is not None and isinstance(model, DeepGate):
                pred = model(batch, num_iterations=num_iterations)
            else:
                pred = model(batch)
            acc.add(pred.numpy(), batch.labels)
    return acc.value


class Trainer:
    """Streaming fit/evaluate loop shared by every experiment."""

    def __init__(self, model: Module, config: Optional[TrainConfig] = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.history = TrainHistory()
        self._stop_requested = False

    def request_stop(self) -> None:
        """Stop after the current epoch (early-stopping callbacks)."""
        self._stop_requested = True

    def fit(
        self,
        train_data: TrainData,
        eval_data: Optional[TrainData] = None,
        callback: Optional[Callable[[int, float, Optional[float]], None]] = None,
        callbacks: Sequence[Callback] = (),
        resume_from: Optional[Union[str, Path]] = None,
    ) -> TrainHistory:
        """Train for ``config.epochs`` epochs; returns loss/error history.

        ``train_data`` may be a dataset (in-memory or sharded) or a
        pre-configured :class:`DataLoader`.  ``callback`` is the legacy
        per-epoch hook ``(epoch, loss, eval_error)``; ``callbacks`` take
        the richer :class:`~repro.train.callbacks.Callback` objects.
        ``resume_from`` restores a checkpoint written by
        :meth:`save_checkpoint` and continues from its next epoch.
        """
        cfg = self.config
        loader = as_loader(
            train_data,
            cfg.batch_size,
            shuffle=cfg.shuffle,
            seed=cfg.seed,
            prefetch=cfg.prefetch,
        )
        eval_batches: Optional[Iterable[PreparedBatch]] = None
        eval_loader: Optional[DataLoader] = None
        if eval_data is not None:
            eval_loader = as_loader(
                eval_data, cfg.batch_size, shuffle=False, prefetch=0
            )
            if isinstance(eval_loader.dataset, CircuitDataset):
                # in-memory eval sets are small: prepare once, reuse the
                # cached level schedules across every epoch's evaluation
                eval_batches = eval_loader.materialize()

        start_epoch = 0
        if resume_from is not None:
            start_epoch = self.load_checkpoint(resume_from)

        self._stop_requested = False
        for cb in callbacks:
            cb.on_fit_start(self, start_epoch)
        for epoch in range(start_epoch, cfg.epochs):
            for cb in callbacks:
                cb.on_epoch_start(self, epoch)
            epoch_loss = self._run_epoch(loader.epoch(epoch))
            self.history.train_loss.append(epoch_loss)
            eval_error = None
            if eval_loader is not None:
                batches = (
                    eval_batches
                    if eval_batches is not None
                    else eval_loader.epoch(0)
                )
                eval_error = evaluate_model(self.model, batches)
                self.history.eval_error.append(eval_error)
            if cfg.verbose:  # pragma: no cover - console side effect
                msg = f"epoch {epoch + 1}/{cfg.epochs} loss={epoch_loss:.4f}"
                if eval_error is not None:
                    msg += f" eval={eval_error:.4f}"
                print(msg)
            if callback is not None:
                callback(epoch, epoch_loss, eval_error)
            for cb in callbacks:
                cb.on_epoch_end(self, epoch, epoch_loss, eval_error)
            if self._stop_requested:
                break
        for cb in callbacks:
            cb.on_fit_end(self)
        return self.history

    def _run_epoch(self, batches: Iterable[PreparedBatch]) -> float:
        total, count = 0.0, 0
        try:
            for batch in batches:
                self.optimizer.zero_grad()
                pred = self.model(batch)
                loss = l1_loss(pred, batch.labels)
                loss.backward()
                if self.config.grad_clip:
                    clip_grad_norm(self.model.parameters(), self.config.grad_clip)
                self.optimizer.step()
                total += loss.item() * batch.num_nodes
                count += batch.num_nodes
        finally:
            close = getattr(batches, "close", None)
            if close is not None:
                close()
        return total / max(count, 1)

    def evaluate(
        self,
        data: TrainData,
        num_iterations: Optional[int] = None,
    ) -> float:
        loader = as_loader(
            data, self.config.batch_size, shuffle=False, prefetch=0
        )
        return evaluate_model(self.model, loader.epoch(0), num_iterations)

    # -- checkpointing --------------------------------------------------
    def save_checkpoint(self, path: Union[str, Path], epoch: int) -> None:
        """Write everything needed to resume after ``epoch`` completed."""
        arrays: Dict[str, np.ndarray] = {
            f"model/{k}": v for k, v in self.model.state_dict().items()
        }
        arrays.update(
            {f"optim/{k}": v for k, v in self.optimizer.state_dict().items()}
        )
        meta = {
            "next_epoch": epoch + 1,
            "history": self.history.to_dict(),
            "config": dataclasses.asdict(self.config),
            "model_class": type(self.model).__name__,
        }
        config_fn = getattr(self.model, "config", None)
        if callable(config_fn):
            # lets tools reconstruct the architecture without the script
            # that built it (model_from_config / repro serve)
            meta["model_config"] = config_fn()
        save_checkpoint(path, arrays, meta)

    #: TrainConfig fields that determine the data order and update math; a
    #: resumed run must match them or the bitwise-continuation guarantee
    #: is silently void (epochs may grow, verbose/prefetch don't matter)
    _RESUME_CRITICAL = ("batch_size", "lr", "grad_clip", "seed", "shuffle")

    def load_checkpoint(self, path: Union[str, Path]) -> int:
        """Restore model/optimizer/history; returns the epoch to resume at."""
        arrays, meta = load_checkpoint(path)
        model_class = meta.get("model_class")
        if model_class not in (None, type(self.model).__name__):
            raise ValueError(
                f"checkpoint {path} was written for a {model_class}, "
                f"not a {type(self.model).__name__}"
            )
        saved_config = meta.get("config")
        if saved_config:
            mismatched = {
                key: (saved_config[key], getattr(self.config, key))
                for key in self._RESUME_CRITICAL
                if key in saved_config
                and saved_config[key] != getattr(self.config, key)
            }
            if mismatched:
                raise ValueError(
                    f"checkpoint {path} was written with a different train "
                    f"config; resuming would not continue the same run: "
                    f"{mismatched} (saved vs current)"
                )
        self.model.load_state_dict(
            {
                k[len("model/"):]: v
                for k, v in arrays.items()
                if k.startswith("model/")
            }
        )
        self.optimizer.load_state_dict(
            {
                k[len("optim/"):]: v
                for k, v in arrays.items()
                if k.startswith("optim/")
            }
        )
        self.history = TrainHistory.from_dict(meta.get("history", {}))
        return int(meta.get("next_epoch", len(self.history.train_loss)))
