"""Training loop: Adam + L1 loss on signal probabilities (paper §III-C)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..graphdata.dataset import CircuitDataset, PreparedBatch
from ..models.deepgate import DeepGate
from ..nn.functional import l1_loss
from ..nn.modules import Module
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import no_grad
from .metrics import ErrorAccumulator

__all__ = ["TrainConfig", "TrainHistory", "Trainer", "evaluate_model"]


@dataclass
class TrainConfig:
    """Hyper-parameters; paper defaults are lr=1e-4 Adam for 60 epochs."""

    epochs: int = 60
    batch_size: int = 16
    lr: float = 1e-4
    grad_clip: float = 5.0
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainHistory:
    train_loss: List[float] = field(default_factory=list)
    eval_error: List[float] = field(default_factory=list)

    @property
    def final_train_loss(self) -> float:
        return self.train_loss[-1]

    @property
    def best_eval_error(self) -> float:
        return min(self.eval_error)


def evaluate_model(
    model: Module,
    batches: Sequence[PreparedBatch],
    num_iterations: Optional[int] = None,
) -> float:
    """Average prediction error (Eq. 8) of ``model`` over ``batches``."""
    acc = ErrorAccumulator()
    with no_grad():
        for batch in batches:
            if num_iterations is not None and isinstance(model, DeepGate):
                pred = model(batch, num_iterations=num_iterations)
            else:
                pred = model(batch)
            acc.add(pred.numpy(), batch.labels)
    return acc.value


class Trainer:
    """Minimal fit/evaluate loop shared by every experiment."""

    def __init__(self, model: Module, config: Optional[TrainConfig] = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.lr)
        self.history = TrainHistory()

    def fit(
        self,
        train_data: CircuitDataset,
        eval_data: Optional[CircuitDataset] = None,
        callback: Optional[Callable[[int, float, Optional[float]], None]] = None,
    ) -> TrainHistory:
        """Train for ``config.epochs`` epochs; returns loss/error history."""
        cfg = self.config
        train_batches = train_data.prepared_batches(cfg.batch_size, seed=cfg.seed)
        eval_batches = (
            eval_data.prepared_batches(cfg.batch_size, seed=cfg.seed)
            if eval_data is not None
            else None
        )
        for epoch in range(cfg.epochs):
            epoch_loss = self._run_epoch(train_batches)
            self.history.train_loss.append(epoch_loss)
            eval_error = None
            if eval_batches is not None:
                eval_error = evaluate_model(self.model, eval_batches)
                self.history.eval_error.append(eval_error)
            if cfg.verbose:  # pragma: no cover - console side effect
                msg = f"epoch {epoch + 1}/{cfg.epochs} loss={epoch_loss:.4f}"
                if eval_error is not None:
                    msg += f" eval={eval_error:.4f}"
                print(msg)
            if callback is not None:
                callback(epoch, epoch_loss, eval_error)
        return self.history

    def _run_epoch(self, batches: Sequence[PreparedBatch]) -> float:
        total, count = 0.0, 0
        for batch in batches:
            self.optimizer.zero_grad()
            pred = self.model(batch)
            loss = l1_loss(pred, batch.labels)
            loss.backward()
            if self.config.grad_clip:
                clip_grad_norm(self.model.parameters(), self.config.grad_clip)
            self.optimizer.step()
            total += loss.item() * batch.num_nodes
            count += batch.num_nodes
        return total / max(count, 1)

    def evaluate(
        self,
        data: CircuitDataset,
        num_iterations: Optional[int] = None,
    ) -> float:
        batches = data.prepared_batches(self.config.batch_size)
        return evaluate_model(self.model, batches, num_iterations)
