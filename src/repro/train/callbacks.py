"""Trainer hooks: checkpointing, early stopping, LR scheduling.

A :class:`Callback` sees the trainer at well-defined points of ``fit``.
Hooks receive the trainer itself, so a callback can read the history,
mutate the optimizer, or request a stop — the same contract Keras/PyTorch
Lightning users expect, scaled down to this codebase.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from .trainer import Trainer

__all__ = [
    "Callback",
    "Checkpoint",
    "EarlyStopping",
    "LRSchedule",
    "cosine_schedule",
    "step_decay",
]


class Callback:
    """Base class; override any subset of the hooks."""

    def on_fit_start(self, trainer: "Trainer", start_epoch: int) -> None:
        pass

    def on_epoch_start(self, trainer: "Trainer", epoch: int) -> None:
        pass

    def on_epoch_end(
        self,
        trainer: "Trainer",
        epoch: int,
        train_loss: float,
        eval_error: Optional[float],
    ) -> None:
        pass

    def on_fit_end(self, trainer: "Trainer") -> None:
        pass


class Checkpoint(Callback):
    """Save a resumable checkpoint every ``every`` epochs (and at the end).

    Writes are atomic (see :func:`repro.nn.serialization.save_checkpoint`),
    so killing a run mid-save still leaves the last good checkpoint for
    ``Trainer.fit(..., resume_from=path)``.
    """

    def __init__(self, path: Union[str, Path], every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = Path(path)
        self.every = every

    def on_epoch_end(self, trainer, epoch, train_loss, eval_error) -> None:
        if (epoch + 1) % self.every == 0:
            trainer.save_checkpoint(self.path, epoch)

    def on_fit_end(self, trainer) -> None:
        epochs_run = len(trainer.history.train_loss)
        if epochs_run and epochs_run % self.every != 0:
            trainer.save_checkpoint(self.path, epochs_run - 1)


class EarlyStopping(Callback):
    """Stop when the monitored value hasn't improved for ``patience`` epochs.

    Monitors the eval error when an eval set is provided, else the train
    loss.  ``min_delta`` is the smallest change that counts as an
    improvement.
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.stale = 0
        self.stopped_epoch: Optional[int] = None

    def on_fit_start(self, trainer, start_epoch) -> None:
        self.best = None
        self.stale = 0
        self.stopped_epoch = None
        # on resume, replay the restored history so the plateau counter
        # continues where the interrupted run left off — otherwise a
        # resumed run would outlive the uninterrupted one it reproduces
        history = trainer.history
        series = history.eval_error or history.train_loss
        for value in series:
            self._observe(value)

    def _observe(self, value: float) -> bool:
        """Update best/stale with one epoch's value; True if patience ran out."""
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.stale = 0
            return False
        self.stale += 1
        return self.stale >= self.patience

    def on_epoch_end(self, trainer, epoch, train_loss, eval_error) -> None:
        value = eval_error if eval_error is not None else train_loss
        if self._observe(value):
            self.stopped_epoch = epoch
            trainer.request_stop()


class LRSchedule(Callback):
    """Set the learning rate per epoch from ``fn(epoch, base_lr)``."""

    def __init__(self, fn: Callable[[int, float], float]):
        self.fn = fn
        self.base_lr: Optional[float] = None

    def on_fit_start(self, trainer, start_epoch) -> None:
        if self.base_lr is None:
            self.base_lr = trainer.optimizer.lr

    def on_epoch_start(self, trainer, epoch) -> None:
        assert self.base_lr is not None
        trainer.optimizer.lr = float(self.fn(epoch, self.base_lr))


def cosine_schedule(
    total_epochs: int, min_lr: float = 0.0
) -> Callable[[int, float], float]:
    """Cosine decay from the base LR down to ``min_lr`` over the run."""
    if total_epochs < 1:
        raise ValueError("total_epochs must be >= 1")

    def fn(epoch: int, base_lr: float) -> float:
        t = min(epoch, total_epochs) / total_epochs
        return min_lr + 0.5 * (base_lr - min_lr) * (1.0 + math.cos(math.pi * t))

    return fn


def step_decay(
    step_size: int, gamma: float = 0.5
) -> Callable[[int, float], float]:
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""
    if step_size < 1:
        raise ValueError("step_size must be >= 1")

    def fn(epoch: int, base_lr: float) -> float:
        return base_lr * gamma ** (epoch // step_size)

    return fn
