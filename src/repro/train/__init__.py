"""Training and evaluation harness."""

from .callbacks import (
    Callback,
    Checkpoint,
    EarlyStopping,
    LRSchedule,
    cosine_schedule,
    step_decay,
)
from .metrics import ErrorAccumulator, average_prediction_error
from .trainer import TrainConfig, TrainHistory, Trainer, evaluate_model

__all__ = [
    "Callback",
    "Checkpoint",
    "EarlyStopping",
    "LRSchedule",
    "cosine_schedule",
    "step_decay",
    "ErrorAccumulator",
    "average_prediction_error",
    "TrainConfig",
    "TrainHistory",
    "Trainer",
    "evaluate_model",
]
