"""Training and evaluation harness."""

from .metrics import ErrorAccumulator, average_prediction_error
from .trainer import TrainConfig, TrainHistory, Trainer, evaluate_model

__all__ = [
    "ErrorAccumulator",
    "average_prediction_error",
    "TrainConfig",
    "TrainHistory",
    "Trainer",
    "evaluate_model",
]
