"""Evaluation metrics (paper Eq. 8)."""

from __future__ import annotations


import numpy as np

__all__ = ["average_prediction_error", "ErrorAccumulator"]


def average_prediction_error(
    predictions: np.ndarray, labels: np.ndarray
) -> float:
    """Mean absolute difference between predicted and simulated probability.

    The paper's metric: ``(1/N) * sum_v |y_v - y_hat_v|`` over all nodes.
    """
    predictions = np.asarray(predictions, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute error over zero nodes")
    return float(np.abs(predictions - labels).mean())


class ErrorAccumulator:
    """Node-weighted average of per-batch errors across a dataset."""

    def __init__(self) -> None:
        self._total_abs = 0.0
        self._total_nodes = 0

    def add(self, predictions: np.ndarray, labels: np.ndarray) -> None:
        predictions = np.asarray(predictions, dtype=np.float64).reshape(-1)
        labels = np.asarray(labels, dtype=np.float64).reshape(-1)
        self._total_abs += float(np.abs(predictions - labels).sum())
        self._total_nodes += predictions.size

    @property
    def value(self) -> float:
        if self._total_nodes == 0:
            raise ValueError("no samples accumulated")
        return self._total_abs / self._total_nodes

    @property
    def count(self) -> int:
        return self._total_nodes
