"""Signal-probability estimation.

Three estimators are provided:

* :func:`monte_carlo_probabilities` — the paper's labelling method: simulate
  many random patterns and count ones (§III-B, up to 100k patterns).
* :func:`exact_probabilities` — exhaustive truth-table enumeration for small
  cones; the oracle the Monte-Carlo estimator is tested against.
* :func:`cop_probabilities` — the classical COP *analytic* estimator that
  multiplies fan-in probabilities assuming independence.  It is exact on
  trees and wrong exactly where reconvergent fanout correlates signals,
  which is the phenomenon motivating DeepGate's skip connections.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..aig.graph import AIG, AND, NOT, PI, GateGraph, lit_is_negated, lit_var
from .bitparallel import (
    exhaustive_patterns,
    popcount,
    random_patterns,
    simulate_aig,
    simulate_gate_graph,
)

__all__ = [
    "monte_carlo_probabilities",
    "exact_probabilities",
    "cop_probabilities",
    "gate_graph_probabilities",
    "node_probabilities_from_var_probs",
]


def monte_carlo_probabilities(
    aig: AIG,
    num_patterns: int = 100_000,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Estimate per-variable signal probability by random simulation.

    The pattern count is rounded up to a multiple of 64 so every simulated
    bit is a valid sample.  Returns a ``(num_vars,)`` float64 array; entry 0
    (constant FALSE) is 0.
    """
    rng = np.random.default_rng(seed)
    num_patterns = max(64, ((num_patterns + 63) // 64) * 64)
    inputs = random_patterns(aig.num_pis, num_patterns, rng)
    values = simulate_aig(aig, inputs)
    return popcount(values) / float(num_patterns)


def exact_probabilities(aig: AIG, max_pis: int = 20) -> np.ndarray:
    """Exact per-variable signal probability by exhaustive enumeration."""
    if aig.num_pis > max_pis:
        raise ValueError(
            f"exact enumeration limited to {max_pis} PIs, circuit has "
            f"{aig.num_pis}"
        )
    inputs = exhaustive_patterns(aig.num_pis)
    values = simulate_aig(aig, inputs)
    total = 1 << aig.num_pis
    if total < 64:
        mask = np.uint64((1 << total) - 1)
        values = values & mask
    return popcount(values) / float(total)


def cop_probabilities(aig: AIG) -> np.ndarray:
    """COP analytic signal probabilities (independence assumption).

    ``P(and) = P(a) * P(b)`` with ``P(!x) = 1 - P(x)`` and ``P(pi) = 0.5``.
    Exact on fanout-free (tree) circuits; biased wherever fan-ins are
    correlated through reconvergent fanout.
    """
    probs = np.empty(aig.num_vars, dtype=np.float64)
    probs[0] = 0.0
    probs[1 : 1 + aig.num_pis] = 0.5
    base = 1 + aig.num_pis
    for i in range(aig.num_ands):
        a, b = (int(x) for x in aig.ands[i])
        pa = probs[lit_var(a)]
        pb = probs[lit_var(b)]
        if lit_is_negated(a):
            pa = 1.0 - pa
        if lit_is_negated(b):
            pb = 1.0 - pb
        probs[base + i] = pa * pb
    return probs


def node_probabilities_from_var_probs(
    graph: GateGraph, var_probs: np.ndarray
) -> np.ndarray:
    """Map per-AIG-variable probabilities onto :class:`GateGraph` nodes.

    NOT nodes computing literal ``2v+1`` get ``1 - P(v)``; PI and AND nodes
    get ``P(v)`` directly (via the graph's ``source_lit`` provenance).
    """
    lits = graph.source_lit
    vars_ = lits >> 1
    probs = var_probs[vars_].astype(np.float64)
    negated = (lits & 1).astype(bool)
    probs[negated] = 1.0 - probs[negated]
    return probs


def gate_graph_probabilities(
    graph: GateGraph,
    num_patterns: int = 100_000,
    seed: Optional[int] = None,
    exact_below_pis: int = 0,
) -> np.ndarray:
    """Per-node signal probabilities for a gate graph.

    This is the label generator used by the dataset pipeline.  When the
    graph has fewer than ``exact_below_pis`` primary inputs the exhaustive
    simulator is used instead of sampling, making labels noise-free.
    """
    num_pis = graph.num_pis
    if exact_below_pis and num_pis <= exact_below_pis:
        inputs = exhaustive_patterns(num_pis)
        values = simulate_gate_graph(graph, inputs)
        total = 1 << num_pis
        if total < 64:
            values = values & np.uint64((1 << total) - 1)
        return popcount(values) / float(total)
    rng = np.random.default_rng(seed)
    num_patterns = max(64, ((num_patterns + 63) // 64) * 64)
    inputs = random_patterns(num_pis, num_patterns, rng)
    values = simulate_gate_graph(graph, inputs)
    return popcount(values) / float(num_patterns)
