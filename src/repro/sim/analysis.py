"""Structural circuit analysis: fanout stems and reconvergence detection.

Reconvergent fanout — a net that branches and whose branches meet again at a
later gate — is the paper's "first-class citizen" (§III-D): every detected
reconvergence node receives a *skip connection* edge from its source fanout
stem, annotated with the positional encoding of their level difference.

The detector runs a stem-reachability dataflow over the DAG with stems packed
64-per-word, so circuits with tens of thousands of nodes complete in seconds.
A node ``v`` with predecessors ``p, q`` is a reconvergence node for stem
``s`` when ``s`` lies in the closed fan-in cones of both ``p`` and ``q``;
the reported source is the *nearest* such stem (maximum level), which is the
immediate point of divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..aig.graph import AND, GateGraph

__all__ = ["SkipEdge", "fanout_stems", "find_reconvergences"]


@dataclass(frozen=True)
class SkipEdge:
    """A reconvergence skip connection ``source -> target``."""

    source: int  #: fanout stem node id
    target: int  #: reconvergence node id
    level_diff: int  #: level(target) - level(source), always >= 2


def fanout_stems(graph: GateGraph) -> np.ndarray:
    """Node ids whose fanout degree is 2 or more, in topological order."""
    counts = np.zeros(graph.num_nodes, dtype=np.int64)
    if graph.num_edges:
        np.add.at(counts, graph.edges[:, 0], 1)
    return np.nonzero(counts >= 2)[0]


def find_reconvergences(
    graph: GateGraph,
    mode: str = "nearest",
    stem_batch: int = 4096,
    max_level_diff: Optional[int] = None,
) -> List[SkipEdge]:
    """Detect reconvergence nodes and their source fanout stems.

    Parameters
    ----------
    mode:
        ``"nearest"`` returns one skip edge per reconvergence node (from the
        closest diverging stem, the paper's setting); ``"all"`` returns one
        edge per (stem, reconvergence-node) pair.
    stem_batch:
        Stems processed per packed-bitset pass; controls peak memory.
    max_level_diff:
        Optionally drop pairs further apart than this many levels.

    Returns
    -------
    list of :class:`SkipEdge`, sorted by target node id.
    """
    if mode not in ("nearest", "all"):
        raise ValueError(f"mode must be 'nearest' or 'all', got {mode!r}")
    stems = fanout_stems(graph)
    n = graph.num_nodes
    if stems.size == 0 or n == 0:
        return []

    levels = graph.levels()
    fanins = graph.fanin_lists()
    # group AND nodes (the only 2-input nodes) by level for vectorised passes
    and_nodes = np.nonzero(graph.node_type == AND)[0]
    not_like = np.nonzero(graph.node_type != AND)[0]
    and_p = np.array([fanins[v][0] if fanins[v] else 0 for v in and_nodes])
    and_q = np.array([fanins[v][1] if fanins[v] else 0 for v in and_nodes])
    max_level = int(levels.max())

    per_level_ands: List[np.ndarray] = []
    per_level_nots: List[Tuple[np.ndarray, np.ndarray]] = []
    for lv in range(max_level + 1):
        sel = np.nonzero(levels[and_nodes] == lv)[0]
        per_level_ands.append(sel)
        nl = not_like[(levels[not_like] == lv) & (graph.node_type[not_like] != 0)]
        src = np.array([fanins[v][0] for v in nl], dtype=np.int64)
        per_level_nots.append((nl, src))

    stem_level = levels[stems]
    best_source = np.full(n, -1, dtype=np.int64)  # nearest stem per node
    best_level = np.full(n, -1, dtype=np.int64)
    all_pairs: List[Tuple[int, int]] = []

    for start in range(0, stems.size, stem_batch):
        chunk = stems[start : start + stem_batch]
        words = (chunk.size + 63) // 64
        reach = np.zeros((n, words), dtype=np.uint64)
        # self-bits: stems carry their own bit so successors see them
        bit_word = np.arange(chunk.size) // 64
        bit_pos = (np.arange(chunk.size) % 64).astype(np.uint64)
        reach[chunk, bit_word] |= np.uint64(1) << bit_pos

        for lv in range(1, max_level + 1):
            sel = per_level_ands[lv]
            if sel.size:
                v = and_nodes[sel]
                rp = reach[and_p[sel]]
                rq = reach[and_q[sel]]
                inter = rp & rq
                reach[v] |= rp | rq
                hit_rows = np.nonzero(inter.any(axis=1))[0]
                for r in hit_rows:
                    node = int(v[r])
                    for s_local in _set_bits(inter[r]):
                        s = int(chunk[s_local])
                        s_lv = int(stem_level[start + s_local])
                        diff = int(levels[node]) - s_lv
                        if max_level_diff is not None and diff > max_level_diff:
                            continue
                        if mode == "all":
                            all_pairs.append((s, node))
                        elif s_lv > best_level[node]:
                            best_level[node] = s_lv
                            best_source[node] = s
            nl, src = per_level_nots[lv]
            if nl.size:
                reach[nl] |= reach[src]

    edges: List[SkipEdge] = []
    if mode == "all":
        for s, t in sorted(set(all_pairs), key=lambda p: (p[1], p[0])):
            edges.append(SkipEdge(s, t, int(levels[t] - levels[s])))
    else:
        for t in np.nonzero(best_source >= 0)[0]:
            s = int(best_source[t])
            edges.append(SkipEdge(s, int(t), int(levels[t] - levels[s])))
    return edges


def _set_bits(row: np.ndarray) -> List[int]:
    """Indices of set bits in a little-endian packed uint64 row."""
    out: List[int] = []
    for w, word in enumerate(row):
        word = int(word)
        base = 64 * w
        while word:
            low = word & -word
            out.append(base + low.bit_length() - 1)
            word ^= low
    return out
