"""64-way bit-parallel logic simulation.

The paper obtains supervision labels by simulating "up to 100k random input
patterns" per circuit.  Simulating patterns one at a time in Python would be
hopeless; instead patterns are packed 64-per-``uint64`` word and whole levels
of the circuit are evaluated with vectorised numpy bit operations, the same
trick production fault simulators use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..aig.graph import AIG, AND, NOT, PI, GateGraph

__all__ = [
    "ALL_ONES",
    "random_patterns",
    "exhaustive_patterns",
    "simulate_aig",
    "simulate_gate_graph",
    "popcount",
]

ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

# 8-bit popcount lookup; portable across numpy versions.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-row count of set bits for a ``(..., W)`` uint64 word array."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT8[as_bytes].reshape(words.shape[0], -1).sum(axis=1)


def random_patterns(
    num_pis: int, num_patterns: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Draw packed random input patterns.

    Returns a ``(num_pis, ceil(num_patterns / 64))`` uint64 array.  Bits past
    ``num_patterns`` in the last word are left random; callers that need an
    exact pattern count should pass a multiple of 64 (the probability
    estimators do).
    """
    if rng is None:
        rng = np.random.default_rng()
    words = (num_patterns + 63) // 64
    raw = rng.integers(0, 2**64, size=(num_pis, words), dtype=np.uint64)
    return raw


def exhaustive_patterns(num_pis: int) -> np.ndarray:
    """All ``2**num_pis`` input combinations, packed (num_pis <= 26)."""
    if num_pis > 26:
        raise ValueError(f"exhaustive simulation limited to 26 PIs, got {num_pis}")
    total = 1 << num_pis
    if num_pis <= 6:
        # single word; replicate the truth-table pattern of each variable
        out = np.zeros((num_pis, 1), dtype=np.uint64)
        for i in range(num_pis):
            word = 0
            for p in range(total):
                if (p >> i) & 1:
                    word |= 1 << p
            out[i, 0] = word
        return out
    words = total // 64
    out = np.empty((num_pis, words), dtype=np.uint64)
    pattern_ids = np.arange(total, dtype=np.uint64).reshape(words, 64)
    weights = np.uint64(1) << np.arange(64, dtype=np.uint64)
    for i in range(num_pis):
        bits = (pattern_ids >> np.uint64(i)) & np.uint64(1)
        out[i] = (bits * weights).sum(axis=1, dtype=np.uint64)
    return out


def simulate_aig(aig: AIG, packed_inputs: np.ndarray) -> np.ndarray:
    """Simulate an :class:`AIG` on packed inputs.

    Parameters
    ----------
    packed_inputs:
        ``(num_pis, W)`` uint64 array, one row per primary input.

    Returns
    -------
    ``(num_vars, W)`` uint64 array of node values, indexed by AIG variable
    (row 0 is constant FALSE).
    """
    packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
    if packed_inputs.shape[0] != aig.num_pis:
        raise ValueError(
            f"expected {aig.num_pis} input rows, got {packed_inputs.shape[0]}"
        )
    words = packed_inputs.shape[1]
    values = np.zeros((aig.num_vars, words), dtype=np.uint64)
    values[1 : 1 + aig.num_pis] = packed_inputs

    if aig.num_ands:
        levels = aig.levels()
        base = 1 + aig.num_pis
        and_levels = levels[base:]
        a_var = (aig.ands[:, 0] >> 1).astype(np.int64)
        b_var = (aig.ands[:, 1] >> 1).astype(np.int64)
        a_mask = np.where(aig.ands[:, 0] & 1, ALL_ONES, np.uint64(0))[:, None]
        b_mask = np.where(aig.ands[:, 1] & 1, ALL_ONES, np.uint64(0))[:, None]
        for lv in range(1, int(and_levels.max()) + 1):
            sel = np.nonzero(and_levels == lv)[0]
            if sel.size == 0:
                continue
            lhs = (values[a_var[sel]] ^ a_mask[sel]) & (
                values[b_var[sel]] ^ b_mask[sel]
            )
            values[base + sel] = lhs
    return values


def output_values(aig: AIG, values: np.ndarray) -> np.ndarray:
    """Extract packed output values from a :func:`simulate_aig` result."""
    out = np.empty((aig.num_outputs, values.shape[1]), dtype=np.uint64)
    for k, lit in enumerate(aig.outputs):
        row = values[lit >> 1]
        out[k] = row ^ ALL_ONES if lit & 1 else row
    return out


def simulate_gate_graph(graph: GateGraph, packed_inputs: np.ndarray) -> np.ndarray:
    """Simulate an explicit-node :class:`GateGraph` on packed inputs.

    Returns a ``(num_nodes, W)`` uint64 array.  Used to cross-check that the
    gate-graph expansion preserves AIG semantics and to compute per-node
    probability labels directly on the training graphs.
    """
    packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
    num_pis = graph.num_pis
    if packed_inputs.shape[0] != num_pis:
        raise ValueError(
            f"expected {num_pis} input rows, got {packed_inputs.shape[0]}"
        )
    words = packed_inputs.shape[1]
    values = np.zeros((graph.num_nodes, words), dtype=np.uint64)
    pi_nodes = np.nonzero(graph.node_type == PI)[0]
    values[pi_nodes] = packed_inputs

    levels = graph.levels()
    fanins = graph.fanin_lists()
    max_level = int(levels.max()) if graph.num_nodes else 0
    node_type = graph.node_type
    for lv in range(1, max_level + 1):
        at_level = np.nonzero(levels == lv)[0]
        if at_level.size == 0:
            continue
        ands = at_level[node_type[at_level] == AND]
        nots = at_level[node_type[at_level] == NOT]
        if ands.size:
            p = np.array([fanins[v][0] for v in ands], dtype=np.int64)
            q = np.array([fanins[v][1] for v in ands], dtype=np.int64)
            values[ands] = values[p] & values[q]
        if nots.size:
            p = np.array([fanins[v][0] for v in nots], dtype=np.int64)
            values[nots] = values[p] ^ ALL_ONES
    return values
