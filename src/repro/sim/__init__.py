"""Logic simulation and probability/structural analysis."""

from .analysis import SkipEdge, fanout_stems, find_reconvergences
from .bitparallel import (
    exhaustive_patterns,
    output_values,
    popcount,
    random_patterns,
    simulate_aig,
    simulate_gate_graph,
)
from .probability import (
    cop_probabilities,
    exact_probabilities,
    gate_graph_probabilities,
    monte_carlo_probabilities,
    node_probabilities_from_var_probs,
)

__all__ = [
    "SkipEdge",
    "fanout_stems",
    "find_reconvergences",
    "exhaustive_patterns",
    "output_values",
    "popcount",
    "random_patterns",
    "simulate_aig",
    "simulate_gate_graph",
    "cop_probabilities",
    "exact_probabilities",
    "gate_graph_probabilities",
    "monte_carlo_probabilities",
    "node_probabilities_from_var_probs",
]
