"""An iterative DPLL SAT solver.

Small but real and, above all, *correct*: occurrence-list unit propagation,
static most-occurrences branching, chronological backtracking with both
polarities tried at every decision.  Sized for the miter problems the
equivalence checker generates from this repository's circuits (thousands of
variables); it is deliberately simple rather than competitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cnf import CNF

__all__ = ["SatResult", "DPLLSolver", "solve", "DecisionLimitExceeded"]


class DecisionLimitExceeded(RuntimeError):
    """Raised when the search passes its decision budget."""


@dataclass
class SatResult:
    """Outcome of a solve call."""

    satisfiable: bool
    assignment: Optional[Dict[int, bool]] = None  # only when satisfiable
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0


class DPLLSolver:
    """Iterative DPLL over a :class:`CNF`."""

    def __init__(self, cnf: CNF, max_decisions: Optional[int] = None):
        self.cnf = cnf
        self.max_decisions = max_decisions
        n = cnf.num_vars
        self._assign: List[int] = [0] * (n + 1)  # 0 unknown, 1 true, -1 false
        self._trail: List[int] = []  # literals made true, in order
        self._marks: List[int] = []  # trail length at each open decision
        self._flipped: List[bool] = []  # has this decision tried both ways?
        self._clauses: List[Tuple[int, ...]] = list(cnf.clauses)
        self._occurs: Dict[int, List[int]] = {}
        for idx, clause in enumerate(self._clauses):
            for lit in clause:
                self._occurs.setdefault(-lit, []).append(idx)
        counts: Dict[int, int] = {}
        for clause in self._clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        self._order = sorted(range(1, n + 1), key=lambda v: -counts.get(v, 0))
        self._result = SatResult(False)

    # ------------------------------------------------------------------
    def solve(self) -> SatResult:
        if not self._assert_units() or not self._propagate(0):
            return self._finish(False)
        while True:
            var = self._pick_variable()
            if var is None:
                return self._finish(True)
            if (
                self.max_decisions is not None
                and self._result.decisions >= self.max_decisions
            ):
                raise DecisionLimitExceeded(
                    f"exceeded {self.max_decisions} decisions"
                )
            self._result.decisions += 1
            self._marks.append(len(self._trail))
            self._flipped.append(False)
            self._set(var)
            while not self._propagate(len(self._trail) - 1):
                self._result.conflicts += 1
                if not self._backtrack():
                    return self._finish(False)

    # ------------------------------------------------------------------
    def _assert_units(self) -> bool:
        for clause in self._clauses:
            if len(clause) == 1 and not self._set(clause[0]):
                return False
        return True

    def _value(self, literal: int) -> int:
        v = self._assign[abs(literal)]
        return v if literal > 0 else -v

    def _set(self, literal: int) -> bool:
        """Make ``literal`` true; False on contradiction with current state."""
        current = self._value(literal)
        if current != 0:
            return current == 1
        self._assign[abs(literal)] = 1 if literal > 0 else -1
        self._trail.append(literal)
        self._result.propagations += 1
        return True

    def _propagate(self, start: int) -> bool:
        """Unit-propagate trail entries from ``start``; False on conflict."""
        pos = start
        while pos < len(self._trail):
            made_true = self._trail[pos]
            pos += 1
            # clauses in which `made_true` appears negated may become unit
            for idx in self._occurs.get(made_true, ()):
                clause = self._clauses[idx]
                unassigned = None
                satisfied = False
                for lit in clause:
                    value = self._value(lit)
                    if value == 1:
                        satisfied = True
                        break
                    if value == 0:
                        if unassigned is not None:
                            unassigned = "many"
                            break
                        unassigned = lit
                if satisfied or unassigned == "many":
                    continue
                if unassigned is None:
                    return False  # all false: conflict
                if not self._set(unassigned):
                    return False
        return True

    def _backtrack(self) -> bool:
        """Undo to the most recent un-flipped decision and flip it."""
        while self._marks:
            mark = self._marks[-1]
            decision = self._trail[mark]
            for literal in self._trail[mark:]:
                self._assign[abs(literal)] = 0
            del self._trail[mark:]
            if self._flipped[-1]:
                self._marks.pop()
                self._flipped.pop()
                continue
            self._flipped[-1] = True
            self._set(-decision)
            if self._propagate(len(self._trail) - 1):
                return True
            self._result.conflicts += 1
            # flipped branch conflicts immediately: keep unwinding
        return False

    def _pick_variable(self) -> Optional[int]:
        for var in self._order:
            if self._assign[var] == 0:
                return var
        return None

    def _finish(self, satisfiable: bool) -> SatResult:
        result = self._result
        result.satisfiable = satisfiable
        if satisfiable:
            result.assignment = {
                v: self._assign[v] == 1 for v in range(1, self.cnf.num_vars + 1)
            }
        return result


def solve(cnf: CNF, max_decisions: Optional[int] = None) -> SatResult:
    """Build a solver for ``cnf`` and run it."""
    return DPLLSolver(cnf, max_decisions=max_decisions).solve()
