"""SAT-based combinational equivalence checking.

Builds the classical *miter*: two circuits share primary inputs, each
output pair feeds an XOR, and the OR of all XORs is asserted TRUE.  The
miter is satisfiable exactly when some input pattern distinguishes the two
circuits.  This is the "equivalence checking" downstream task the paper's
conclusion names, and it doubles as a formal oracle for the synthesis
passes (strash/balance/sweep must all pass it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..aig.graph import AIG, lit_negate, lit_var
from ..synth.strash import StrashBuilder
from .cnf import aig_output_cnf
from .solver import SatResult, solve

__all__ = ["build_miter", "EquivalenceResult", "check_equivalence"]


def build_miter(left: AIG, right: AIG) -> AIG:
    """Single-output AIG that is 1 iff the two circuits disagree."""
    if left.num_pis != right.num_pis:
        raise ValueError(
            f"PI count mismatch: {left.num_pis} vs {right.num_pis}"
        )
    if left.num_outputs != right.num_outputs:
        raise ValueError(
            f"output count mismatch: {left.num_outputs} vs {right.num_outputs}"
        )
    builder = StrashBuilder(left.num_pis, f"miter({left.name},{right.name})")

    def copy_into(aig: AIG) -> List[int]:
        lit_map: Dict[int, int] = {0: 0}
        for i in range(aig.num_pis):
            lit_map[1 + i] = builder.pi_lit(i)

        def remap(lit: int) -> int:
            mapped = lit_map[lit_var(lit)]
            return lit_negate(mapped) if lit & 1 else mapped

        base = 1 + aig.num_pis
        for i in range(aig.num_ands):
            a, b = (int(x) for x in aig.ands[i])
            lit_map[base + i] = builder.add_and(remap(a), remap(b))
        return [remap(o) for o in aig.outputs]

    outs_l = copy_into(left)
    outs_r = copy_into(right)
    diffs = [builder.add_xor(a, b) for a, b in zip(outs_l, outs_r)]
    builder.add_output(builder.add_or_tree(diffs))
    return builder.build()


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    counterexample: Optional[np.ndarray] = None  # PI values, when different
    sat: Optional[SatResult] = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    left: AIG, right: AIG, max_decisions: Optional[int] = None
) -> EquivalenceResult:
    """Formally compare two AIGs; returns a counterexample if they differ.

    Structural hashing inside the miter construction often proves
    equivalence outright (the miter output literal collapses to constant
    FALSE); otherwise the SAT solver decides.
    """
    miter = build_miter(left, right)
    out = miter.outputs[0]
    if out == 0:  # constant FALSE: structurally identical
        return EquivalenceResult(True)
    if out == 1:  # constant TRUE: differ on every input
        return EquivalenceResult(
            False, counterexample=np.zeros(left.num_pis, dtype=bool)
        )
    cnf, var_map = aig_output_cnf(miter, 0)
    result = solve(cnf, max_decisions=max_decisions)
    if not result.satisfiable:
        return EquivalenceResult(True, sat=result)
    pattern = np.zeros(left.num_pis, dtype=bool)
    for i in range(left.num_pis):
        pattern[i] = result.assignment.get(var_map[1 + i], False)
    return EquivalenceResult(False, counterexample=pattern, sat=result)
