"""CNF formulas and Tseitin transformation of AIGs.

The paper names Boolean satisfiability both as an alternative supervision
task and as a downstream application (equivalence checking).  This package
provides the substrate: AIG-to-CNF conversion and a DPLL solver
(:mod:`repro.sat.solver`), used by :mod:`repro.sat.equivalence` to build
SAT-based miter equivalence checks — which also serve as an independent
oracle for the synthesis passes.

Clauses use the DIMACS convention: variables are positive integers, a
negative literal means complement.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..aig.graph import AIG, lit_is_negated, lit_var

__all__ = ["CNF", "tseitin", "aig_output_cnf"]


class CNF:
    """A conjunctive-normal-form formula over integer variables."""

    def __init__(self, num_vars: int = 0):
        self.num_vars = num_vars
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        if not clause:
            raise ValueError("empty clause makes the formula trivially UNSAT")
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range")
        self.clauses.append(clause)

    def add_unit(self, literal: int) -> None:
        self.add_clause([literal])

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def to_dimacs(self) -> str:
        """Serialise in DIMACS format (for interoperability and tests)."""
        lines = [f"p cnf {self.num_vars} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """True when ``assignment`` (complete) satisfies every clause."""
        for clause in self.clauses:
            if not any(
                assignment[abs(lit)] == (lit > 0) for lit in clause
            ):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CNF(vars={self.num_vars}, clauses={self.num_clauses})"


def tseitin(aig: AIG) -> Tuple[CNF, Dict[int, int]]:
    """Tseitin-encode an AIG.

    Returns ``(cnf, var_map)`` where ``var_map`` maps AIG variable index to
    CNF variable.  Each AND node ``c = a & b`` contributes the three
    standard clauses ``(!c | a) (!c | b) (c | !a | !b)``.  The constant
    node (AIG var 0) gets a CNF variable forced to FALSE.
    """
    cnf = CNF()
    var_map: Dict[int, int] = {}
    const = cnf.new_var()
    var_map[0] = const
    cnf.add_unit(-const)  # constant FALSE
    for i in range(aig.num_pis):
        var_map[1 + i] = cnf.new_var()

    base = 1 + aig.num_pis
    for i in range(aig.num_ands):
        a_lit, b_lit = (int(x) for x in aig.ands[i])
        c = cnf.new_var()
        var_map[base + i] = c
        a = _to_cnf_lit(a_lit, var_map)
        b = _to_cnf_lit(b_lit, var_map)
        cnf.add_clause([-c, a])
        cnf.add_clause([-c, b])
        cnf.add_clause([c, -a, -b])
    return cnf, var_map


def _to_cnf_lit(aig_lit: int, var_map: Dict[int, int]) -> int:
    cnf_var = var_map[lit_var(aig_lit)]
    return -cnf_var if lit_is_negated(aig_lit) else cnf_var


def aig_output_cnf(aig: AIG, output_index: int = 0) -> Tuple[CNF, Dict[int, int]]:
    """CNF asserting that output ``output_index`` of ``aig`` is TRUE.

    The satisfiability of this formula is the circuit-SAT question the
    paper cites as alternative supervision.
    """
    if not 0 <= output_index < aig.num_outputs:
        raise IndexError(f"output index {output_index} out of range")
    cnf, var_map = tseitin(aig)
    cnf.add_unit(_to_cnf_lit(aig.outputs[output_index], var_map))
    return cnf, var_map
