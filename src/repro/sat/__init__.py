"""Boolean satisfiability: CNF, DPLL solver, equivalence checking."""

from .cnf import CNF, aig_output_cnf, tseitin
from .equivalence import EquivalenceResult, build_miter, check_equivalence
from .solver import DecisionLimitExceeded, DPLLSolver, SatResult, solve

__all__ = [
    "CNF",
    "aig_output_cnf",
    "tseitin",
    "EquivalenceResult",
    "build_miter",
    "check_equivalence",
    "DecisionLimitExceeded",
    "DPLLSolver",
    "SatResult",
    "solve",
]
