"""SCOAP testability measures (Goldstein's controllability/observability).

The paper positions signal probability as the quantity behind "many EDA
tasks"; testability analysis is the canonical one (its reference [5] uses
SCOAP features for test-point insertion).  This module computes the classic
combinational SCOAP measures on the PI/AND/NOT gate graph:

* ``CC0(v)`` / ``CC1(v)`` — minimum effort to set node ``v`` to 0 / 1
  (primary inputs cost 1, every gate adds 1);
* ``CO(v)``   — minimum effort to observe ``v`` at a primary output.

SCOAP is a structural heuristic: like COP it ignores reconvergence, which
is why learned probability models add value on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..aig.graph import AND, NOT, PI, GateGraph

__all__ = ["ScoapMeasures", "compute_scoap"]

#: sentinel for unobservable / uncontrollable nodes
INFINITY = np.int64(2**31)


@dataclass
class ScoapMeasures:
    """Per-node SCOAP values for one circuit graph."""

    cc0: np.ndarray  # (N,) controllability-to-0
    cc1: np.ndarray  # (N,) controllability-to-1
    co: np.ndarray  # (N,) observability

    @property
    def num_nodes(self) -> int:
        return int(self.cc0.shape[0])

    def testability(self) -> np.ndarray:
        """Combined per-node difficulty: min(CC0, CC1) + CO.

        High values flag nodes that are hard to excite *and* propagate —
        the classic screen for random-pattern-resistant faults.
        """
        return np.minimum(self.cc0, self.cc1) + self.co


def compute_scoap(graph: GateGraph) -> ScoapMeasures:
    """Compute SCOAP measures over a gate graph.

    Controllability runs in topological order; observability runs in
    reverse topological order with minimum over fanout branches.  Nodes
    that cannot reach any primary output keep ``CO = INFINITY``.
    """
    n = graph.num_nodes
    cc0 = np.zeros(n, dtype=np.int64)
    cc1 = np.zeros(n, dtype=np.int64)
    co = np.full(n, INFINITY, dtype=np.int64)
    fanins = graph.fanin_lists()

    for v in range(n):
        t = int(graph.node_type[v])
        if t == PI:
            cc0[v] = 1
            cc1[v] = 1
        elif t == NOT:
            src = fanins[v][0]
            cc0[v] = cc1[src] + 1
            cc1[v] = cc0[src] + 1
        else:  # AND
            a, b = fanins[v]
            cc1[v] = cc1[a] + cc1[b] + 1
            cc0[v] = min(cc0[a], cc0[b]) + 1

    for o in graph.outputs:
        co[int(o)] = 0
    for v in range(n - 1, -1, -1):
        t = int(graph.node_type[v])
        if co[v] >= INFINITY:
            continue
        if t == NOT:
            src = fanins[v][0]
            co[src] = min(co[src], co[v] + 1)
        elif t == AND:
            a, b = fanins[v]
            # to observe input a through the AND, input b must be 1
            co[a] = min(co[a], co[v] + int(cc1[b]) + 1)
            co[b] = min(co[b], co[v] + int(cc1[a]) + 1)
    return ScoapMeasures(cc0=cc0, cc1=cc1, co=co)
