"""Testability analysis: SCOAP measures and stuck-at fault simulation."""

from .faults import (
    FaultSimulationReport,
    StuckAtFault,
    detection_probabilities,
    enumerate_faults,
    run_fault_simulation,
    simulate_fault,
)
from .scoap import ScoapMeasures, compute_scoap

__all__ = [
    "FaultSimulationReport",
    "StuckAtFault",
    "detection_probabilities",
    "enumerate_faults",
    "run_fault_simulation",
    "simulate_fault",
    "ScoapMeasures",
    "compute_scoap",
]
