"""Stuck-at fault model and bit-parallel fault simulation.

Ground truth for random-pattern testability: a stuck-at fault at a node is
detected by a pattern when some primary output differs from the fault-free
circuit.  Detection probability per fault is the quantity the signal
probabilities approximate (a node stuck at 1 is only detectable by patterns
driving it to 0 *and* propagating the difference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..aig.graph import AND, NOT, PI, GateGraph
from ..sim.bitparallel import ALL_ONES, popcount, random_patterns, simulate_gate_graph

__all__ = [
    "StuckAtFault",
    "enumerate_faults",
    "simulate_fault",
    "FaultSimulationReport",
    "run_fault_simulation",
    "detection_probabilities",
]


@dataclass(frozen=True)
class StuckAtFault:
    """Node output stuck at a constant value."""

    node: int
    stuck_at: int  # 0 or 1

    def __post_init__(self) -> None:
        if self.stuck_at not in (0, 1):
            raise ValueError("stuck_at must be 0 or 1")

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"node{self.node}/sa{self.stuck_at}"


def enumerate_faults(graph: GateGraph) -> List[StuckAtFault]:
    """The full single-stuck-at fault list: two faults per node."""
    return [
        StuckAtFault(v, sa)
        for v in range(graph.num_nodes)
        for sa in (0, 1)
    ]


def simulate_fault(
    graph: GateGraph,
    fault: StuckAtFault,
    packed_inputs: np.ndarray,
    good_values: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Packed per-pattern detection flags for one fault.

    Returns a ``(W,)`` uint64 word array with bit ``p`` set when pattern
    ``p`` detects the fault at some primary output.
    """
    if good_values is None:
        good_values = simulate_gate_graph(graph, packed_inputs)
    faulty = _simulate_with_fault(graph, fault, packed_inputs)
    detect = np.zeros(packed_inputs.shape[1], dtype=np.uint64)
    for o in graph.outputs:
        detect |= good_values[int(o)] ^ faulty[int(o)]
    return detect


def _simulate_with_fault(
    graph: GateGraph, fault: StuckAtFault, packed_inputs: np.ndarray
) -> np.ndarray:
    """Level-wise simulation with one node's output forced constant."""
    words = packed_inputs.shape[1]
    values = np.zeros((graph.num_nodes, words), dtype=np.uint64)
    pi_nodes = np.nonzero(graph.node_type == PI)[0]
    values[pi_nodes] = packed_inputs
    forced = (
        np.zeros(words, dtype=np.uint64)
        if fault.stuck_at == 0
        else np.full(words, ALL_ONES, dtype=np.uint64)
    )
    if int(graph.node_type[fault.node]) == PI:
        values[fault.node] = forced

    fanins = graph.fanin_lists()
    for v in range(graph.num_nodes):
        if v == fault.node:
            values[v] = forced
            continue
        t = int(graph.node_type[v])
        if t == AND:
            a, b = fanins[v]
            values[v] = values[a] & values[b]
        elif t == NOT:
            values[v] = values[fanins[v][0]] ^ ALL_ONES
    return values


@dataclass
class FaultSimulationReport:
    """Aggregate results of simulating a fault list."""

    faults: List[StuckAtFault]
    detections: np.ndarray  # (F,) number of detecting patterns per fault
    num_patterns: int

    @property
    def coverage(self) -> float:
        """Fraction of faults detected by at least one pattern."""
        return float((self.detections > 0).mean()) if len(self.faults) else 0.0

    def undetected(self) -> List[StuckAtFault]:
        return [f for f, d in zip(self.faults, self.detections) if d == 0]

    def detection_probability(self) -> np.ndarray:
        """Per-fault probability that one random pattern detects it."""
        return self.detections / float(self.num_patterns)


def run_fault_simulation(
    graph: GateGraph,
    num_patterns: int = 4096,
    seed: Optional[int] = None,
    faults: Optional[Sequence[StuckAtFault]] = None,
) -> FaultSimulationReport:
    """Simulate the (full, by default) stuck-at fault list on random patterns."""
    num_patterns = max(64, ((num_patterns + 63) // 64) * 64)
    rng = np.random.default_rng(seed)
    packed = random_patterns(graph.num_pis, num_patterns, rng)
    good = simulate_gate_graph(graph, packed)
    fault_list = list(faults) if faults is not None else enumerate_faults(graph)
    detections = np.zeros(len(fault_list), dtype=np.int64)
    for k, fault in enumerate(fault_list):
        flags = simulate_fault(graph, fault, packed, good_values=good)
        detections[k] = int(popcount(flags.reshape(1, -1))[0])
    return FaultSimulationReport(fault_list, detections, num_patterns)


def detection_probabilities(
    graph: GateGraph, num_patterns: int = 4096, seed: Optional[int] = None
) -> Dict[StuckAtFault, float]:
    """Convenience map fault -> random-pattern detection probability."""
    report = run_fault_simulation(graph, num_patterns=num_patterns, seed=seed)
    probs = report.detection_probability()
    return {f: float(p) for f, p in zip(report.faults, probs)}
