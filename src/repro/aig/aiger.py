"""ASCII AIGER (``.aag``) reader and writer.

AIGER is the standard interchange format for And-Inverter Graphs produced by
ABC and consumed by model checkers and SAT flows.  Only the combinational
subset is supported (no latches), matching the paper's combinational setting.

Header: ``aag M I L O A`` with ``M`` = max variable index, ``I`` inputs,
``L`` latches (must be 0), ``O`` outputs, ``A`` AND gates.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

import numpy as np

from .errors import CircuitParseError
from .graph import AIG

__all__ = ["loads", "dumps", "load", "dump", "AigerError"]


class AigerError(CircuitParseError):
    """Raised for malformed AIGER input."""


def _ints(line: str, lineno: int) -> List[int]:
    try:
        return [int(x) for x in line.split()]
    except ValueError:
        raise AigerError(f"expected integers, got {line!r}", line=lineno)


def _statements(lines: Iterable[str]) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, stripped)`` for each non-blank line before ``c``."""
    for lineno, raw in enumerate(lines, start=1):
        ln = raw.strip()
        if ln == "c":  # comment section runs to end of file
            return
        if ln:
            yield lineno, ln


def _parse_lines(lines: Iterable[str], name: str) -> AIG:
    """Streaming parser core: consumes lines one at a time.

    Each statement is validated as it arrives and only the decoded AND
    table is retained, so peak memory is one line of text plus the
    ``(A, 2)`` output array — not a second copy of the file.
    """
    it = _statements(lines)
    header_item = next(it, None)
    if header_item is None:
        raise AigerError("empty AIGER input")
    header_line, header_text = header_item
    header = header_text.split()
    if len(header) != 6 or header[0] != "aag":
        raise AigerError(
            f"bad header {header_text!r} (binary 'aig' not supported)",
            line=header_line,
        )
    counts = _ints(" ".join(header[1:]), header_line)
    m, i, l, o, a = counts
    if min(counts) < 0:
        raise AigerError("negative count in header", line=header_line)
    if l != 0:
        raise AigerError(
            "sequential AIGER (latches) not supported", line=header_line
        )
    if m < i + a:
        raise AigerError(f"header M={m} smaller than I+A={i + a}", line=header_line)

    seen = 0
    last = header_line

    def next_body() -> Tuple[int, str]:
        nonlocal seen, last
        item = next(it, None)
        if item is None:
            raise AigerError(
                f"truncated AIGER body: {seen} lines for I+O+A={i + o + a}",
                line=last,
            )
        seen += 1
        last = item[0]
        return item

    for k in range(i):
        lineno, ln = next_body()
        lits = _ints(ln, lineno)
        if len(lits) != 1 or lits[0] != 2 * (k + 1):
            raise AigerError(
                f"input {k} has literal {ln!r}; expected canonical {2 * (k + 1)}",
                line=lineno,
            )
    outputs = []
    for k in range(o):
        lineno, ln = next_body()
        lits = _ints(ln, lineno)
        if len(lits) != 1:
            raise AigerError(f"bad output line {ln!r}", line=lineno)
        outputs.append(lits[0])
    ands = np.empty((a, 2), dtype=np.int64)
    for k in range(a):
        lineno, ln = next_body()
        lits = _ints(ln, lineno)
        if len(lits) != 3:
            raise AigerError(f"bad AND line {ln!r}", line=lineno)
        lhs, rhs0, rhs1 = lits
        if lhs != 2 * (i + 1 + k):
            raise AigerError(
                f"AND {k} has literal {lhs}; expected canonical {2 * (i + 1 + k)}",
                line=lineno,
            )
        ands[k, 0] = rhs0
        ands[k, 1] = rhs1
    try:
        return AIG(i, ands, outputs, name)
    except ValueError as exc:
        raise AigerError(str(exc)) from exc


def loads(text: str, name: str = "aiger") -> AIG:
    """Parse ASCII AIGER text into an :class:`AIG`.

    Input variables must be numbered ``1..I`` and AND variables
    ``I+1..I+A`` in topological order (the normal form ABC emits).
    Malformed input raises :class:`AigerError` with the offending
    1-based line number.
    """
    return _parse_lines(text.splitlines(), name)


def dumps(aig: AIG) -> str:
    """Serialise an :class:`AIG` to ASCII AIGER text."""
    i, a, o = aig.num_pis, aig.num_ands, aig.num_outputs
    lines = [f"aag {i + a} {i} 0 {o} {a}"]
    for k in range(i):
        lines.append(str(2 * (k + 1)))
    for lit in aig.outputs:
        lines.append(str(lit))
    for k in range(a):
        lhs = 2 * (i + 1 + k)
        lines.append(f"{lhs} {int(aig.ands[k, 0])} {int(aig.ands[k, 1])}")
    lines.append(f"c\n{aig.name}")
    return "\n".join(lines) + "\n"


def load(path) -> AIG:
    """Read an ``.aag`` file from ``path``.

    The file is streamed line by line — parse memory stays O(one line)
    plus the decoded AND table, so multi-hundred-MB AIGER dumps never
    hold two text copies in RAM.
    """
    with open(path, "r", encoding="utf-8") as f:
        return _parse_lines(f, name=str(path))


def dump(aig: AIG, path) -> None:
    """Write ``aig`` to ``path`` in ASCII AIGER format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps(aig))
