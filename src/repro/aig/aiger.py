"""ASCII AIGER (``.aag``) reader and writer.

AIGER is the standard interchange format for And-Inverter Graphs produced by
ABC and consumed by model checkers and SAT flows.  Only the combinational
subset is supported (no latches), matching the paper's combinational setting.

Header: ``aag M I L O A`` with ``M`` = max variable index, ``I`` inputs,
``L`` latches (must be 0), ``O`` outputs, ``A`` AND gates.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .graph import AIG

__all__ = ["loads", "dumps", "load", "dump", "AigerError"]


class AigerError(ValueError):
    """Raised for malformed AIGER input."""


def loads(text: str, name: str = "aiger") -> AIG:
    """Parse ASCII AIGER text into an :class:`AIG`.

    Input variables must be numbered ``1..I`` and AND variables
    ``I+1..I+A`` in topological order (the normal form ABC emits).
    """
    lines = [ln.strip() for ln in text.splitlines()]
    for k, ln in enumerate(lines):
        if ln == "c":  # comment section runs to end of file
            lines = lines[:k]
            break
    lines = [ln for ln in lines if ln]
    if not lines:
        raise AigerError("empty AIGER input")
    header = lines[0].split()
    if len(header) != 6 or header[0] != "aag":
        raise AigerError(f"bad header {lines[0]!r} (binary 'aig' not supported)")
    m, i, l, o, a = (int(x) for x in header[1:])
    if l != 0:
        raise AigerError("sequential AIGER (latches) not supported")
    if m < i + a:
        raise AigerError(f"header M={m} smaller than I+A={i + a}")
    body = lines[1:]
    if len(body) < i + o + a:
        raise AigerError("truncated AIGER body")

    input_lits = [int(body[k]) for k in range(i)]
    for k, lit in enumerate(input_lits):
        if lit != 2 * (k + 1):
            raise AigerError(
                f"input {k} has literal {lit}; expected canonical {2 * (k + 1)}"
            )
    outputs = [int(body[i + k]) for k in range(o)]
    ands: List[List[int]] = []
    for k in range(a):
        parts = body[i + o + k].split()
        if len(parts) != 3:
            raise AigerError(f"bad AND line {body[i + o + k]!r}")
        lhs, rhs0, rhs1 = (int(x) for x in parts)
        if lhs != 2 * (i + 1 + k):
            raise AigerError(
                f"AND {k} has literal {lhs}; expected canonical {2 * (i + 1 + k)}"
            )
        ands.append([rhs0, rhs1])
    return AIG(i, np.asarray(ands, dtype=np.int64).reshape(-1, 2), outputs, name)


def dumps(aig: AIG) -> str:
    """Serialise an :class:`AIG` to ASCII AIGER text."""
    i, a, o = aig.num_pis, aig.num_ands, aig.num_outputs
    lines = [f"aag {i + a} {i} 0 {o} {a}"]
    for k in range(i):
        lines.append(str(2 * (k + 1)))
    for lit in aig.outputs:
        lines.append(str(lit))
    for k in range(a):
        lhs = 2 * (i + 1 + k)
        lines.append(f"{lhs} {int(aig.ands[k, 0])} {int(aig.ands[k, 1])}")
    lines.append(f"c\n{aig.name}")
    return "\n".join(lines) + "\n"


def load(path) -> AIG:
    """Read an ``.aag`` file from ``path``."""
    with open(path, "r", encoding="utf-8") as f:
        return loads(f.read(), name=str(path))


def dump(aig: AIG, path) -> None:
    """Write ``aig`` to ``path`` in ASCII AIGER format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps(aig))
