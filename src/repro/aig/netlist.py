"""Generic gate-level netlist intermediate representation.

The paper's input circuits are heterogeneous gate-level netlists (mapped with
various technology libraries) or RTL that has been elaborated to gates.  This
module provides the pre-synthesis IR: a named, multi-fanin, multi-type gate
network.  The synthesis front end (:mod:`repro.synth`) lowers a ``Netlist``
into the unified AIG form that DeepGate learns on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .errors import CircuitParseError

__all__ = ["GateType", "Gate", "Netlist", "NetlistError"]


class GateType:
    """Enumeration of supported gate types.

    Plain string constants (not :class:`enum.Enum`) keep the netlist cheap to
    construct and trivially serialisable to ``.bench`` files.
    """

    INPUT = "INPUT"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    MUX = "MUX"  # fanins: (select, if_false, if_true)

    ALL = (INPUT, CONST0, CONST1, BUF, NOT, AND, NAND, OR, NOR, XOR, XNOR, MUX)

    #: gate types with a fixed arity; ``None`` entries accept 2+ fanins.
    _ARITY = {
        INPUT: 0,
        CONST0: 0,
        CONST1: 0,
        BUF: 1,
        NOT: 1,
        MUX: 3,
    }

    @classmethod
    def arity(cls, gate_type: str) -> Optional[int]:
        """Return the required fan-in count, or ``None`` for variadic gates."""
        if gate_type not in cls.ALL:
            raise NetlistError(f"unknown gate type {gate_type!r}")
        return cls._ARITY.get(gate_type)


class NetlistError(CircuitParseError):
    """Raised for malformed netlists (unknown nets, bad arity, cycles)."""


@dataclass
class Gate:
    """A single named gate: output net ``name`` driven by ``gate_type``."""

    name: str
    gate_type: str
    fanins: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        required = GateType.arity(self.gate_type)
        actual = len(self.fanins)
        if required is not None and actual != required:
            raise NetlistError(
                f"gate {self.name!r} of type {self.gate_type} needs "
                f"{required} fanins, got {actual}"
            )
        if required is None and actual < 2:
            raise NetlistError(
                f"gate {self.name!r} of type {self.gate_type} needs >=2 "
                f"fanins, got {actual}"
            )


class Netlist:
    """A combinational gate-level netlist.

    Nets are identified by string names.  Every net is driven by exactly one
    gate.  The netlist is a DAG; cycles are rejected by :meth:`validate`.

    Example
    -------
    >>> nl = Netlist("half_adder")
    >>> nl.add_input("a"); nl.add_input("b")
    >>> nl.add_gate("sum", GateType.XOR, ["a", "b"])
    >>> nl.add_gate("carry", GateType.AND, ["a", "b"])
    >>> nl.set_outputs(["sum", "carry"])
    """

    def __init__(self, name: str = "netlist"):
        self.name = name
        self._gates: Dict[str, Gate] = {}
        self._inputs: List[str] = []
        self._outputs: List[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net and return its name."""
        self._add(Gate(name, GateType.INPUT))
        self._inputs.append(name)
        return name

    def add_gate(self, name: str, gate_type: str, fanins: Sequence[str] = ()) -> str:
        """Add a gate driving net ``name`` and return the net name."""
        if gate_type == GateType.INPUT:
            raise NetlistError("use add_input() for primary inputs")
        self._add(Gate(name, gate_type, tuple(fanins)))
        return name

    def set_outputs(self, names: Iterable[str]) -> None:
        """Declare the primary outputs (replaces any previous list)."""
        self._outputs = list(names)

    def add_output(self, name: str) -> None:
        """Append one primary output."""
        self._outputs.append(name)

    def _add(self, gate: Gate) -> None:
        if gate.name in self._gates:
            raise NetlistError(f"net {gate.name!r} already driven")
        self._gates[gate.name] = gate

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[str]:
        return list(self._inputs)

    @property
    def outputs(self) -> List[str]:
        return list(self._outputs)

    @property
    def gates(self) -> List[Gate]:
        return list(self._gates.values())

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise NetlistError(f"no gate drives net {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def num_gates(self, *, exclude_inputs: bool = True) -> int:
        """Number of gates, excluding primary inputs by default."""
        if exclude_inputs:
            return sum(
                1 for g in self._gates.values() if g.gate_type != GateType.INPUT
            )
        return len(self._gates)

    def gate_type_counts(self) -> Dict[str, int]:
        """Histogram of gate types (used for Table IV's imbalance analysis)."""
        counts: Dict[str, int] = {}
        for g in self._gates.values():
            counts[g.gate_type] = counts.get(g.gate_type, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that every fan-in exists, outputs exist, and no cycles."""
        for g in self._gates.values():
            for f in g.fanins:
                if f not in self._gates:
                    raise NetlistError(
                        f"gate {g.name!r} references undriven net {f!r}"
                    )
        for o in self._outputs:
            if o not in self._gates:
                raise NetlistError(f"output {o!r} is not driven")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[str]:
        """Return net names in topological order (inputs first).

        Raises
        ------
        NetlistError
            If the netlist contains a combinational cycle.
        """
        indegree = {name: len(g.fanins) for name, g in self._gates.items()}
        fanouts: Dict[str, List[str]] = {name: [] for name in self._gates}
        for name, g in self._gates.items():
            for f in g.fanins:
                if f in fanouts:
                    fanouts[f].append(name)
        ready = [n for n, d in indegree.items() if d == 0]
        order: List[str] = []
        while ready:
            n = ready.pop()
            order.append(n)
            for s in fanouts[n]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    ready.append(s)
        if len(order) != len(self._gates):
            raise NetlistError("netlist contains a combinational cycle")
        return order

    def levels(self) -> Dict[str, int]:
        """Logic level of each net (inputs and constants at level 0)."""
        level: Dict[str, int] = {}
        for name in self.topological_order():
            g = self._gates[name]
            if not g.fanins:
                level[name] = 0
            else:
                level[name] = 1 + max(level[f] for f in g.fanins)
        return level

    def depth(self) -> int:
        """Maximum logic level over all nets (0 for input-only netlists)."""
        lv = self.levels()
        return max(lv.values()) if lv else 0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, input_values: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Evaluate the netlist on packed-word input values.

        Parameters
        ----------
        input_values:
            Maps each primary-input name to a numpy array (any shape) of
            ``uint64`` words (64 patterns per word) or booleans.  All arrays
            must share one shape.

        Returns
        -------
        dict
            Net name -> value array for *every* net.
        """
        values: Dict[str, np.ndarray] = {}
        shape: Optional[Tuple[int, ...]] = None
        for name in self._inputs:
            if name not in input_values:
                raise NetlistError(f"missing value for input {name!r}")
            arr = np.asarray(input_values[name])
            if shape is None:
                shape = arr.shape
            elif arr.shape != shape:
                raise NetlistError("input value arrays must share one shape")
            values[name] = arr
        if shape is None:
            shape = (1,)
        is_packed = any(v.dtype == np.uint64 for v in values.values()) or not values
        ones = (
            np.full(shape, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
            if is_packed
            else np.ones(shape, dtype=bool)
        )
        zeros = np.zeros(shape, dtype=np.uint64 if is_packed else bool)

        for name in self.topological_order():
            g = self._gates[name]
            if g.gate_type == GateType.INPUT:
                continue
            values[name] = _eval_gate(g, values, ones, zeros)
        return values

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self) -> "Netlist":
        """Deep copy of the netlist."""
        out = Netlist(self.name)
        for name in self._inputs:
            out.add_input(name)
        for g in self._gates.values():
            if g.gate_type != GateType.INPUT:
                out.add_gate(g.name, g.gate_type, g.fanins)
        out.set_outputs(self._outputs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Netlist({self.name!r}, inputs={len(self._inputs)}, "
            f"gates={self.num_gates()}, outputs={len(self._outputs)})"
        )


def _eval_gate(
    gate: Gate,
    values: Mapping[str, np.ndarray],
    ones: np.ndarray,
    zeros: np.ndarray,
) -> np.ndarray:
    """Compute one gate's output from already-computed fan-in values."""
    t = gate.gate_type
    if t == GateType.CONST0:
        return zeros
    if t == GateType.CONST1:
        return ones
    ins = [values[f] for f in gate.fanins]
    if t == GateType.BUF:
        return ins[0]
    if t == GateType.NOT:
        return ins[0] ^ ones
    if t == GateType.MUX:
        sel, a, b = ins
        return (sel & b) | ((sel ^ ones) & a)
    acc = ins[0]
    if t in (GateType.AND, GateType.NAND):
        for v in ins[1:]:
            acc = acc & v
    elif t in (GateType.OR, GateType.NOR):
        for v in ins[1:]:
            acc = acc | v
    elif t in (GateType.XOR, GateType.XNOR):
        for v in ins[1:]:
            acc = acc ^ v
    else:  # pragma: no cover - guarded by Gate.__post_init__
        raise NetlistError(f"unknown gate type {t!r}")
    if t in (GateType.NAND, GateType.NOR, GateType.XNOR):
        acc = acc ^ ones
    return acc
