"""Structural gate-level Verilog reader and writer.

Real benchmark distributions (IWLS'05, OpenCores) ship gate-level Verilog;
this module handles the structural subset those files use:

* one ``module`` with ``input`` / ``output`` / ``wire`` declarations
  (scalar nets only — vectors must be bit-blasted upstream);
* gate primitive instances: ``and/or/nand/nor/xor/xnor/not/buf
  (out, in...);``
* continuous assignments of the form ``assign y = x;``.

Behavioural constructs are rejected with a clear error.
"""

from __future__ import annotations

import re
from typing import List

from .errors import CircuitParseError
from .netlist import GateType, Netlist, NetlistError

__all__ = ["loads", "dumps", "load", "dump", "VerilogError"]


class VerilogError(CircuitParseError):
    """Raised for Verilog outside the supported structural subset."""


_PRIMITIVES = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_TYPE_TO_PRIMITIVE = {v: k for k, v in _PRIMITIVES.items()}

_MODULE_RE = re.compile(
    r"module\s+(?P<name>[A-Za-z_][\w$]*)\s*\((?P<ports>[^)]*)\)\s*;",
    re.S,
)
_DECL_RE = re.compile(
    r"\b(?P<kind>input|output|wire)\s+(?P<nets>[^;]+);",
    re.S,
)
_GATE_RE = re.compile(
    r"\b(?P<prim>and|nand|or|nor|xor|xnor|not|buf)\s+"
    r"(?:(?P<inst>[A-Za-z_][\w$]*)\s+)?\(\s*(?P<conns>[^;]*?)\s*\)\s*;",
    re.S,
)
_ASSIGN_RE = re.compile(
    r"\bassign\s+(?P<lhs>[A-Za-z_][\w$]*)\s*=\s*(?P<rhs>[^;]+);",
    re.S,
)

_UNSUPPORTED = re.compile(r"\b(always|reg|if|case|initial|posedge|negedge)\b")


def _strip_comments(text: str) -> str:
    # comments are blanked rather than deleted (line comments keep their
    # newline; block comments collapse to their newlines) so that match
    # offsets still map to source line numbers for error reporting
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(
        r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"), text, flags=re.S
    )


def loads(text: str) -> Netlist:
    """Parse structural Verilog source into a :class:`Netlist`.

    Input outside the structural subset raises :class:`VerilogError`
    with the 1-based source line of the offending construct where it can
    be located.
    """
    text = _strip_comments(text)

    def lineno(offset: int) -> int:
        return text.count("\n", 0, offset) + 1

    bad = _UNSUPPORTED.search(text)
    if bad:
        raise VerilogError(
            f"behavioural construct {bad.group(0)!r} not supported; this "
            "reader handles the structural gate-level subset only",
            line=lineno(bad.start()),
        )
    m = _MODULE_RE.search(text)
    if m is None:
        raise VerilogError("no module declaration found")
    netlist = Netlist(m.group("name"))
    base = m.end()
    body = text[base:]

    inputs: List[str] = []
    outputs: List[str] = []
    for decl in _DECL_RE.finditer(body):
        nets = [n.strip() for n in decl.group("nets").split(",") if n.strip()]
        for net in nets:
            if not re.fullmatch(r"[A-Za-z_][\w$]*", net):
                raise VerilogError(
                    f"unsupported net declaration {net!r} (vectors must be "
                    "bit-blasted)",
                    line=lineno(base + decl.start()),
                )
        if decl.group("kind") == "input":
            inputs.extend(nets)
        elif decl.group("kind") == "output":
            outputs.extend(nets)

    for name in inputs:
        netlist.add_input(name)

    for gate in _GATE_RE.finditer(body):
        at = lineno(base + gate.start())
        prim = gate.group("prim")
        conns = [c.strip() for c in gate.group("conns").split(",")]
        if len(conns) < 2:
            raise VerilogError(f"gate {prim} needs an output and inputs", line=at)
        out, ins = conns[0], conns[1:]
        gate_type = _PRIMITIVES[prim]
        if gate_type in (GateType.NOT, GateType.BUF) and len(ins) != 1:
            raise VerilogError(f"{prim} takes exactly one input", line=at)
        try:
            netlist.add_gate(out, gate_type, ins)
        except NetlistError as exc:
            raise VerilogError(str(exc), line=at) from exc

    for assign in _ASSIGN_RE.finditer(body):
        at = lineno(base + assign.start())
        rhs = assign.group("rhs").strip()
        lhs = assign.group("lhs")
        try:
            if rhs == "1'b0":
                netlist.add_gate(lhs, GateType.CONST0)
            elif rhs == "1'b1":
                netlist.add_gate(lhs, GateType.CONST1)
            elif re.fullmatch(r"[A-Za-z_][\w$]*", rhs):
                netlist.add_gate(lhs, GateType.BUF, [rhs])
            elif re.fullmatch(r"[~!]\s*[A-Za-z_][\w$]*", rhs):
                netlist.add_gate(lhs, GateType.NOT, [rhs.lstrip("~!").strip()])
            else:
                raise VerilogError(
                    f"unsupported assign expression {rhs!r} (structural subset)",
                    line=at,
                )
        except VerilogError:
            raise
        except NetlistError as exc:
            raise VerilogError(str(exc), line=at) from exc

    netlist.set_outputs(outputs)
    netlist.validate()
    return netlist


def dumps(netlist: Netlist) -> str:
    """Serialise a :class:`Netlist` to structural Verilog."""
    module_name = re.sub(r"[^\w$]", "_", netlist.name) or "top"
    inputs = netlist.inputs
    outputs = netlist.outputs
    ports = inputs + [o for o in outputs if o not in inputs]
    wires = [
        g.name
        for g in netlist.gates
        if g.gate_type != GateType.INPUT and g.name not in outputs
    ]
    lines = [f"module {module_name} ({', '.join(ports)});"]
    if inputs:
        lines.append(f"  input {', '.join(inputs)};")
    declared_out = [o for o in outputs if o not in inputs]
    if declared_out:
        lines.append(f"  output {', '.join(declared_out)};")
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    lines.append("")
    counter = 0
    for name in netlist.topological_order():
        gate = netlist.gate(name)
        t = gate.gate_type
        if t == GateType.INPUT:
            continue
        if t == GateType.CONST0:
            lines.append(f"  assign {name} = 1'b0;")
        elif t == GateType.CONST1:
            lines.append(f"  assign {name} = 1'b1;")
        elif t == GateType.MUX:
            raise VerilogError(
                "MUX gates have no Verilog primitive; run "
                "datagen.normalize.normalize_to_library first"
            )
        else:
            prim = _TYPE_TO_PRIMITIVE[t]
            counter += 1
            conns = ", ".join([name] + list(gate.fanins))
            lines.append(f"  {prim} g{counter} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def load(path) -> Netlist:
    """Read structural Verilog from ``path``."""
    with open(path, "r", encoding="utf-8") as f:
        return loads(f.read())


def dump(netlist: Netlist, path) -> None:
    """Write ``netlist`` to ``path`` as structural Verilog."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps(netlist))
