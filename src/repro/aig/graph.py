"""And-Inverter Graph (AIG) core data structures.

Two representations are provided:

``AIG``
    The classical compact form used by synthesis tools: two-input AND nodes
    plus *complemented edges*.  Literals follow the AIGER convention
    ``lit = 2 * var + negated`` with variable 0 reserved for constant FALSE.
    This is the form :mod:`repro.synth` produces and :mod:`repro.sim`
    simulates.

``GateGraph``
    The explicit-node DAG that DeepGate's GNN consumes: every node is a
    primary input, a 2-input AND gate, or a 1-input NOT gate (the paper's
    3-way one-hot ``x_v``).  Inverters that are implicit (complemented edges)
    in the ``AIG`` become real nodes here, shared per literal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AIG",
    "AIGBuilder",
    "GateGraph",
    "PI",
    "AND",
    "NOT",
    "NODE_TYPE_NAMES",
    "lit_var",
    "lit_is_negated",
    "lit_make",
    "lit_negate",
    "CONST0_LIT",
    "CONST1_LIT",
]

# ---------------------------------------------------------------------------
# literal helpers (AIGER convention)
# ---------------------------------------------------------------------------

CONST0_LIT = 0
CONST1_LIT = 1


def lit_make(var: int, negated: bool = False) -> int:
    """Build a literal from a variable index and a complement flag."""
    return 2 * var + int(negated)


def lit_var(lit: int) -> int:
    """Variable index of a literal."""
    return lit >> 1


def lit_is_negated(lit: int) -> bool:
    """True when the literal carries a complement (inverter) edge."""
    return bool(lit & 1)


def lit_negate(lit: int) -> int:
    """Complement a literal."""
    return lit ^ 1


# ---------------------------------------------------------------------------
# AIG
# ---------------------------------------------------------------------------


class AIG:
    """An immutable combinational And-Inverter Graph.

    Variables are numbered ``0`` (constant FALSE), ``1 .. num_pis`` (primary
    inputs), then one variable per AND node in topological order.

    Parameters
    ----------
    num_pis:
        Number of primary inputs.
    ands:
        ``(n_ands, 2)`` int array; row ``i`` holds the two fan-in literals of
        AND variable ``num_pis + 1 + i``.  Fan-ins must reference earlier
        variables (topological order).
    outputs:
        Output literals.
    name:
        Optional design name, carried through transformations.
    """

    def __init__(
        self,
        num_pis: int,
        ands: np.ndarray,
        outputs: Sequence[int],
        name: str = "aig",
    ):
        self.name = name
        self.num_pis = int(num_pis)
        self.ands = np.asarray(ands, dtype=np.int64).reshape(-1, 2)
        self.outputs = list(int(o) for o in outputs)
        self._levels: Optional[np.ndarray] = None
        self._validate()

    # -- construction helpers -------------------------------------------
    def _validate(self) -> None:
        n_vars = self.num_vars
        first_and_var = 1 + self.num_pis
        for i, (a, b) in enumerate(self.ands):
            var = first_and_var + i
            for lit in (a, b):
                if lit < 0 or lit_var(int(lit)) >= var:
                    raise ValueError(
                        f"AND var {var}: fan-in literal {lit} is not an "
                        "earlier variable (AIG must be topologically ordered)"
                    )
        for o in self.outputs:
            if o < 0 or lit_var(o) >= n_vars:
                raise ValueError(f"output literal {o} out of range")

    # -- sizes -----------------------------------------------------------
    @property
    def num_ands(self) -> int:
        return int(self.ands.shape[0])

    @property
    def num_vars(self) -> int:
        """Total variables including constant-0 var."""
        return 1 + self.num_pis + self.num_ands

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def pi_var(self, i: int) -> int:
        """Variable index of primary input ``i`` (0-based)."""
        if not 0 <= i < self.num_pis:
            raise IndexError(f"PI index {i} out of range")
        return 1 + i

    def pi_lit(self, i: int) -> int:
        """Positive literal of primary input ``i``."""
        return lit_make(self.pi_var(i))

    def and_var(self, i: int) -> int:
        """Variable index of AND node ``i`` (0-based)."""
        if not 0 <= i < self.num_ands:
            raise IndexError(f"AND index {i} out of range")
        return 1 + self.num_pis + i

    def is_pi_var(self, var: int) -> bool:
        return 1 <= var <= self.num_pis

    def is_and_var(self, var: int) -> bool:
        return var > self.num_pis and var < self.num_vars

    # -- structure --------------------------------------------------------
    def levels(self) -> np.ndarray:
        """Per-variable logic level: constants and PIs at 0, AND at 1+max."""
        if self._levels is None:
            lv = np.zeros(self.num_vars, dtype=np.int64)
            base = 1 + self.num_pis
            for i, (a, b) in enumerate(self.ands):
                lv[base + i] = 1 + max(lv[lit_var(int(a))], lv[lit_var(int(b))])
            self._levels = lv
        return self._levels

    def depth(self) -> int:
        """Maximum AND level over the whole graph."""
        return int(self.levels().max()) if self.num_vars else 0

    def fanout_counts(self) -> np.ndarray:
        """Per-variable count of references (AND fan-ins plus outputs)."""
        counts = np.zeros(self.num_vars, dtype=np.int64)
        if self.num_ands:
            vars_ = (self.ands >> 1).ravel()
            np.add.at(counts, vars_, 1)
        for o in self.outputs:
            counts[lit_var(o)] += 1
        return counts

    def uses_constant(self) -> bool:
        """True if any AND fan-in or output references constant FALSE/TRUE."""
        if any(lit_var(o) == 0 for o in self.outputs):
            return True
        return bool(self.num_ands and ((self.ands >> 1) == 0).any())

    def stats(self) -> Dict[str, int]:
        """Summary statistics (used for Table I style reporting)."""
        return {
            "pis": self.num_pis,
            "ands": self.num_ands,
            "outputs": self.num_outputs,
            "depth": self.depth(),
        }

    def copy(self, name: Optional[str] = None) -> "AIG":
        return AIG(
            self.num_pis, self.ands.copy(), list(self.outputs), name or self.name
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AIG({self.name!r}, pis={self.num_pis}, ands={self.num_ands}, "
            f"outputs={self.num_outputs}, depth={self.depth()})"
        )

    # -- conversion --------------------------------------------------------
    def to_gate_graph(self) -> "GateGraph":
        """Expand complemented edges into explicit NOT nodes.

        Returns the :class:`GateGraph` DeepGate trains on.  Raises if the AIG
        still references constants: run :func:`repro.synth.synthesize` first,
        which propagates constants away.
        """
        return GateGraph.from_aig(self)


class AIGBuilder:
    """Incremental AIG constructor (no structural hashing — see synth.strash).

    >>> b = AIGBuilder(num_pis=2)
    >>> a, bb = b.pi_lit(0), b.pi_lit(1)
    >>> g = b.add_and(a, bb)
    >>> b.add_output(g)
    >>> aig = b.build("and2")
    """

    def __init__(self, num_pis: int, name: str = "aig"):
        self.name = name
        self.num_pis = num_pis
        self._ands: List[Tuple[int, int]] = []
        self._outputs: List[int] = []

    def pi_lit(self, i: int) -> int:
        if not 0 <= i < self.num_pis:
            raise IndexError(f"PI index {i} out of range")
        return lit_make(1 + i)

    def add_and(self, a: int, b: int) -> int:
        """Append an AND node and return its positive literal."""
        var = 1 + self.num_pis + len(self._ands)
        for lit in (a, b):
            if lit < 0 or lit_var(lit) >= var:
                raise ValueError(f"fan-in literal {lit} not yet defined")
        self._ands.append((a, b))
        return lit_make(var)

    def add_output(self, lit: int) -> None:
        self._outputs.append(lit)

    def build(self, name: Optional[str] = None) -> AIG:
        ands = np.asarray(self._ands, dtype=np.int64).reshape(-1, 2)
        return AIG(self.num_pis, ands, self._outputs, name or self.name)


# ---------------------------------------------------------------------------
# GateGraph: explicit PI / AND / NOT node DAG for the GNN
# ---------------------------------------------------------------------------

PI = 0
AND = 1
NOT = 2
NODE_TYPE_NAMES = ("PI", "AND", "NOT")


@dataclass
class GateGraph:
    """Explicit-node circuit DAG with only PI, AND and NOT gates.

    Nodes are numbered in topological order.  ``edges[k] = (u, v)`` means
    node ``u`` feeds node ``v``.  This is the graph DeepGate's message
    passing runs over; skip connections for reconvergence (paper §III-D) are
    added later by :mod:`repro.graphdata` using
    :func:`repro.sim.analysis.find_reconvergences`.
    """

    node_type: np.ndarray  # (N,) int8, values in {PI, AND, NOT}
    edges: np.ndarray  # (E, 2) int64, (src, dst)
    outputs: np.ndarray  # (num_pos,) node ids of primary outputs
    name: str = "graph"
    #: positive AIG literal each node computes (provenance / label lookup)
    source_lit: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    # -- sizes -----------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.node_type.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def num_pis(self) -> int:
        return int((self.node_type == PI).sum())

    def type_counts(self) -> Dict[str, int]:
        return {
            NODE_TYPE_NAMES[t]: int((self.node_type == t).sum())
            for t in (PI, AND, NOT)
        }

    # -- structure --------------------------------------------------------
    def levels(self) -> np.ndarray:
        """Per-node logic level; PIs at level 0, every edge adds one."""
        lv = np.zeros(self.num_nodes, dtype=np.int64)
        fanins = self.fanin_lists()
        for v in range(self.num_nodes):
            if fanins[v]:
                lv[v] = 1 + max(lv[u] for u in fanins[v])
        return lv

    def depth(self) -> int:
        return int(self.levels().max()) if self.num_nodes else 0

    def fanin_lists(self) -> List[List[int]]:
        """Predecessor list per node."""
        fanins: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for u, v in self.edges:
            fanins[int(v)].append(int(u))
        return fanins

    def fanout_lists(self) -> List[List[int]]:
        """Successor list per node."""
        fanouts: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for u, v in self.edges:
            fanouts[int(u)].append(int(v))
        return fanouts

    def validate(self) -> None:
        """Check arity (AND=2, NOT=1, PI=0) and topological edge order."""
        fanins = self.fanin_lists()
        for v in range(self.num_nodes):
            t = int(self.node_type[v])
            want = {PI: 0, AND: 2, NOT: 1}[t]
            if len(fanins[v]) != want:
                raise ValueError(
                    f"node {v} ({NODE_TYPE_NAMES[t]}) has {len(fanins[v])} "
                    f"fanins, expected {want}"
                )
            for u in fanins[v]:
                if u >= v:
                    raise ValueError(f"edge ({u}->{v}) violates topological order")
        for o in self.outputs:
            if not 0 <= int(o) < self.num_nodes:
                raise ValueError(f"output node {o} out of range")

    # -- construction ------------------------------------------------------
    @classmethod
    def from_aig(cls, aig: AIG) -> "GateGraph":
        """Materialise inverters of an :class:`AIG` as shared NOT nodes."""
        if aig.uses_constant():
            raise ValueError(
                "AIG references constants; run repro.synth.synthesize() to "
                "propagate them before building a GateGraph"
            )
        node_type: List[int] = []
        edges: List[Tuple[int, int]] = []
        source_lit: List[int] = []
        var_node: Dict[int, int] = {}
        not_node: Dict[int, int] = {}  # var -> NOT-node id

        def new_node(t: int, lit: int) -> int:
            node_type.append(t)
            source_lit.append(lit)
            return len(node_type) - 1

        for i in range(aig.num_pis):
            var_node[aig.pi_var(i)] = new_node(PI, aig.pi_lit(i))

        def node_of(lit: int) -> int:
            """Node computing ``lit``, creating a NOT node on demand."""
            var = lit_var(lit)
            if not lit_is_negated(lit):
                return var_node[var]
            nid = not_node.get(var)
            if nid is None:
                nid = new_node(NOT, lit)
                not_node[var] = nid
                edges.append((var_node[var], nid))
            return nid

        for i in range(aig.num_ands):
            a, b = (int(x) for x in aig.ands[i])
            na, nb = node_of(a), node_of(b)
            var = aig.and_var(i)
            nid = new_node(AND, lit_make(var))
            var_node[var] = nid
            edges.append((na, nid))
            edges.append((nb, nid))

        outputs = [node_of(o) for o in aig.outputs]
        g = cls(
            node_type=np.asarray(node_type, dtype=np.int8),
            edges=np.asarray(edges, dtype=np.int64).reshape(-1, 2),
            outputs=np.asarray(outputs, dtype=np.int64),
            name=aig.name,
            source_lit=np.asarray(source_lit, dtype=np.int64),
        )
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        c = self.type_counts()
        return (
            f"GateGraph({self.name!r}, nodes={self.num_nodes} "
            f"[PI={c['PI']}, AND={c['AND']}, NOT={c['NOT']}], "
            f"edges={self.num_edges})"
        )
