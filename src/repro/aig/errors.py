"""Shared error type for the circuit text parsers.

Every reader in :mod:`repro.aig` (AIGER, BENCH, structural Verilog) raises
a subclass of :class:`CircuitParseError` on malformed input, carrying the
1-based ``line`` number of the offending text when it is known.  Untrusted
input — ``repro serve`` accepts circuits over HTTP — can therefore be
rejected with a structured "line N: reason" diagnostic instead of a bare
``ValueError`` (or worse, an ``int()`` traceback) from deep inside a
parser.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["CircuitParseError"]


class CircuitParseError(ValueError):
    """Malformed circuit text; ``line`` locates the fault when known."""

    def __init__(self, message: str, line: Optional[int] = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
