"""Circuit data structures: gate-level netlists, AIGs and gate graphs."""

from .graph import (
    AIG,
    AIGBuilder,
    GateGraph,
    PI,
    AND,
    NOT,
    NODE_TYPE_NAMES,
    CONST0_LIT,
    CONST1_LIT,
    lit_is_negated,
    lit_make,
    lit_negate,
    lit_var,
)
from .errors import CircuitParseError
from .netlist import Gate, GateType, Netlist, NetlistError
from . import aiger, bench, verilog

__all__ = [
    "AIG",
    "AIGBuilder",
    "GateGraph",
    "PI",
    "AND",
    "NOT",
    "NODE_TYPE_NAMES",
    "CONST0_LIT",
    "CONST1_LIT",
    "lit_is_negated",
    "lit_make",
    "lit_negate",
    "lit_var",
    "CircuitParseError",
    "Gate",
    "GateType",
    "Netlist",
    "NetlistError",
    "aiger",
    "bench",
    "verilog",
]
