"""ISCAS-89 ``.bench`` format reader and writer for gate-level netlists.

The ``.bench`` format is the lingua franca of the benchmark suites the paper
draws circuits from (ISCAS, ITC'99 distributions).  Example::

    # half adder
    INPUT(a)
    INPUT(b)
    OUTPUT(sum)
    OUTPUT(carry)
    sum = XOR(a, b)
    carry = AND(a, b)
"""

from __future__ import annotations

import re
from typing import Iterable, List

from .netlist import GateType, Netlist, NetlistError

__all__ = ["loads", "dumps", "load", "dump"]

_LINE_RE = re.compile(
    r"^\s*(?:"
    r"(?P<io>INPUT|OUTPUT)\s*\(\s*(?P<io_name>[^\s()]+)\s*\)"
    r"|(?P<lhs>[^\s=]+)\s*=\s*(?P<op>[A-Za-z01]+)\s*\(\s*(?P<args>[^()]*)\)"
    r")\s*$"
)

#: .bench operator name -> GateType (both directions are 1:1 except aliases)
_OP_TO_TYPE = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "MUX": GateType.MUX,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
    "GND": GateType.CONST0,
    "VDD": GateType.CONST1,
}

_TYPE_TO_OP = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.MUX: "MUX",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}


def _parse_lines(lines: Iterable[str], name: str) -> Netlist:
    """Streaming parser core shared by :func:`loads` and :func:`load`.

    Consumes raw lines one at a time (a file object or ``splitlines``
    list both work) so parse memory is one line of text plus the
    growing :class:`Netlist` — never a second copy of the source.
    """
    netlist = Netlist(name)
    outputs: List[str] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise NetlistError(f"cannot parse {raw.strip()!r}", line=lineno)
        try:
            if m.group("io"):
                if m.group("io") == "INPUT":
                    netlist.add_input(m.group("io_name"))
                else:
                    outputs.append(m.group("io_name"))
                continue
            op = m.group("op").upper()
            gate_type = _OP_TO_TYPE.get(op)
            if gate_type is None:
                raise NetlistError(f"unknown operator {op!r}")
            args = [a.strip() for a in m.group("args").split(",") if a.strip()]
            netlist.add_gate(m.group("lhs"), gate_type, args)
        except NetlistError as exc:
            if exc.line is not None:
                raise
            raise NetlistError(str(exc), line=lineno) from exc
    netlist.set_outputs(outputs)
    netlist.validate()
    return netlist


def loads(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` source text into a :class:`Netlist`.

    Malformed input raises :class:`NetlistError` carrying the 1-based
    line number of the offending statement (netlist-level faults found
    only at final validation — undriven nets, cycles — have none).
    """
    return _parse_lines(text.splitlines(), name)


def dumps(netlist: Netlist) -> str:
    """Serialise a :class:`Netlist` to ``.bench`` source text."""
    lines = [f"# {netlist.name}"]
    for i in netlist.inputs:
        lines.append(f"INPUT({i})")
    for o in netlist.outputs:
        lines.append(f"OUTPUT({o})")
    for name in netlist.topological_order():
        gate = netlist.gate(name)
        if gate.gate_type == GateType.INPUT:
            continue
        op = _TYPE_TO_OP[gate.gate_type]
        lines.append(f"{name} = {op}({', '.join(gate.fanins)})")
    return "\n".join(lines) + "\n"


def load(path) -> Netlist:
    """Read a ``.bench`` file from ``path``.

    Streams the file line by line — parse memory is O(one line) plus
    the netlist itself, with error line numbers identical to
    :func:`loads` on the same content.
    """
    with open(path, "r", encoding="utf-8") as f:
        return _parse_lines(f, name=str(path))


def dump(netlist: Netlist, path) -> None:
    """Write ``netlist`` to ``path`` in ``.bench`` format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps(netlist))
