"""Golden-result fixtures: committed metrics with a drift gate.

The bench harness regression-tracks *speed* through committed
``benchmarks/BENCH_*.json`` files; this module gives *accuracy* the same
treatment.  A **golden fixture** freezes the canonical metrics of one
registered experiment at one exact spec::

    goldens/<experiment>/<spec_hash[:16]>.json
        golden_format_version   schema version (validated on load)
        experiment, spec        what to re-run
        spec_hash               full hash the spec must still produce
        tolerance_policy        how default tolerances were derived
        metrics                 [{row, metric, value, tolerance}, ...]

``repro experiment capture`` runs the experiment and writes the fixture;
``repro experiment verify`` re-runs it at fixture scale and fails when
any metric drifts beyond its committed absolute tolerance — or when a
committed metric has vanished from the result, which cannot be
certified.  Fixtures are plain JSON and meant to be committed, so CI
gates accuracy trajectories exactly like ``repro bench compare`` gates
speed.

Schema validation is strict and total: a corrupted, truncated,
wrong-version or hand-edited fixture (whose spec no longer reproduces
its recorded hash — *stale*) raises :class:`GoldenError` with a message
naming the file and the defect, never a bare ``KeyError`` deep in the
verify loop.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..utils import atomic_write_text as _write_text
from .compare import label_and_metric_keys
from .parallel import UnitProgress, execute_parallel
from .registry import ExperimentSpec, get_experiment, spec_from_json
from .runner import RunRecord, spec_dict, spec_hash_from_dict

__all__ = [
    "GOLDEN_FORMAT_VERSION",
    "GoldenError",
    "GoldenMetric",
    "Golden",
    "GoldenCheck",
    "GoldenReport",
    "default_goldens_dir",
    "golden_path",
    "list_golden_paths",
    "result_metrics",
    "default_tolerance",
    "capture_golden",
    "write_golden",
    "load_golden",
    "verify_golden",
    "render_report_text",
    "render_report_markdown",
]

GOLDEN_FORMAT_VERSION = 1

#: default tolerance derivation for float metrics: max(floor, rel * |v|).
#: Wide enough to absorb BLAS/platform noise on trained-model metrics,
#: tight enough that a real accuracy regression trips the gate.
DEFAULT_REL_TOLERANCE = 0.25
DEFAULT_ABS_FLOOR = 0.05


class GoldenError(ValueError):
    """A golden fixture failed schema validation or cannot be verified."""


@dataclass(frozen=True)
class GoldenMetric:
    """One frozen metric: a (row, metric) coordinate, value and limit."""

    row: str
    metric: str
    value: float
    tolerance: float


@dataclass
class Golden:
    """One loaded fixture (schema-validated)."""

    experiment: str
    spec: Dict[str, object]
    spec_hash: str
    metrics: List[GoldenMetric]
    tolerance_policy: Dict[str, float] = field(default_factory=dict)
    path: Optional[Path] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "golden_format_version": GOLDEN_FORMAT_VERSION,
            "experiment": self.experiment,
            "spec": self.spec,
            "spec_hash": self.spec_hash,
            "tolerance_policy": self.tolerance_policy,
            "metrics": [
                {
                    "row": m.row,
                    "metric": m.metric,
                    "value": m.value,
                    "tolerance": m.tolerance,
                }
                for m in self.metrics
            ],
        }


def default_goldens_dir() -> Path:
    """``REPRO_GOLDENS_DIR`` env var, else ``./goldens``."""
    return Path(os.environ.get("REPRO_GOLDENS_DIR") or "goldens")


def golden_path(
    goldens_dir: Union[str, Path], experiment: str, digest: str
) -> Path:
    return Path(goldens_dir) / experiment / f"{digest[:16]}.json"


def list_golden_paths(
    goldens_dir: Optional[Union[str, Path]] = None,
) -> List[Path]:
    """Every ``<experiment>/<hash>.json`` fixture under the goldens root."""
    root = Path(goldens_dir) if goldens_dir is not None else default_goldens_dir()
    if not root.is_dir():
        return []
    return sorted(root.glob("*/*.json"))


# ---------------------------------------------------------------------------
# metric extraction and capture
# ---------------------------------------------------------------------------


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def result_metrics(
    rows: List[Dict[str, object]],
) -> List[Tuple[str, str, float]]:
    """``(row_label, metric, value)`` triples of a result's numeric cells.

    Uses the same label/metric column split as ``experiment compare``,
    so a fixture and a diff address a metric by identical coordinates.
    """
    # canonicalise key order first: capture sees fresh in-memory rows
    # while verify may see rows reloaded from a sort_keys result.json,
    # and both must derive identical (row, metric) coordinates
    rows = [{k: row[k] for k in sorted(row)} for row in rows]
    label_keys, metric_keys = label_and_metric_keys(rows)
    seen: Dict[str, int] = {}
    out: List[Tuple[str, str, float]] = []
    for row in rows:
        label = " / ".join(str(row.get(k)) for k in label_keys)
        n = seen.get(label, 0)
        seen[label] = n + 1
        if n:
            label = f"{label} #{n + 1}"
        for metric in metric_keys:
            value = row.get(metric)
            if _is_numeric(value):
                out.append((label, metric, value))
    return out


def default_tolerance(
    value: float,
    rel: float = DEFAULT_REL_TOLERANCE,
    floor: float = DEFAULT_ABS_FLOOR,
) -> float:
    """Absolute drift limit for one metric value.

    Integer metrics (counts, ranks) must reproduce exactly; float
    metrics get ``max(floor, rel * |value|)`` so near-zero values keep a
    usable window.
    """
    if isinstance(value, int):
        return 0.0
    return max(floor, rel * abs(value))


def capture_golden(
    record: RunRecord,
    rel: float = DEFAULT_REL_TOLERANCE,
    floor: float = DEFAULT_ABS_FLOOR,
    overrides: Optional[Dict[str, float]] = None,
) -> Golden:
    """Freeze a run record's metrics into a :class:`Golden`.

    ``overrides`` maps a metric name (or ``"row:metric"``) to an explicit
    absolute tolerance, taking precedence over the derived default.
    """
    rows = record.result.get("rows")
    if not isinstance(rows, list) or not rows:
        raise GoldenError(
            f"run {record.out_dir} has no result rows to capture"
        )
    triples = result_metrics([r for r in rows if isinstance(r, dict)])
    if not triples:
        raise GoldenError(
            f"run {record.out_dir} has no numeric metrics to capture"
        )
    overrides = overrides or {}
    metrics = []
    for row, metric, value in triples:
        tolerance = overrides.get(f"{row}:{metric}", overrides.get(metric))
        if tolerance is None:
            tolerance = default_tolerance(value, rel=rel, floor=floor)
        metrics.append(
            GoldenMetric(
                row=row,
                metric=metric,
                value=value,
                tolerance=float(tolerance),
            )
        )
    return Golden(
        experiment=record.experiment,
        spec=record.spec,
        spec_hash=record.spec_hash,
        metrics=metrics,
        tolerance_policy={"rel": rel, "floor": floor},
    )


def write_golden(
    golden: Golden, goldens_dir: Optional[Union[str, Path]] = None
) -> Path:
    """Write a fixture to its canonical path under the goldens root."""
    root = Path(goldens_dir) if goldens_dir is not None else default_goldens_dir()
    path = golden_path(root, golden.experiment, golden.spec_hash)
    path.parent.mkdir(parents=True, exist_ok=True)
    _write_text(
        path, json.dumps(golden.to_json(), sort_keys=True, indent=2) + "\n"
    )
    golden.path = path
    return path


# ---------------------------------------------------------------------------
# loading + schema validation
# ---------------------------------------------------------------------------


def _require(condition: bool, path: Path, problem: str) -> None:
    if not condition:
        raise GoldenError(f"golden fixture {path}: {problem}")


def load_golden(path: Union[str, Path]) -> Golden:
    """Load and fully validate one fixture.

    Raises :class:`GoldenError` naming the defect for every reachable
    bad state: unreadable file, invalid/truncated JSON, non-object
    payload, unsupported format version, missing or mistyped fields,
    malformed metric entries, and a stale spec hash (the recorded spec
    no longer hashes to the recorded ``spec_hash`` — the fixture was
    hand-edited or the run format changed; re-baseline it).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise GoldenError(f"golden fixture {path}: unreadable ({exc})")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GoldenError(
            f"golden fixture {path}: invalid JSON ({exc}); the file is "
            f"corrupt or truncated"
        )
    _require(isinstance(data, dict), path, "payload is not a JSON object")
    version = data.get("golden_format_version")
    _require(
        version == GOLDEN_FORMAT_VERSION,
        path,
        f"unsupported golden_format_version {version!r} "
        f"(expected {GOLDEN_FORMAT_VERSION})",
    )
    experiment = data.get("experiment")
    _require(
        isinstance(experiment, str) and bool(experiment),
        path,
        "missing or non-string 'experiment'",
    )
    spec = data.get("spec")
    _require(isinstance(spec, dict), path, "missing or non-object 'spec'")
    digest = data.get("spec_hash")
    _require(
        isinstance(digest, str) and len(digest) == 64,
        path,
        "missing or malformed 'spec_hash' (need the full 64-char sha256)",
    )
    raw_metrics = data.get("metrics")
    _require(
        isinstance(raw_metrics, list) and bool(raw_metrics),
        path,
        "missing or empty 'metrics' list",
    )
    metrics: List[GoldenMetric] = []
    for i, entry in enumerate(raw_metrics):
        _require(
            isinstance(entry, dict), path, f"metrics[{i}] is not an object"
        )
        row, metric = entry.get("row"), entry.get("metric")
        value, tolerance = entry.get("value"), entry.get("tolerance")
        _require(
            isinstance(row, str) and isinstance(metric, str),
            path,
            f"metrics[{i}] needs string 'row' and 'metric'",
        )
        _require(
            _is_numeric(value),
            path,
            f"metrics[{i}] ({row}/{metric}) has a non-numeric 'value'",
        )
        _require(
            _is_numeric(tolerance) and tolerance >= 0,
            path,
            f"metrics[{i}] ({row}/{metric}) needs a tolerance >= 0",
        )
        metrics.append(GoldenMetric(row, metric, value, float(tolerance)))
    recomputed = spec_hash_from_dict(experiment, spec)
    _require(
        recomputed == digest,
        path,
        f"stale spec hash: the recorded spec hashes to "
        f"{recomputed[:16]}, not {digest[:16]} — the fixture was edited "
        f"or the run format changed; re-baseline with "
        f"'repro experiment capture {experiment}'",
    )
    policy = data.get("tolerance_policy")
    return Golden(
        experiment=experiment,
        spec=spec,
        spec_hash=digest,
        metrics=metrics,
        tolerance_policy=policy if isinstance(policy, dict) else {},
        path=path,
    )


def golden_spec(golden: Golden) -> ExperimentSpec:
    """Rebuild the experiment spec a fixture was captured at.

    Fails with :class:`GoldenError` when the experiment is no longer
    registered or the spec names fields the current spec type lacks —
    both mean the fixture is stale relative to the code.
    """
    try:
        exp = get_experiment(golden.experiment)
    except KeyError as exc:
        raise GoldenError(
            f"golden fixture {golden.path}: {exc.args[0]}"
        )
    try:
        return spec_from_json(exp.spec_type, golden.spec)
    except (TypeError, ValueError) as exc:
        raise GoldenError(
            f"golden fixture {golden.path}: spec does not fit "
            f"{exp.spec_type.__name__} ({exc}); re-baseline the fixture"
        )


# ---------------------------------------------------------------------------
# verification
# ---------------------------------------------------------------------------


@dataclass
class GoldenCheck:
    """One metric's verification outcome."""

    row: str
    metric: str
    golden: float
    tolerance: float
    new: Optional[float]  # None when the metric vanished from the result
    status: str  # "ok" | "drift" | "missing"

    @property
    def delta(self) -> Optional[float]:
        return None if self.new is None else self.new - self.golden


@dataclass
class GoldenReport:
    """Verification of one fixture against a fresh run."""

    golden: Golden
    record: RunRecord
    checks: List[GoldenCheck]

    @property
    def passed(self) -> bool:
        return all(c.status == "ok" for c in self.checks)

    @property
    def failures(self) -> List[GoldenCheck]:
        return [c for c in self.checks if c.status != "ok"]

    def to_json(self) -> Dict[str, object]:
        return {
            "experiment": self.golden.experiment,
            "fixture": str(self.golden.path) if self.golden.path else None,
            "run_dir": str(self.record.out_dir),
            "passed": self.passed,
            "checks": [
                {
                    "row": c.row,
                    "metric": c.metric,
                    "golden": c.golden,
                    "new": c.new,
                    "delta": c.delta,
                    "tolerance": c.tolerance,
                    "status": c.status,
                }
                for c in self.checks
            ],
        }


def verify_golden(
    golden: Golden,
    runs_dir: Optional[Union[str, Path]] = None,
    workers: int = 1,
    force: bool = False,
    progress: Optional[UnitProgress] = None,
) -> GoldenReport:
    """Re-run a fixture's experiment and check every committed metric.

    The run goes through the normal cached/parallel executor, so a
    verify immediately after a capture is a cache hit (byte-identical by
    construction) and a CI verify from a clean checkout is a real re-run
    at fixture scale.  A metric drifts when ``|new - golden|`` exceeds
    its committed tolerance; a committed metric absent from the fresh
    result is a failure in its own right (status ``missing``).
    """
    spec = golden_spec(golden)
    record = execute_parallel(
        golden.experiment,
        spec,
        runs_dir=runs_dir,
        workers=workers,
        force=force,
        progress=progress,
    )
    rows = record.result.get("rows")
    fresh = {
        (row, metric): value
        for row, metric, value in result_metrics(
            [r for r in rows if isinstance(r, dict)]
            if isinstance(rows, list)
            else []
        )
    }
    checks: List[GoldenCheck] = []
    for m in golden.metrics:
        new = fresh.get((m.row, m.metric))
        if new is None:
            status = "missing"
        elif abs(new - m.value) <= m.tolerance:
            status = "ok"
        else:
            status = "drift"
        checks.append(
            GoldenCheck(
                row=m.row,
                metric=m.metric,
                golden=m.value,
                tolerance=m.tolerance,
                new=new,
                status=status,
            )
        )
    return GoldenReport(golden=golden, record=record, checks=checks)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _report_rows(report: GoldenReport) -> List[List[str]]:
    return [
        [
            c.row,
            c.metric,
            _fmt(c.golden),
            _fmt(c.new),
            _fmt(c.delta),
            _fmt(c.tolerance),
            c.status.upper() if c.status != "ok" else "ok",
        ]
        for c in report.checks
    ]


_REPORT_HEADERS = ["row", "metric", "golden", "new", "delta", "limit", "status"]


def render_report_text(report: GoldenReport) -> str:
    from ..experiments.common import format_rows

    verdict = "PASS" if report.passed else "FAIL"
    title = (
        f"verify {report.golden.experiment} "
        f"[{report.golden.spec_hash[:12]}]: {verdict}"
    )
    return format_rows(_REPORT_HEADERS, _report_rows(report), title=title)


def render_report_markdown(report: GoldenReport) -> str:
    verdict = "PASS" if report.passed else "FAIL"
    lines = [
        f"# verify {report.golden.experiment}: {verdict}",
        "",
        f"- fixture: `{report.golden.path}`",
        f"- run: `{report.record.out_dir}`",
        "",
        "| " + " | ".join(_REPORT_HEADERS) + " |",
        "| " + " | ".join("---" for _ in _REPORT_HEADERS) + " |",
    ]
    for row in _report_rows(report):
        lines.append(
            "| " + " | ".join(c.replace("|", "\\|") for c in row) + " |"
        )
    return "\n".join(lines)
