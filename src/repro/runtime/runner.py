"""Run directories, manifests and the experiment cache.

Mirrors the cache semantics of :mod:`repro.datagen.pipeline`, one level
up: where the dataset pipeline keys shard directories by a config hash,
the runner keys **run directories** by a spec hash, so re-running an
unchanged experiment is free.

Layout, under the runs root (``--runs-dir``, ``REPRO_RUNS_DIR`` or
``./runs``)::

    runs/<experiment>/<spec_hash[:16]>/
        manifest.json   spec, hash, status, elapsed — written last, atomically
        result.json     structured rows (``ExperimentResult.to_json``)
        report.txt      the paper-style plain-text table
        report.md       markdown rendering of the same result

A run directory is a **cache hit** when its manifest exists, records the
same spec hash and format version, and every artifact file it names is
present and loadable.  Anything else (changed spec, interrupted run,
deleted or truncated file, a manifest that is not a JSON object) falls
through to a fresh execution — the manifest is written after the
artifacts, so a killed run can never masquerade as a complete one, and a
corrupted one is a cache miss, never an exception.

Unit-decomposed experiments additionally keep per-unit cache
directories under ``<run dir>/units/`` — see
:mod:`repro.runtime.parallel`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..utils import atomic_write_text as _write_text
from .registry import Experiment, ExperimentSpec, get_experiment

__all__ = [
    "RUN_FORMAT_VERSION",
    "MANIFEST_NAME",
    "RunRecord",
    "default_runs_dir",
    "spec_hash",
    "spec_hash_from_dict",
    "run_dir_for",
    "execute",
    "load_record",
    "load_cached_record",
    "write_run_artifacts",
    "list_runs",
]

RUN_FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

_ARTIFACTS = {
    "result": "result.json",
    "report_txt": "report.txt",
    "report_md": "report.md",
}


def default_runs_dir() -> Path:
    """``REPRO_RUNS_DIR`` env var, else ``./runs``."""
    return Path(os.environ.get("REPRO_RUNS_DIR") or "runs")


def spec_dict(spec: ExperimentSpec) -> Dict[str, object]:
    """The spec as JSON-able data (tuples become lists)."""
    return json.loads(json.dumps(dataclasses.asdict(spec)))


def spec_hash_from_dict(
    experiment_name: str, spec: Dict[str, object]
) -> str:
    """Sha256 over (experiment, canonical spec JSON, format version).

    Takes the spec already in JSON form, so artifacts that *store* the
    spec dict (manifests, golden fixtures) can recompute the hash they
    claim without reconstructing the dataclass first.
    """
    payload = {
        "experiment": experiment_name,
        "spec": spec,
        "run_format_version": RUN_FORMAT_VERSION,
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def spec_hash(experiment_name: str, spec: ExperimentSpec) -> str:
    """Sha256 keying the run cache for one (experiment, spec) pair."""
    return spec_hash_from_dict(experiment_name, spec_dict(spec))


def run_dir_for(
    runs_dir: Union[str, Path], experiment_name: str, digest: str
) -> Path:
    return Path(runs_dir) / experiment_name / digest[:16]


@dataclass
class RunRecord:
    """One (possibly cached) experiment run and its on-disk artifacts."""

    experiment: str
    spec: Dict[str, object]
    spec_hash: str
    out_dir: Path
    cache_hit: bool
    elapsed: float
    result: Dict[str, object]
    report: str

    @property
    def markdown(self) -> str:
        path = self.out_dir / _ARTIFACTS["report_md"]
        return path.read_text()


def _manifest_valid(
    out_dir: Path, manifest: Dict[str, object], digest: str
) -> bool:
    """Does a parsed manifest describe a complete run of ``digest``?"""
    if (
        manifest.get("spec_hash") != digest
        or manifest.get("run_format_version") != RUN_FORMAT_VERSION
        or manifest.get("status") != "complete"
    ):
        return False
    files = manifest.get("files")
    if not isinstance(files, dict):
        return False
    return all(
        (out_dir / str(filename)).is_file() for filename in files.values()
    )


def _read_manifest(out_dir: Path) -> Optional[Dict[str, object]]:
    path = out_dir / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    # a manifest that parses but is not an object (e.g. a bare list from
    # a corrupted write) must read as "no manifest", not blow up callers
    return manifest if isinstance(manifest, dict) else None


def _manifest_current(out_dir: Path, digest: str) -> Optional[Dict[str, object]]:
    """The manifest dict if ``out_dir`` holds a complete run of ``digest``."""
    manifest = _read_manifest(out_dir)
    if manifest is None or not _manifest_valid(out_dir, manifest, digest):
        return None
    return manifest


def _write_json(path: Path, data: object) -> None:
    _write_text(path, json.dumps(data, sort_keys=True, indent=2) + "\n")


def _load_cached_artifacts(
    out_dir: Path,
) -> Optional[tuple]:
    """(result, report) from a validated run dir, or ``None`` if either
    artifact is unreadable (truncated ``result.json``, racing deletion)."""
    try:
        result = json.loads((out_dir / _ARTIFACTS["result"]).read_text())
        report = (out_dir / _ARTIFACTS["report_txt"]).read_text()
    except (OSError, json.JSONDecodeError):
        return None
    return result, report


def load_cached_record(
    name: str,
    spec: ExperimentSpec,
    out_dir: Path,
    digest: str,
    elapsed: Optional[float] = None,
) -> Optional[RunRecord]:
    """The complete cached run in ``out_dir``, or ``None`` (cache miss).

    A validated manifest whose artifacts turn out corrupt — truncated
    ``result.json`` from a torn disk, a file deleted between the
    manifest check and the read — degrades to a miss instead of raising.
    """
    manifest = _manifest_current(out_dir, digest)
    if manifest is None:
        return None
    artifacts = _load_cached_artifacts(out_dir)
    if artifacts is None:
        return None
    result, report = artifacts
    if elapsed is None:
        raw = manifest.get("elapsed", 0.0)
        elapsed = float(raw) if isinstance(raw, (int, float)) else 0.0
    return RunRecord(
        experiment=name,
        spec=spec_dict(spec),
        spec_hash=digest,
        out_dir=out_dir,
        cache_hit=True,
        elapsed=elapsed,
        result=result,
        report=report,
    )


def write_run_artifacts(
    exp: Experiment,
    spec: ExperimentSpec,
    digest: str,
    out_dir: Path,
    result_obj,
    elapsed: float,
    manifest_extra: Optional[Dict[str, object]] = None,
) -> RunRecord:
    """Write result/report artifacts plus the certifying manifest.

    Shared by the serial runner and the parallel executor so both
    produce byte-identical run directories for the same result.

    A result object may publish additional first-class artifacts (e.g. a
    trained checkpoint) by carrying two optional attributes:
    ``extra_artifacts``, a ``{filename: writer(path)}`` dict whose files
    are written before the manifest and listed in its ``files`` map (so
    a missing one invalidates the cache like any artifact), and
    ``manifest_extra``, JSON-able entries merged into the manifest (e.g.
    ``checkpoint`` + ``model_config``, which ``repro serve --run``
    resolves).
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    # a stale manifest must not certify a half-rewritten run directory if
    # this (forced or cache-invalidated) re-run is interrupted mid-write
    (out_dir / MANIFEST_NAME).unlink(missing_ok=True)
    result_json = result_obj.to_json()
    _write_json(out_dir / _ARTIFACTS["result"], result_json)
    report_txt = result_obj.table + "\n"
    _write_text(out_dir / _ARTIFACTS["report_txt"], report_txt)
    _write_text(
        out_dir / _ARTIFACTS["report_md"],
        f"# {exp.title}\n\n{result_obj.to_markdown()}\n",
    )
    files: Dict[str, str] = dict(_ARTIFACTS)
    extra_artifacts = getattr(result_obj, "extra_artifacts", None) or {}
    for filename in sorted(extra_artifacts):
        if filename in files.values() or filename == MANIFEST_NAME:
            raise ValueError(f"extra artifact {filename!r} clashes with a core one")
        extra_artifacts[filename](out_dir / filename)
        files[filename] = filename
    manifest: Dict[str, object] = {
        "run_format_version": RUN_FORMAT_VERSION,
        "experiment": exp.name,
        "title": exp.title,
        "spec": spec_dict(spec),
        "spec_hash": digest,
        "status": "complete",
        "elapsed": elapsed,
        "files": files,
    }
    result_manifest_extra = getattr(result_obj, "manifest_extra", None)
    if result_manifest_extra:
        manifest.update(result_manifest_extra)
    if manifest_extra:
        manifest.update(manifest_extra)
    # manifest last: its presence certifies a complete run
    _write_json(out_dir / MANIFEST_NAME, manifest)
    return RunRecord(
        experiment=exp.name,
        spec=spec_dict(spec),
        spec_hash=digest,
        out_dir=out_dir,
        cache_hit=False,
        elapsed=elapsed,
        result=result_json,
        report=report_txt,
    )


def execute(
    name: str,
    spec: Optional[ExperimentSpec] = None,
    runs_dir: Optional[Union[str, Path]] = None,
    force: bool = False,
) -> RunRecord:
    """Run experiment ``name`` (or reuse its cached run directory).

    ``force=True`` re-executes and overwrites the artifacts even on a
    cache hit — the run analogue of ``dataset build --force``.
    """
    exp: Experiment = get_experiment(name)
    spec = exp.validate_spec(spec)
    digest = spec_hash(name, spec)
    root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    out_dir = run_dir_for(root, name, digest)

    start = time.perf_counter()
    if not force:
        cached = load_cached_record(
            name, spec, out_dir, digest, elapsed=time.perf_counter() - start
        )
        if cached is not None:
            return cached

    result_obj = exp.run(spec)
    elapsed = time.perf_counter() - start
    return write_run_artifacts(exp, spec, digest, out_dir, result_obj, elapsed)


def load_record(
    name: str,
    spec: Optional[ExperimentSpec] = None,
    runs_dir: Optional[Union[str, Path]] = None,
) -> Optional[RunRecord]:
    """The cached run for (name, spec), or ``None`` if absent/incomplete."""
    exp = get_experiment(name)
    spec = exp.validate_spec(spec)
    digest = spec_hash(name, spec)
    root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    out_dir = run_dir_for(root, name, digest)
    return load_cached_record(name, spec, out_dir, digest)


def list_runs(
    runs_dir: Optional[Union[str, Path]] = None,
) -> List[Dict[str, object]]:
    """Manifests of every complete run under the runs root, newest last."""
    root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    if not root.is_dir():
        return []
    found: List[Dict[str, object]] = []
    for manifest_path in sorted(root.glob(f"*/*/{MANIFEST_NAME}")):
        out_dir = manifest_path.parent
        manifest = _read_manifest(out_dir)
        if manifest is None:
            continue
        if _manifest_valid(out_dir, manifest, str(manifest.get("spec_hash"))):
            manifest["out_dir"] = str(out_dir)
            found.append(manifest)
    return found
