"""Diff the result metrics of two cached experiment runs.

``repro experiment compare <run-a> <run-b>`` matches the rows of two
``result.json`` files by their label fields (the non-numeric columns:
model name, suite, ablation variant, …) and diffs every numeric column —
absolute delta and percent change — rendering the outcome as plain text,
a markdown pipe table, or JSON.

Runs are addressed by their run directory (``runs/table2/<hash>``),
either as a filesystem path or relative to the runs root, so the output
of ``repro experiment run`` (which prints the directory) pipes straight
into ``compare``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .runner import MANIFEST_NAME, default_runs_dir

__all__ = [
    "RunResult",
    "load_run_result",
    "resolve_run_dir",
    "compare_results",
    "render_text",
    "render_markdown",
]

_RESULT_NAME = "result.json"


class RunResult:
    """One loaded run: its directory, result payload and manifest."""

    def __init__(
        self,
        out_dir: Path,
        result: Dict[str, object],
        manifest: Optional[Dict[str, object]] = None,
    ):
        self.out_dir = out_dir
        self.result = result
        self.manifest = manifest or {}

    @property
    def experiment(self) -> str:
        return str(
            self.result.get("experiment")
            or self.manifest.get("experiment")
            or "?"
        )

    @property
    def rows(self) -> List[Dict[str, object]]:
        rows = self.result.get("rows")
        return [r for r in rows if isinstance(r, dict)] if isinstance(
            rows, list
        ) else []


def resolve_run_dir(
    ref: Union[str, Path], runs_dir: Optional[Union[str, Path]] = None
) -> Path:
    """Map a run reference to its directory.

    Accepts a directory path, or a ``<experiment>/<hash-prefix>`` form
    resolved under the runs root (unique-prefix matching, so the 12-char
    hash printed by ``experiment run`` works verbatim).  When a runs
    root is given explicitly, relative references resolve under it
    *first*, so a same-named directory in the CWD cannot shadow the
    requested run.
    """
    path = Path(ref)
    explicit_root = runs_dir is not None
    if path.is_dir() and (path.is_absolute() or not explicit_root):
        return path
    root = Path(runs_dir) if explicit_root else default_runs_dir()
    candidate = root / ref
    if candidate.is_dir():
        return candidate
    parts = Path(ref).parts
    if len(parts) == 2:
        name, prefix = parts
        matches = sorted(
            d
            for d in (root / name).glob(f"{prefix}*")
            if d.is_dir()
        ) if (root / name).is_dir() else []
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise FileNotFoundError(
                f"run reference {ref!r} is ambiguous under {root}: "
                f"{[d.name for d in matches]}"
            )
    if explicit_root and path.is_dir():
        return path
    raise FileNotFoundError(
        f"no run directory for {ref!r} (looked at {path} and under {root})"
    )


def load_run_result(
    ref: Union[str, Path], runs_dir: Optional[Union[str, Path]] = None
) -> RunResult:
    """Load a run's ``result.json`` (and manifest, when readable)."""
    out_dir = resolve_run_dir(ref, runs_dir)
    try:
        result = json.loads((out_dir / _RESULT_NAME).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{out_dir} has no readable {_RESULT_NAME}: {exc}")
    if not isinstance(result, dict):
        raise ValueError(f"{out_dir}/{_RESULT_NAME} is not a JSON object")
    try:
        manifest = json.loads((out_dir / MANIFEST_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        manifest = None
    return RunResult(
        out_dir, result, manifest if isinstance(manifest, dict) else None
    )


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _labelled_rows(
    rows: List[Dict[str, object]], label_keys: List[str]
) -> Dict[str, Dict[str, object]]:
    """Rows keyed by label; duplicate labels get a ``#k`` suffix so no
    row silently vanishes from the diff (duplicates pair positionally
    between the two runs)."""
    seen: Dict[str, int] = {}
    out: Dict[str, Dict[str, object]] = {}
    for row in rows:
        label = _row_label(row, label_keys)
        n = seen.get(label, 0)
        seen[label] = n + 1
        out[label if n == 0 else f"{label} #{n + 1}"] = row
    return out


def _row_label(row: Dict[str, object], label_keys: List[str]) -> str:
    # .get: comparing runs of *different* experiments is allowed (the
    # CLI warns and proceeds), and their rows need not share columns —
    # unmatched labels then land in only_in_a/only_in_b instead of
    # crashing the diff
    return " / ".join(str(row.get(k)) for k in label_keys)


def compare_results(a: RunResult, b: RunResult) -> Dict[str, object]:
    """Structured metric diff of two runs.

    Rows are matched by the tuple of shared non-numeric columns; every
    shared numeric column becomes one diff entry with ``a``, ``b``,
    ``delta`` (b - a) and ``pct`` (percent change, ``None`` when a is 0).
    """
    rows_a, rows_b = a.rows, b.rows
    keys_a = set().union(*(r.keys() for r in rows_a)) if rows_a else set()
    keys_b = set().union(*(r.keys() for r in rows_b)) if rows_b else set()
    shared = keys_a & keys_b
    sample = (rows_a + rows_b)[:1]
    first_keys = list(sample[0].keys()) if sample else []
    label_keys = [
        k
        for k in first_keys
        if k in shared
        and all(not _is_numeric(r.get(k)) for r in rows_a + rows_b)
    ] or first_keys[:1]
    # one label column is enough when it already identifies every row
    for key in label_keys:
        if len({str(r.get(key)) for r in rows_a}) == len(rows_a) and len(
            {str(r.get(key)) for r in rows_b}
        ) == len(rows_b):
            label_keys = [key]
            break
    metric_keys = [
        k
        for k in first_keys
        if k in shared
        and k not in label_keys
        and any(_is_numeric(r.get(k)) for r in rows_a + rows_b)
    ]

    by_label_a = _labelled_rows(rows_a, label_keys)
    by_label_b = _labelled_rows(rows_b, label_keys)
    diffs: List[Dict[str, object]] = []
    for label, row_a in by_label_a.items():
        row_b = by_label_b.get(label)
        if row_b is None:
            continue
        for metric in metric_keys:
            va, vb = row_a.get(metric), row_b.get(metric)
            if not (_is_numeric(va) and _is_numeric(vb)):
                continue
            delta = vb - va
            pct = (100.0 * delta / va) if va else None
            diffs.append(
                {
                    "row": label,
                    "metric": metric,
                    "a": va,
                    "b": vb,
                    "delta": delta,
                    "pct": pct,
                }
            )
    return {
        "experiment_a": a.experiment,
        "experiment_b": b.experiment,
        "run_a": str(a.out_dir),
        "run_b": str(b.out_dir),
        "label_keys": label_keys,
        "metrics": metric_keys,
        "rows": diffs,
        "only_in_a": sorted(set(by_label_a) - set(by_label_b)),
        "only_in_b": sorted(set(by_label_b) - set(by_label_a)),
    }


def _fmt_num(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _fmt_pct(pct: Optional[float]) -> str:
    return f"{pct:+.1f}%" if pct is not None else "n/a"


def _diff_table_rows(diff: Dict[str, object]) -> List[List[str]]:
    return [
        [
            str(d["row"]),
            str(d["metric"]),
            _fmt_num(d["a"]),
            _fmt_num(d["b"]),
            _fmt_num(d["delta"]),
            _fmt_pct(d["pct"]),
        ]
        for d in diff["rows"]
    ]


_HEADERS = ["row", "metric", "a", "b", "delta", "pct"]


def _unmatched_lines(diff: Dict[str, object]) -> List[str]:
    lines = []
    if diff["only_in_a"]:
        lines.append(f"only in a: {', '.join(diff['only_in_a'])}")
    if diff["only_in_b"]:
        lines.append(f"only in b: {', '.join(diff['only_in_b'])}")
    return lines


def render_text(diff: Dict[str, object]) -> str:
    from ..experiments.common import format_rows

    title = (
        f"compare {diff['experiment_a']}: {diff['run_a']} vs {diff['run_b']}"
    )
    if not diff["rows"]:
        return title + "\n(no comparable metric rows)"
    out = format_rows(_HEADERS, _diff_table_rows(diff), title=title)
    extra = _unmatched_lines(diff)
    return out + ("\n" + "\n".join(extra) if extra else "")


def render_markdown(diff: Dict[str, object]) -> str:
    lines = [
        f"# compare {diff['experiment_a']}",
        "",
        f"- a: `{diff['run_a']}`",
        f"- b: `{diff['run_b']}`",
        "",
    ]
    if diff["rows"]:
        lines.append("| " + " | ".join(_HEADERS) + " |")
        lines.append("| " + " | ".join("---" for _ in _HEADERS) + " |")
        for row in _diff_table_rows(diff):
            lines.append(
                "| " + " | ".join(c.replace("|", "\\|") for c in row) + " |"
            )
    else:
        lines.append("(no comparable metric rows)")
    lines.extend(_unmatched_lines(diff))
    return "\n".join(lines)
