"""Diff the result metrics of two cached experiment runs.

``repro experiment compare <run-a> <run-b>`` matches the rows of two
``result.json`` files by their label fields (the non-numeric columns:
model name, suite, ablation variant, …) and diffs every numeric column —
absolute delta and percent change — rendering the outcome as plain text,
a markdown pipe table, or JSON.

With a tolerance table (``--tolerances limits.json``) the diff becomes
an accuracy-trajectory gate: every matched metric gains an absolute
drift ``limit`` and a pass/fail status, and ``--fail-on-drift`` turns
any violation — including a tolerance whose metric is *missing* from
the diff, which cannot be certified — into a non-zero exit.

Runs are addressed by their run directory (``runs/table2/<hash>``),
either as a filesystem path or relative to the runs root, so the output
of ``repro experiment run`` (which prints the directory) pipes straight
into ``compare``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .runner import MANIFEST_NAME, default_runs_dir

__all__ = [
    "RunResult",
    "load_run_result",
    "resolve_run_dir",
    "label_and_metric_keys",
    "compare_results",
    "load_tolerances",
    "apply_tolerances",
    "render_text",
    "render_markdown",
]

_RESULT_NAME = "result.json"


class RunResult:
    """One loaded run: its directory, result payload and manifest."""

    def __init__(
        self,
        out_dir: Path,
        result: Dict[str, object],
        manifest: Optional[Dict[str, object]] = None,
    ):
        self.out_dir = out_dir
        self.result = result
        self.manifest = manifest or {}

    @property
    def experiment(self) -> str:
        return str(
            self.result.get("experiment")
            or self.manifest.get("experiment")
            or "?"
        )

    @property
    def rows(self) -> List[Dict[str, object]]:
        rows = self.result.get("rows")
        return [r for r in rows if isinstance(r, dict)] if isinstance(
            rows, list
        ) else []


def resolve_run_dir(
    ref: Union[str, Path], runs_dir: Optional[Union[str, Path]] = None
) -> Path:
    """Map a run reference to its directory.

    Accepts a directory path, or a ``<experiment>/<hash-prefix>`` form
    resolved under the runs root (unique-prefix matching, so the 12-char
    hash printed by ``experiment run`` works verbatim).  When a runs
    root is given explicitly, relative references resolve under it
    *first*, so a same-named directory in the CWD cannot shadow the
    requested run.
    """
    path = Path(ref)
    explicit_root = runs_dir is not None
    if path.is_dir() and (path.is_absolute() or not explicit_root):
        return path
    root = Path(runs_dir) if explicit_root else default_runs_dir()
    candidate = root / ref
    if candidate.is_dir():
        return candidate
    parts = Path(ref).parts
    if len(parts) == 2:
        name, prefix = parts
        matches = sorted(
            d
            for d in (root / name).glob(f"{prefix}*")
            if d.is_dir()
        ) if (root / name).is_dir() else []
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise FileNotFoundError(
                f"run reference {ref!r} is ambiguous under {root}: "
                f"{[d.name for d in matches]}"
            )
    if explicit_root and path.is_dir():
        return path
    raise FileNotFoundError(
        f"no run directory for {ref!r} (looked at {path} and under {root})"
    )


def load_run_result(
    ref: Union[str, Path], runs_dir: Optional[Union[str, Path]] = None
) -> RunResult:
    """Load a run's ``result.json`` (and manifest, when readable)."""
    out_dir = resolve_run_dir(ref, runs_dir)
    try:
        result = json.loads((out_dir / _RESULT_NAME).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{out_dir} has no readable {_RESULT_NAME}: {exc}")
    if not isinstance(result, dict):
        raise ValueError(f"{out_dir}/{_RESULT_NAME} is not a JSON object")
    try:
        manifest = json.loads((out_dir / MANIFEST_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        manifest = None
    return RunResult(
        out_dir, result, manifest if isinstance(manifest, dict) else None
    )


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


#: canonical row-identifier columns used across the built-in
#: experiments, tried before any other non-numeric column when
#: collapsing the label to a single identifying key
_PREFERRED_LABELS = ("design", "suite", "model", "ablation", "name", "row")


def _labelled_rows(
    rows: List[Dict[str, object]], label_keys: List[str]
) -> Dict[str, Dict[str, object]]:
    """Rows keyed by label; duplicate labels get a ``#k`` suffix so no
    row silently vanishes from the diff (duplicates pair positionally
    between the two runs)."""
    seen: Dict[str, int] = {}
    out: Dict[str, Dict[str, object]] = {}
    for row in rows:
        label = _row_label(row, label_keys)
        n = seen.get(label, 0)
        seen[label] = n + 1
        out[label if n == 0 else f"{label} #{n + 1}"] = row
    return out


def _row_label(row: Dict[str, object], label_keys: List[str]) -> str:
    # .get: comparing runs of *different* experiments is allowed (the
    # CLI warns and proceeds), and their rows need not share columns —
    # unmatched labels then land in only_in_a/only_in_b instead of
    # crashing the diff
    return " / ".join(str(row.get(k)) for k in label_keys)


def label_and_metric_keys(
    rows_a: List[Dict[str, object]],
    rows_b: Optional[List[Dict[str, object]]] = None,
) -> Tuple[List[str], List[str]]:
    """Split result-row columns into label keys and numeric metric keys.

    Labels are the non-numeric columns shared by every row (collapsed to
    one column when it already identifies each row uniquely); everything
    else numeric is a metric.  Shared by run diffs and golden-fixture
    extraction so both address a metric by the same ``(row, metric)``
    coordinates.
    """
    rows_b = rows_b if rows_b is not None else rows_a
    keys_a = set().union(*(r.keys() for r in rows_a)) if rows_a else set()
    keys_b = set().union(*(r.keys() for r in rows_b)) if rows_b else set()
    shared = keys_a & keys_b
    sample = (rows_a + rows_b)[:1]
    first_keys = list(sample[0].keys()) if sample else []
    label_keys = [
        k
        for k in first_keys
        if k in shared
        and all(not _is_numeric(r.get(k)) for r in rows_a + rows_b)
    ] or first_keys[:1]
    # one label column is enough when it already identifies every row;
    # scan candidates in a fixed preference order so the chosen
    # coordinate does not depend on row dict key order (fresh in-memory
    # rows vs rows reloaded from a sort_keys result.json)
    ordered = sorted(
        label_keys,
        key=lambda k: (
            _PREFERRED_LABELS.index(k)
            if k in _PREFERRED_LABELS
            else len(_PREFERRED_LABELS),
            k,
        ),
    )
    for key in ordered:
        if len({str(r.get(key)) for r in rows_a}) == len(rows_a) and len(
            {str(r.get(key)) for r in rows_b}
        ) == len(rows_b):
            label_keys = [key]
            break
    metric_keys = [
        k
        for k in first_keys
        if k in shared
        and k not in label_keys
        and any(_is_numeric(r.get(k)) for r in rows_a + rows_b)
    ]
    return label_keys, metric_keys


def compare_results(a: RunResult, b: RunResult) -> Dict[str, object]:
    """Structured metric diff of two runs.

    Rows are matched by the tuple of shared non-numeric columns; every
    shared numeric column becomes one diff entry with ``a``, ``b``,
    ``delta`` (b - a) and ``pct`` (percent change, ``None`` when a is 0).
    """
    rows_a, rows_b = a.rows, b.rows
    label_keys, metric_keys = label_and_metric_keys(rows_a, rows_b)

    by_label_a = _labelled_rows(rows_a, label_keys)
    by_label_b = _labelled_rows(rows_b, label_keys)
    diffs: List[Dict[str, object]] = []
    for label, row_a in by_label_a.items():
        row_b = by_label_b.get(label)
        if row_b is None:
            continue
        for metric in metric_keys:
            va, vb = row_a.get(metric), row_b.get(metric)
            if not (_is_numeric(va) and _is_numeric(vb)):
                continue
            delta = vb - va
            pct = (100.0 * delta / va) if va else None
            diffs.append(
                {
                    "row": label,
                    "metric": metric,
                    "a": va,
                    "b": vb,
                    "delta": delta,
                    "pct": pct,
                }
            )
    return {
        "experiment_a": a.experiment,
        "experiment_b": b.experiment,
        "run_a": str(a.out_dir),
        "run_b": str(b.out_dir),
        "label_keys": label_keys,
        "metrics": metric_keys,
        "rows": diffs,
        "only_in_a": sorted(set(by_label_a) - set(by_label_b)),
        "only_in_b": sorted(set(by_label_b) - set(by_label_a)),
    }


def load_tolerances(path: Union[str, Path]) -> Dict[str, float]:
    """Parse a tolerance table: a JSON object mapping metric names (or
    row-qualified ``"row:metric"`` keys) to absolute drift limits."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable tolerance file {path}: {exc}")
    if not isinstance(raw, dict):
        raise ValueError(f"tolerance file {path} must be a JSON object")
    out: Dict[str, float] = {}
    for key, value in raw.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"tolerance for {key!r} must be a number, got {value!r}"
            )
        if value < 0:
            raise ValueError(f"tolerance for {key!r} must be >= 0")
        out[str(key)] = float(value)
    return out


def _tolerance_for(
    tolerances: Dict[str, float], row: str, metric: str
) -> Optional[float]:
    """Most specific matching limit: ``row:metric`` wins over ``metric``."""
    qualified = f"{row}:{metric}"
    if qualified in tolerances:
        return tolerances[qualified]
    return tolerances.get(metric)


def apply_tolerances(
    diff: Dict[str, object], tolerances: Dict[str, float]
) -> Dict[str, object]:
    """Annotate a diff with drift limits and collect violations.

    Every diff row whose metric has a limit gains ``limit`` and
    ``within``; the returned diff carries a ``violations`` list holding
    one entry per drifted row *plus* one per tolerance key that matched
    no diff row — a metric the gate expects but the diff cannot show
    (renamed column, vanished row) must fail, not silently pass.
    """
    out = dict(diff)
    matched: set = set()
    rows: List[Dict[str, object]] = []
    violations: List[Dict[str, object]] = []
    for entry in diff["rows"]:
        entry = dict(entry)
        limit = _tolerance_for(tolerances, str(entry["row"]), str(entry["metric"]))
        if limit is not None:
            matched.add(str(entry["metric"]))
            matched.add(f"{entry['row']}:{entry['metric']}")
            entry["limit"] = limit
            entry["within"] = abs(entry["delta"]) <= limit
            if not entry["within"]:
                violations.append(
                    {
                        "kind": "drift",
                        "row": entry["row"],
                        "metric": entry["metric"],
                        "delta": entry["delta"],
                        "limit": limit,
                    }
                )
        rows.append(entry)
    for key in sorted(set(tolerances) - matched):
        violations.append({"kind": "missing", "key": key})
    out["rows"] = rows
    out["violations"] = violations
    return out


def _fmt_num(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _fmt_pct(pct: Optional[float]) -> str:
    return f"{pct:+.1f}%" if pct is not None else "n/a"


def _fmt_status(entry: Dict[str, object]) -> str:
    if "within" not in entry:
        return "-"
    return "ok" if entry["within"] else "DRIFT"


def _gated(diff: Dict[str, object]) -> bool:
    """True when tolerances were applied to this diff."""
    return "violations" in diff


def _diff_table_rows(diff: Dict[str, object]) -> List[List[str]]:
    gated = _gated(diff)
    rows = []
    for d in diff["rows"]:
        row = [
            str(d["row"]),
            str(d["metric"]),
            _fmt_num(d["a"]),
            _fmt_num(d["b"]),
            _fmt_num(d["delta"]),
            _fmt_pct(d["pct"]),
        ]
        if gated:
            limit = d.get("limit")
            row.append(_fmt_num(limit) if limit is not None else "-")
            row.append(_fmt_status(d))
        rows.append(row)
    return rows


_HEADERS = ["row", "metric", "a", "b", "delta", "pct"]


def _headers_for(diff: Dict[str, object]) -> List[str]:
    return _HEADERS + ["limit", "status"] if _gated(diff) else _HEADERS


def _unmatched_lines(diff: Dict[str, object]) -> List[str]:
    lines = []
    if diff["only_in_a"]:
        lines.append(f"only in a: {', '.join(diff['only_in_a'])}")
    if diff["only_in_b"]:
        lines.append(f"only in b: {', '.join(diff['only_in_b'])}")
    for v in diff.get("violations", []):
        if v["kind"] == "missing":
            lines.append(
                f"MISSING: tolerance {v['key']!r} matched no diff row"
            )
    return lines


def render_text(diff: Dict[str, object]) -> str:
    from ..experiments.common import format_rows

    title = (
        f"compare {diff['experiment_a']}: {diff['run_a']} vs {diff['run_b']}"
    )
    if not diff["rows"]:
        out = title + "\n(no comparable metric rows)"
        extra = _unmatched_lines(diff)
        return out + ("\n" + "\n".join(extra) if extra else "")
    out = format_rows(_headers_for(diff), _diff_table_rows(diff), title=title)
    extra = _unmatched_lines(diff)
    return out + ("\n" + "\n".join(extra) if extra else "")


def render_markdown(diff: Dict[str, object]) -> str:
    headers = _headers_for(diff)
    lines = [
        f"# compare {diff['experiment_a']}",
        "",
        f"- a: `{diff['run_a']}`",
        f"- b: `{diff['run_b']}`",
        "",
    ]
    if diff["rows"]:
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("| " + " | ".join("---" for _ in headers) + " |")
        for row in _diff_table_rows(diff):
            lines.append(
                "| " + " | ".join(c.replace("|", "\\|") for c in row) + " |"
            )
    else:
        lines.append("(no comparable metric rows)")
    lines.extend(_unmatched_lines(diff))
    return "\n".join(lines)
