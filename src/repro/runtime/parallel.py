"""Process-pool execution of unit-decomposed experiments.

The paper's headline tables are grids of *independent* trainings —
Table II alone is 13 model configurations — so an experiment that
exposes the unit API (:class:`~repro.runtime.registry.UnitSpec` rows via
``units``/``run_unit``/``merge``) can fan those rows out over worker
processes and cache each one separately::

    runs/<experiment>/<spec_hash[:16]>/
        manifest.json  result.json  report.txt  report.md   (whole run)
        units/<unit_hash[:16]>/
            result.json    the unit's JSON payload
            unit.json      unit manifest — certifies the directory

Unit directories are published atomically: :func:`commit_unit` stages
the whole directory under a temp name and renames it into place, so a
worker killed at any instant leaves either no unit directory or a
complete one.  Semantics mirror the run-level cache one level down:

* a unit directory is a **hit** when ``unit.json`` exists, matches the
  unit hash and format version, and ``result.json`` parses; anything
  else (kill mid-unit, truncation, a stale directory from an older
  layout) is a miss for that unit alone;
* workers write their own unit directory *before* reporting back, so a
  grid killed mid-flight resumes from every completed unit;
* every unit result is JSON-roundtripped before merging, so merging
  fresh results and merging reloaded cache files are byte-identical —
  which is what makes ``--workers 1``, ``--workers N`` and
  resumed-after-kill runs produce the same ``result.json`` bytes.

Experiments without unit support fall back to the serial runner
(:func:`repro.runtime.runner.execute`) regardless of ``workers``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import shutil
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..utils import atomic_replace_dir
from .registry import (
    Experiment,
    ExperimentSpec,
    UnitSpec,
    canonical_unit_result,
    get_experiment,
)
from .runner import (
    RunRecord,
    default_runs_dir,
    execute as execute_serial,
    load_cached_record,
    run_dir_for,
    spec_hash,
    write_run_artifacts,
)

__all__ = [
    "UNIT_FORMAT_VERSION",
    "UNITS_DIR_NAME",
    "UNIT_MANIFEST_NAME",
    "UnitProgress",
    "default_workers",
    "unit_hash",
    "unit_dir_for",
    "load_unit_result",
    "commit_unit",
    "execute_parallel",
]

UNIT_FORMAT_VERSION = 1
UNITS_DIR_NAME = "units"
UNIT_MANIFEST_NAME = "unit.json"
UNIT_RESULT_NAME = "result.json"

#: progress callback: ``fn(event)`` with an event dict holding
#: ``status`` ("cached" | "done"), ``key``, ``label``, ``index`` (0-based
#: position in unit order), ``total`` and ``elapsed`` seconds.
UnitProgress = Callable[[Dict[str, object]], None]


def default_workers() -> int:
    """``REPRO_WORKERS`` env var, else the CPU count.

    One policy for the whole toolkit: delegates to the dataset
    pipeline's resolver (which rejects non-integer values with a clean
    error instead of a traceback).
    """
    from ..datagen.pipeline import default_workers as _default_workers

    return _default_workers()


def unit_hash(spec_digest: str, unit: UnitSpec) -> str:
    """Sha256 keying one unit's cache dir inside one run directory."""
    payload = {
        "spec_hash": spec_digest,
        "unit_key": unit.key,
        "unit_format_version": UNIT_FORMAT_VERSION,
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def unit_dir_for(out_dir: Union[str, Path], digest: str) -> Path:
    return Path(out_dir) / UNITS_DIR_NAME / digest[:16]


def load_unit_result(
    unit_dir: Path, digest: str
) -> Optional[Dict[str, object]]:
    """The cached result of one unit, or ``None`` (miss).

    Tolerates every partial-state the layout can reach: missing
    directory, missing or truncated ``unit.json``/``result.json``, a
    manifest for a different unit hash or format version.
    """
    try:
        manifest = json.loads((unit_dir / UNIT_MANIFEST_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(manifest, dict):
        return None
    if (
        manifest.get("unit_hash") != digest
        or manifest.get("unit_format_version") != UNIT_FORMAT_VERSION
        or manifest.get("status") != "complete"
    ):
        return None
    try:
        result = json.loads((unit_dir / UNIT_RESULT_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return result if isinstance(result, dict) else None


def commit_unit(
    unit_dir: Path,
    unit: UnitSpec,
    digest: str,
    result: Dict[str, object],
    elapsed: float,
) -> None:
    """Atomically publish one completed unit directory.

    The whole directory (result + certifying manifest) is staged under a
    writer-unique temp name and renamed into place in one step, so a
    ``kill -9`` at any instant leaves either no unit directory or a
    complete one — never the truncated ``result.json`` states the cache
    reader has to defend against.  A stale target (e.g. a torn partial
    from a legacy in-place writer) is cleared by the rename helper.
    This is the one commit seam shared by the in-process pool executor
    and the distributed lease-based workers.
    """
    unit_dir = Path(unit_dir)
    unit_dir.parent.mkdir(parents=True, exist_ok=True)
    tmp = unit_dir.parent / f".{unit_dir.name}.{os.getpid()}.tmp"
    shutil.rmtree(tmp, ignore_errors=True)
    try:
        tmp.mkdir()
        (tmp / UNIT_RESULT_NAME).write_text(
            json.dumps(result, sort_keys=True, indent=2) + "\n"
        )
        (tmp / UNIT_MANIFEST_NAME).write_text(
            json.dumps(
                {
                    "unit_format_version": UNIT_FORMAT_VERSION,
                    "unit_hash": digest,
                    "key": unit.key,
                    "title": unit.title,
                    "params": unit.params_dict(),
                    "status": "complete",
                    "elapsed": elapsed,
                },
                sort_keys=True,
                indent=2,
            )
            + "\n"
        )
        atomic_replace_dir(tmp, unit_dir)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _pool_context():
    """Fork when the platform offers it (workers inherit the parent's
    registry, so dynamically registered experiments resolve); the
    platform default otherwise — there, only experiments importable via
    ``repro.experiments`` are reachable from workers."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - no fork on this platform
        return multiprocessing.get_context()


def _run_one_unit(
    name: str,
    spec: ExperimentSpec,
    unit: UnitSpec,
    digest: str,
    unit_dir_str: str,
) -> "tuple[Dict[str, object], float]":
    """Worker entry point: execute one unit and persist its cache dir.

    Module-level (not a closure) so a process pool can pickle it; the
    experiment is re-looked-up by name inside the worker.  Returns the
    canonical result plus the worker-measured elapsed seconds (queue
    wait excluded).
    """
    exp = get_experiment(name)
    start = time.perf_counter()
    result = canonical_unit_result(exp.run_unit(spec, unit))
    elapsed = time.perf_counter() - start
    commit_unit(Path(unit_dir_str), unit, digest, result, elapsed)
    return result, elapsed


def execute_parallel(
    name: str,
    spec: Optional[ExperimentSpec] = None,
    runs_dir: Optional[Union[str, Path]] = None,
    workers: int = 1,
    force: bool = False,
    progress: Optional[UnitProgress] = None,
) -> RunRecord:
    """Run experiment ``name``, fanning its units over ``workers``.

    The run-level cache is honoured exactly like the serial path; on a
    miss, cached units are reloaded and only pending units execute —
    in-process when ``workers <= 1``, on a process pool otherwise.
    ``force=True`` discards both cache levels.  Experiments without unit
    support run serially whatever ``workers`` says.
    """
    exp: Experiment = get_experiment(name)
    spec = exp.validate_spec(spec)
    if not exp.supports_units:
        return execute_serial(name, spec, runs_dir=runs_dir, force=force)

    digest = spec_hash(name, spec)
    root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    out_dir = run_dir_for(root, name, digest)

    start = time.perf_counter()
    if not force:
        cached = load_cached_record(
            name, spec, out_dir, digest, elapsed=time.perf_counter() - start
        )
        if cached is not None:
            return cached
    elif (out_dir / UNITS_DIR_NAME).is_dir():
        # --force means recompute everything: drop the unit caches too
        shutil.rmtree(out_dir / UNITS_DIR_NAME, ignore_errors=True)

    units = exp.units(spec)
    total = len(units)
    digests = [unit_hash(digest, u) for u in units]
    dirs = [unit_dir_for(out_dir, d) for d in digests]

    results: List[Optional[Dict[str, object]]] = [None] * total
    pending: List[int] = []
    for i, (unit, u_digest, u_dir) in enumerate(zip(units, digests, dirs)):
        cached_unit = load_unit_result(u_dir, u_digest)
        if cached_unit is not None:
            results[i] = cached_unit
            if progress is not None:
                progress(
                    {
                        "status": "cached",
                        "key": unit.key,
                        "label": unit.label,
                        "index": i,
                        "total": total,
                        "elapsed": 0.0,
                    }
                )
        else:
            pending.append(i)

    def report(i: int, elapsed: float) -> None:
        if progress is not None:
            progress(
                {
                    "status": "done",
                    "key": units[i].key,
                    "label": units[i].label,
                    "index": i,
                    "total": total,
                    "elapsed": elapsed,
                }
            )

    if pending and workers <= 1:
        for i in pending:
            results[i], unit_elapsed = _run_one_unit(
                name, spec, units[i], digests[i], str(dirs[i])
            )
            report(i, unit_elapsed)
    elif pending:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            mp_context=_pool_context(),
        ) as pool:
            submitted = {
                pool.submit(
                    _run_one_unit,
                    name,
                    spec,
                    units[i],
                    digests[i],
                    str(dirs[i]),
                ): i
                for i in pending
            }
            outstanding = set(submitted)
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    i = submitted[future]
                    # a failed unit raises here; completed siblings keep
                    # their cache dirs, so the re-run resumes from them
                    results[i], unit_elapsed = future.result()
                    report(i, unit_elapsed)

    result_obj = exp.merge(spec, results)
    elapsed = time.perf_counter() - start
    return write_run_artifacts(
        exp,
        spec,
        digest,
        out_dir,
        result_obj,
        elapsed,
        manifest_extra={
            "units": {u.key: d[:16] for u, d in zip(units, digests)},
            "workers": workers,
        },
    )
