"""Experiment protocol and decorator-based registry.

An *experiment* is a named, cacheable unit of paper reproduction — one
table or figure.  Each one declares:

* a **frozen spec dataclass** (subclass of :class:`ExperimentSpec`)
  holding every knob that affects its output — scale, seed override,
  model subset, …  The spec is hashable-by-content, which is what keys
  the on-disk run cache;
* a **runner**, ``run(spec) -> ExperimentResult``, registered with the
  :func:`experiment` decorator;
* **emitters** on the result: ``to_json`` (structured rows for the run
  directory) and ``to_markdown`` (a pipe table for reports), plus the
  plain-text paper-style table.

The registry is what makes the CLI generic: ``repro experiment
run/list/report`` look experiments up by name instead of hard-coding
imports.
"""

from __future__ import annotations

import dataclasses
import typing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Type

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "Experiment",
    "experiment",
    "unregister",
    "get_experiment",
    "list_experiments",
    "spec_from_overrides",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Base spec: the knobs every experiment shares.

    ``seed``/``epochs`` of ``None`` mean "use the scale's value"; a
    non-``None`` value overrides it (and, being part of the spec, lands
    in the cache key so overridden runs never collide with default ones).
    """

    scale: str = "default"
    seed: Optional[int] = None
    epochs: Optional[int] = None


@dataclass
class ExperimentResult:
    """What a runner returns: structured rows + the rendered table."""

    experiment: str
    rows: List[Dict[str, object]]
    table: str
    meta: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "rows": self.rows,
            "meta": self.meta,
        }

    def to_markdown(self) -> str:
        """GitHub pipe table over the row keys, fenced plain table below."""
        lines: List[str] = []
        if self.rows:
            headers = list(self.rows[0].keys())
            lines.append("| " + " | ".join(headers) + " |")
            lines.append("| " + " | ".join("---" for _ in headers) + " |")
            for row in self.rows:
                lines.append(
                    "| "
                    + " | ".join(_md_cell(row.get(h)) for h in headers)
                    + " |"
                )
            lines.append("")
        lines.append("```")
        lines.append(self.table)
        lines.append("```")
        return "\n".join(lines)


def _md_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value).replace("|", "\\|")


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: metadata + spec type + runner."""

    name: str
    title: str
    spec_type: Type[ExperimentSpec]
    runner: Callable[[ExperimentSpec], ExperimentResult]
    description: str = ""

    def run(self, spec: Optional[ExperimentSpec] = None) -> ExperimentResult:
        spec = spec if spec is not None else self.spec_type()
        if not isinstance(spec, self.spec_type):
            raise TypeError(
                f"experiment {self.name!r} takes a {self.spec_type.__name__}, "
                f"got {type(spec).__name__}"
            )
        return self.runner(spec)


_REGISTRY: Dict[str, Experiment] = {}


def experiment(
    name: str,
    *,
    spec: Type[ExperimentSpec],
    title: str,
    description: str = "",
) -> Callable:
    """Register ``fn(spec) -> ExperimentResult`` under ``name``."""
    if not dataclasses.is_dataclass(spec) or not spec.__dataclass_params__.frozen:
        raise TypeError(f"spec for {name!r} must be a frozen dataclass")

    def decorate(fn: Callable[[ExperimentSpec], ExperimentResult]) -> Callable:
        existing = _REGISTRY.get(name)
        if existing is not None and not _same_source(existing.runner, fn):
            raise ValueError(f"experiment {name!r} already registered")
        # re-registration from the same source is idempotent: running a
        # module under runpy (``python -m repro.experiments.table1``)
        # executes its decorators a second time as ``__main__``
        _REGISTRY[name] = Experiment(
            name=name,
            title=title,
            spec_type=spec,
            runner=fn,
            description=description or (fn.__doc__ or "").strip(),
        )
        return fn

    return decorate


def _same_source(a: Callable, b: Callable) -> bool:
    """True when two runners are the same function (possibly re-imported)."""
    try:
        return (
            a.__qualname__ == b.__qualname__
            and a.__code__.co_filename == b.__code__.co_filename
        )
    except AttributeError:  # pragma: no cover - non-function callables
        return False


def unregister(name: str) -> None:
    """Remove a registration (tests use this to inject fakes)."""
    _REGISTRY.pop(name, None)


def get_experiment(name: str) -> Experiment:
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def list_experiments() -> List[Experiment]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _ensure_loaded() -> None:
    """Import the experiment modules so their decorators run."""
    from .. import experiments  # noqa: F401  (import side effect)


# ---------------------------------------------------------------------------
# spec construction from CLI-style overrides
# ---------------------------------------------------------------------------


def spec_from_overrides(
    spec_type: Type[ExperimentSpec], overrides: Dict[str, str]
) -> ExperimentSpec:
    """Build a spec from string key=value overrides, coercing field types."""
    fields = {f.name for f in dataclasses.fields(spec_type)}
    # resolve PEP 563 stringified annotations to real types
    hints = typing.get_type_hints(spec_type)
    kwargs: Dict[str, object] = {}
    for key, raw in overrides.items():
        if key not in fields:
            raise ValueError(
                f"{spec_type.__name__} has no field {key!r}; "
                f"fields: {sorted(fields)}"
            )
        kwargs[key] = _coerce(hints.get(key, str), raw, key)
    return spec_type(**kwargs)


def _coerce(annotation: object, raw: str, key: str) -> object:
    """Parse ``raw`` according to a resolved type annotation."""
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)
    if origin is typing.Union:  # Optional[X]
        inner = [a for a in args if a is not type(None)]
        if raw.lower() in ("none", ""):
            return None
        return _coerce(inner[0], raw, key) if inner else raw
    if origin in (tuple, list):
        items = [s for s in raw.split(",") if s != ""]
        elem = args[0] if args else str
        seq = [_coerce(elem, s.strip(), key) for s in items]
        return tuple(seq) if origin is tuple else seq
    if annotation is bool:
        if raw.lower() in ("1", "true", "yes", "on"):
            return True
        if raw.lower() in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"field {key!r}: expected a boolean, got {raw!r}")
    if annotation is int:
        return int(raw)
    if annotation is float:
        return float(raw)
    return raw
