"""Experiment protocol and decorator-based registry.

An *experiment* is a named, cacheable unit of paper reproduction — one
table or figure.  Each one declares:

* a **frozen spec dataclass** (subclass of :class:`ExperimentSpec`)
  holding every knob that affects its output — scale, seed override,
  model subset, …  The spec is hashable-by-content, which is what keys
  the on-disk run cache;
* a **runner**, ``run(spec) -> ExperimentResult``, registered with the
  :func:`experiment` decorator;
* **emitters** on the result: ``to_json`` (structured rows for the run
  directory) and ``to_markdown`` (a pipe table for reports), plus the
  plain-text paper-style table.

Grid experiments additionally decompose into **units** — independent
pieces of work (one Table-II model configuration, one ablation section,
one sweep point) that the process-pool executor in
:mod:`repro.runtime.parallel` fans out over workers and caches one
directory each.  A unit experiment registers

* ``units(spec) -> List[UnitSpec]`` — the grid rows, in table order;
* ``run_unit(spec, unit) -> dict`` — one row's work, returning
  JSON-able data (it runs in a worker process, so everything it
  touches must be derivable from ``(spec, unit)``);
* a **merge** function ``merge(spec, unit_results) ->
  ExperimentResult`` — the decorated function itself, assembling rows
  in unit order into the final result.

The serial runner for a unit experiment is synthesised from those three
pieces, so ``run(spec)``, ``--workers 1`` and ``--workers N`` share one
code path and produce byte-identical artifacts.

The registry is what makes the CLI generic: ``repro experiment
run/list/report`` look experiments up by name instead of hard-coding
imports.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "Experiment",
    "UnitSpec",
    "experiment",
    "unregister",
    "get_experiment",
    "list_experiments",
    "spec_from_overrides",
    "spec_from_json",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Base spec: the knobs every experiment shares.

    ``seed``/``epochs`` of ``None`` mean "use the scale's value"; a
    non-``None`` value overrides it (and, being part of the spec, lands
    in the cache key so overridden runs never collide with default ones).
    """

    scale: str = "default"
    seed: Optional[int] = None
    epochs: Optional[int] = None


@dataclass
class ExperimentResult:
    """What a runner returns: structured rows + the rendered table."""

    experiment: str
    rows: List[Dict[str, object]]
    table: str
    meta: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "rows": self.rows,
            "meta": self.meta,
        }

    def to_markdown(self) -> str:
        """GitHub pipe table over the row keys, fenced plain table below."""
        lines: List[str] = []
        if self.rows:
            headers = list(self.rows[0].keys())
            lines.append("| " + " | ".join(headers) + " |")
            lines.append("| " + " | ".join("---" for _ in headers) + " |")
            for row in self.rows:
                lines.append(
                    "| "
                    + " | ".join(_md_cell(row.get(h)) for h in headers)
                    + " |"
                )
            lines.append("")
        lines.append("```")
        lines.append(self.table)
        lines.append("```")
        return "\n".join(lines)


def _md_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value).replace("|", "\\|")


@dataclass(frozen=True)
class UnitSpec:
    """One independent piece of a grid experiment (one table row).

    ``key`` is the stable identifier that (together with the spec hash)
    keys the unit's on-disk cache directory — a model code, a suite
    name, ``T=5``.  ``title`` is the human label shown in progress
    lines; ``params`` carries whatever ``run_unit`` needs beyond the key
    (kept JSON-able so the unit manifest can record it).
    """

    key: str
    title: str = ""
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        return self.title or self.key

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)


def canonical_unit_result(result: Dict[str, object]) -> Dict[str, object]:
    """A unit result exactly as it reads back from its cache file.

    Every unit result is JSON-roundtripped before merging (tuples become
    lists, ints stay ints, floats stay bit-exact), so a merge over fresh
    in-memory results and a merge over results reloaded from unit cache
    directories produce byte-identical artifacts.
    """
    return json.loads(json.dumps(result))


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: metadata + spec type + runner.

    Unit experiments carry the decomposition triple (``units``,
    ``run_unit``, ``merge``); their ``runner`` is the synthesised serial
    path (run every unit in order, merge).
    """

    name: str
    title: str
    spec_type: Type[ExperimentSpec]
    runner: Callable[[ExperimentSpec], ExperimentResult]
    description: str = ""
    units: Optional[Callable[[ExperimentSpec], List[UnitSpec]]] = None
    run_unit: Optional[
        Callable[[ExperimentSpec, UnitSpec], Dict[str, object]]
    ] = None
    merge: Optional[
        Callable[[ExperimentSpec, List[Dict[str, object]]], ExperimentResult]
    ] = None

    @property
    def supports_units(self) -> bool:
        return self.units is not None

    def validate_spec(self, spec: Optional[ExperimentSpec]) -> ExperimentSpec:
        spec = spec if spec is not None else self.spec_type()
        if not isinstance(spec, self.spec_type):
            raise TypeError(
                f"experiment {self.name!r} takes a {self.spec_type.__name__}, "
                f"got {type(spec).__name__}"
            )
        return spec

    def run(self, spec: Optional[ExperimentSpec] = None) -> ExperimentResult:
        return self.runner(self.validate_spec(spec))


_REGISTRY: Dict[str, Experiment] = {}


def experiment(
    name: str,
    *,
    spec: Type[ExperimentSpec],
    title: str,
    description: str = "",
    units: Optional[Callable[[ExperimentSpec], List[UnitSpec]]] = None,
    run_unit: Optional[
        Callable[[ExperimentSpec, UnitSpec], Dict[str, object]]
    ] = None,
) -> Callable:
    """Register an experiment runner under ``name``.

    Without ``units``, the decorated function is the whole serial run,
    ``fn(spec) -> ExperimentResult``.  With ``units`` (and ``run_unit``),
    the decorated function is the **merge**, ``fn(spec, unit_results) ->
    ExperimentResult``, and the serial runner is synthesised: run every
    unit in order, canonicalise each result, merge.
    """
    if not dataclasses.is_dataclass(spec) or not spec.__dataclass_params__.frozen:
        raise TypeError(f"spec for {name!r} must be a frozen dataclass")
    if (units is None) != (run_unit is None):
        raise TypeError(
            f"experiment {name!r}: units and run_unit must be given together"
        )

    def decorate(fn: Callable) -> Callable:
        existing = _REGISTRY.get(name)
        if existing is not None and not _same_source(
            existing.merge if existing.merge is not None else existing.runner,
            fn,
        ):
            raise ValueError(f"experiment {name!r} already registered")
        # re-registration from the same source is idempotent: running a
        # module under runpy (``python -m repro.experiments.table1``)
        # executes its decorators a second time as ``__main__``
        if units is not None:

            def serial_runner(s: ExperimentSpec) -> ExperimentResult:
                results = [
                    canonical_unit_result(run_unit(s, u)) for u in units(s)
                ]
                return fn(s, results)

            runner, merge = serial_runner, fn
        else:
            runner, merge = fn, None
        _REGISTRY[name] = Experiment(
            name=name,
            title=title,
            spec_type=spec,
            runner=runner,
            description=description or (fn.__doc__ or "").strip(),
            units=units,
            run_unit=run_unit,
            merge=merge,
        )
        return fn

    return decorate


def _same_source(a: Callable, b: Callable) -> bool:
    """True when two runners are the same function (possibly re-imported)."""
    try:
        return (
            a.__qualname__ == b.__qualname__
            and a.__code__.co_filename == b.__code__.co_filename
        )
    except AttributeError:  # pragma: no cover - non-function callables
        return False


def unregister(name: str) -> None:
    """Remove a registration (tests use this to inject fakes)."""
    _REGISTRY.pop(name, None)


def get_experiment(name: str) -> Experiment:
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def list_experiments() -> List[Experiment]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _ensure_loaded() -> None:
    """Import the experiment modules so their decorators run."""
    from .. import experiments  # noqa: F401  (import side effect)


# ---------------------------------------------------------------------------
# spec construction from CLI-style overrides
# ---------------------------------------------------------------------------


def spec_from_overrides(
    spec_type: Type[ExperimentSpec], overrides: Dict[str, str]
) -> ExperimentSpec:
    """Build a spec from string key=value overrides, coercing field types."""
    fields = {f.name for f in dataclasses.fields(spec_type)}
    # resolve PEP 563 stringified annotations to real types
    hints = typing.get_type_hints(spec_type)
    kwargs: Dict[str, object] = {}
    for key, raw in overrides.items():
        if key not in fields:
            raise ValueError(
                f"{spec_type.__name__} has no field {key!r}; "
                f"fields: {sorted(fields)}"
            )
        kwargs[key] = _coerce(hints.get(key, str), raw, key)
    return spec_type(**kwargs)


def spec_from_json(
    spec_type: Type[ExperimentSpec], data: Dict[str, object]
) -> ExperimentSpec:
    """Rebuild a spec from its JSON form (``runner.spec_dict`` output).

    The inverse of serialising a spec into a manifest or golden fixture:
    JSON turned tuples into lists, so sequence-typed fields are coerced
    back according to the dataclass annotations.  Unknown keys raise
    ``ValueError`` — a fixture naming a field the spec no longer has is
    stale, not silently ignorable.
    """
    fields = {f.name for f in dataclasses.fields(spec_type)}
    hints = typing.get_type_hints(spec_type)
    kwargs: Dict[str, object] = {}
    for key, value in data.items():
        if key not in fields:
            raise ValueError(
                f"{spec_type.__name__} has no field {key!r}; "
                f"fields: {sorted(fields)}"
            )
        kwargs[key] = _coerce_json(hints.get(key, object), value)
    return spec_type(**kwargs)


def _coerce_json(annotation: object, value: object) -> object:
    """Map a JSON value back onto a resolved type annotation."""
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)
    if origin is typing.Union:  # Optional[X]
        if value is None:
            return None
        inner = [a for a in args if a is not type(None)]
        return _coerce_json(inner[0], value) if inner else value
    if origin in (tuple, list) and isinstance(value, (list, tuple)):
        elem = args[0] if args else object
        seq = [_coerce_json(elem, v) for v in value]
        return tuple(seq) if origin is tuple else seq
    return value


def _coerce(annotation: object, raw: str, key: str) -> object:
    """Parse ``raw`` according to a resolved type annotation."""
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)
    if origin is typing.Union:  # Optional[X]
        inner = [a for a in args if a is not type(None)]
        if raw.lower() in ("none", ""):
            return None
        return _coerce(inner[0], raw, key) if inner else raw
    if origin in (tuple, list):
        items = [s for s in raw.split(",") if s != ""]
        elem = args[0] if args else str
        seq = [_coerce(elem, s.strip(), key) for s in items]
        return tuple(seq) if origin is tuple else seq
    if annotation is bool:
        if raw.lower() in ("1", "true", "yes", "on"):
            return True
        if raw.lower() in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"field {key!r}: expected a boolean, got {raw!r}")
    if annotation is int:
        return int(raw)
    if annotation is float:
        return float(raw)
    return raw
