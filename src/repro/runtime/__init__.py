"""Unified experiment runtime: registry, specs, and cached run artifacts.

* :mod:`.registry` — the :class:`Experiment` protocol, frozen spec
  dataclasses, and the decorator-based registry the CLI is driven by;
* :mod:`.runner` — run directories with a ``manifest.json`` keyed by a
  spec hash, giving every paper table the same cache-hit/invalidation
  semantics as the dataset pipeline.
"""

from .registry import (
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    experiment,
    get_experiment,
    list_experiments,
    spec_from_overrides,
)
from .runner import (
    RunRecord,
    default_runs_dir,
    execute,
    list_runs,
    load_record,
    run_dir_for,
    spec_hash,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "experiment",
    "get_experiment",
    "list_experiments",
    "spec_from_overrides",
    "RunRecord",
    "default_runs_dir",
    "execute",
    "list_runs",
    "load_record",
    "run_dir_for",
    "spec_hash",
]
