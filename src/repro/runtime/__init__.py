"""Unified experiment runtime: registry, specs, and cached run artifacts.

* :mod:`.registry` — the :class:`Experiment` protocol, frozen spec
  dataclasses, the unit-decomposition API (:class:`UnitSpec`,
  ``units``/``run_unit``/``merge``) and the decorator-based registry the
  CLI is driven by;
* :mod:`.runner` — run directories with a ``manifest.json`` keyed by a
  spec hash, giving every paper table the same cache-hit/invalidation
  semantics as the dataset pipeline;
* :mod:`.parallel` — the process-pool executor that fans a grid
  experiment's units out over workers with per-unit cache directories,
  so killed grids resume from completed units;
* :mod:`.compare` — metric diffs between two cached runs.
"""

from .compare import compare_results, load_run_result, resolve_run_dir
from .parallel import (
    UnitProgress,
    default_workers,
    execute_parallel,
    load_unit_result,
    unit_dir_for,
    unit_hash,
)
from .registry import (
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
    get_experiment,
    list_experiments,
    spec_from_overrides,
)
from .runner import (
    RunRecord,
    default_runs_dir,
    execute,
    list_runs,
    load_record,
    run_dir_for,
    spec_hash,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "UnitSpec",
    "experiment",
    "get_experiment",
    "list_experiments",
    "spec_from_overrides",
    "RunRecord",
    "default_runs_dir",
    "execute",
    "list_runs",
    "load_record",
    "run_dir_for",
    "spec_hash",
    "UnitProgress",
    "default_workers",
    "execute_parallel",
    "load_unit_result",
    "unit_dir_for",
    "unit_hash",
    "compare_results",
    "load_run_result",
    "resolve_run_dir",
]
