"""Unified experiment runtime: registry, specs, and cached run artifacts.

* :mod:`.registry` — the :class:`Experiment` protocol, frozen spec
  dataclasses, the unit-decomposition API (:class:`UnitSpec`,
  ``units``/``run_unit``/``merge``) and the decorator-based registry the
  CLI is driven by;
* :mod:`.runner` — run directories with a ``manifest.json`` keyed by a
  spec hash, giving every paper table the same cache-hit/invalidation
  semantics as the dataset pipeline;
* :mod:`.parallel` — the process-pool executor that fans a grid
  experiment's units out over workers with per-unit cache directories,
  so killed grids resume from completed units;
* :mod:`.compare` — metric diffs between two cached runs, with optional
  tolerance gating;
* :mod:`.golden` — committed golden-metric fixtures and the drift gate
  behind ``repro experiment capture``/``verify``.
"""

from .compare import (
    apply_tolerances,
    compare_results,
    label_and_metric_keys,
    load_run_result,
    load_tolerances,
    resolve_run_dir,
)
from .golden import (
    Golden,
    GoldenError,
    GoldenReport,
    capture_golden,
    default_goldens_dir,
    golden_path,
    list_golden_paths,
    load_golden,
    verify_golden,
    write_golden,
)
from .parallel import (
    UnitProgress,
    default_workers,
    execute_parallel,
    load_unit_result,
    unit_dir_for,
    unit_hash,
)
from .registry import (
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
    get_experiment,
    list_experiments,
    spec_from_json,
    spec_from_overrides,
)
from .runner import (
    RunRecord,
    default_runs_dir,
    execute,
    list_runs,
    load_record,
    run_dir_for,
    spec_hash,
    spec_hash_from_dict,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "UnitSpec",
    "experiment",
    "get_experiment",
    "list_experiments",
    "spec_from_json",
    "spec_from_overrides",
    "RunRecord",
    "default_runs_dir",
    "execute",
    "list_runs",
    "load_record",
    "run_dir_for",
    "spec_hash",
    "spec_hash_from_dict",
    "UnitProgress",
    "default_workers",
    "execute_parallel",
    "load_unit_result",
    "unit_dir_for",
    "unit_hash",
    "compare_results",
    "label_and_metric_keys",
    "load_run_result",
    "load_tolerances",
    "resolve_run_dir",
    "apply_tolerances",
    "Golden",
    "GoldenError",
    "GoldenReport",
    "capture_golden",
    "default_goldens_dir",
    "golden_path",
    "list_golden_paths",
    "load_golden",
    "verify_golden",
    "write_golden",
]
