"""Logic-synthesis front end ("ABC-lite"): netlist -> optimised AIG."""

from .balance import balance
from .pipeline import has_constant_outputs, strip_constant_outputs, synthesize
from .strash import StrashBuilder, strash, structural_hash
from .sweep import sweep
from .transform import netlist_to_aig

__all__ = [
    "balance",
    "has_constant_outputs",
    "strip_constant_outputs",
    "synthesize",
    "StrashBuilder",
    "strash",
    "structural_hash",
    "sweep",
    "netlist_to_aig",
]
