"""AND-tree balancing (ABC's ``balance`` pass, restricted to AND trees).

Long chains of 2-input ANDs computing one big conjunction are collapsed and
rebuilt as depth-optimal trees: single-fanout, non-complemented AND fan-ins
are treated as internal to the supergate and the collected leaves are merged
lowest-level-first (see :meth:`StrashBuilder.add_and_tree`).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..aig.graph import AIG, lit_is_negated, lit_negate, lit_var
from .strash import StrashBuilder

__all__ = ["balance"]


def balance(aig: AIG) -> AIG:
    """Return a functionally equivalent AIG with balanced AND trees."""
    fanout = aig.fanout_counts()
    builder = StrashBuilder(aig.num_pis, aig.name)
    old_to_new = np.zeros(aig.num_vars, dtype=np.int64)
    for i in range(aig.num_pis):
        old_to_new[1 + i] = builder.pi_lit(i)

    def map_lit(lit: int) -> int:
        mapped = int(old_to_new[lit_var(lit)])
        return lit_negate(mapped) if lit_is_negated(lit) else mapped

    base = 1 + aig.num_pis

    def collect_leaves(root_var: int) -> List[int]:
        """Flatten the maximal single-fanout AND tree under ``root_var``.

        Iterative (deep ripple chains overflow Python's recursion limit).
        Returns *old* fan-in literals that are leaves of the supergate.
        """
        leaves: List[int] = []
        stack = [root_var]
        while stack:
            var = stack.pop()
            a, b = (int(x) for x in aig.ands[var - base])
            for lit in (a, b):
                v = lit_var(lit)
                internal = (
                    not lit_is_negated(lit)
                    and aig.is_and_var(v)
                    and fanout[v] == 1
                )
                if internal:
                    stack.append(v)
                else:
                    leaves.append(lit)
        return leaves

    for i in range(aig.num_ands):
        var = base + i
        if fanout[var] == 0:
            old_to_new[var] = builder.const0  # dead node; swept by rebuild
            continue
        mapped = [map_lit(lit) for lit in collect_leaves(var)]
        old_to_new[var] = builder.add_and_tree(mapped)

    for o in aig.outputs:
        builder.add_output(map_lit(o))
    return builder.build()
