"""Lowering gate-level netlists into And-Inverter Graphs.

This is the "Mapping to AIG" step of the paper's circuit data preparation
flow (Fig. 2a): every library gate is decomposed into 2-input ANDs and
inverters.  Structural hashing is applied during construction, so repeated
sub-expressions are shared exactly as a synthesis tool would share them.
"""

from __future__ import annotations

from typing import Dict, List

from ..aig.graph import AIG, lit_negate
from ..aig.netlist import GateType, Netlist, NetlistError
from .strash import StrashBuilder

__all__ = ["netlist_to_aig"]


def netlist_to_aig(netlist: Netlist, name: str = None) -> AIG:
    """Convert a validated :class:`Netlist` into a structurally hashed AIG.

    The output preserves primary input order.  Multi-fanin gates are
    decomposed as balanced trees, keeping depth logarithmic in fan-in.
    """
    netlist.validate()
    builder = StrashBuilder(len(netlist.inputs), name or netlist.name)
    lit_of: Dict[str, int] = {
        pin: builder.pi_lit(i) for i, pin in enumerate(netlist.inputs)
    }

    for net in netlist.topological_order():
        gate = netlist.gate(net)
        t = gate.gate_type
        if t == GateType.INPUT:
            continue
        ins: List[int] = [lit_of[f] for f in gate.fanins]
        if t == GateType.CONST0:
            lit_of[net] = builder.const0
        elif t == GateType.CONST1:
            lit_of[net] = builder.const1
        elif t == GateType.BUF:
            lit_of[net] = ins[0]
        elif t == GateType.NOT:
            lit_of[net] = lit_negate(ins[0])
        elif t == GateType.AND:
            lit_of[net] = builder.add_and_tree(ins)
        elif t == GateType.NAND:
            lit_of[net] = lit_negate(builder.add_and_tree(ins))
        elif t == GateType.OR:
            lit_of[net] = builder.add_or_tree(ins)
        elif t == GateType.NOR:
            lit_of[net] = lit_negate(builder.add_or_tree(ins))
        elif t == GateType.XOR:
            lit_of[net] = builder.add_xor_tree(ins)
        elif t == GateType.XNOR:
            lit_of[net] = lit_negate(builder.add_xor_tree(ins))
        elif t == GateType.MUX:
            sel, if_false, if_true = ins
            lit_of[net] = builder.add_mux(sel, if_false, if_true)
        else:  # pragma: no cover - Gate.__post_init__ rejects unknowns
            raise NetlistError(f"cannot lower gate type {t!r}")

    for out in netlist.outputs:
        builder.add_output(lit_of[out])
    return builder.build()
