"""The full synthesis pipeline: the paper's "Mapping to AIG + Logic
Optimization" stage (Fig. 2a), standing in for ABC.

``synthesize`` accepts either a gate-level :class:`Netlist` or an existing
:class:`AIG` and produces an optimised AIG: structurally hashed, constant-
free (constants propagated to the outputs), balanced and swept.
"""

from __future__ import annotations

from typing import Union

from ..aig.graph import AIG, lit_var
from ..aig.netlist import Netlist
from .balance import balance
from .strash import strash
from .sweep import sweep
from .transform import netlist_to_aig

__all__ = ["synthesize", "has_constant_outputs", "strip_constant_outputs"]


def synthesize(circuit: Union[Netlist, AIG], rounds: int = 2) -> AIG:
    """Lower and optimise ``circuit`` into a compact AIG.

    Parameters
    ----------
    circuit:
        Gate-level netlist or raw AIG.
    rounds:
        Number of ``strash -> balance`` refinement rounds.  Two rounds
        reach a fixpoint on all circuit families in the test suite.
    """
    if isinstance(circuit, Netlist):
        aig = netlist_to_aig(circuit)
    elif isinstance(circuit, AIG):
        aig = circuit
    else:
        raise TypeError(f"expected Netlist or AIG, got {type(circuit).__name__}")
    for _ in range(max(1, rounds)):
        aig = strash(aig)
        aig = balance(aig)
    return sweep(aig)


def has_constant_outputs(aig: AIG) -> bool:
    """True when some primary output reduced to constant 0/1.

    Such circuits cannot be expressed as a pure PI/AND/NOT gate graph; the
    dataset extraction flow skips them (they carry no learnable signal).
    """
    return any(lit_var(o) == 0 for o in aig.outputs)


def strip_constant_outputs(aig: AIG) -> AIG:
    """Drop constant primary outputs and sweep the remainder.

    Real designs do produce constant bits after optimisation (bit 1 of a
    squarer output is always 0, for example); the learning flow removes
    them because the PI/AND/NOT gate graph has no constant node type.
    """
    keep = [o for o in aig.outputs if lit_var(o) != 0]
    if not keep:
        raise ValueError(f"{aig.name}: every output is constant")
    return sweep(AIG(aig.num_pis, aig.ands, keep, aig.name))
