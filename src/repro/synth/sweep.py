"""Dead-node sweeping: remove AND nodes not in any output's fan-in cone."""

from __future__ import annotations

from typing import List

import numpy as np

from ..aig.graph import AIG, lit_is_negated, lit_negate, lit_var

__all__ = ["sweep"]


def sweep(aig: AIG) -> AIG:
    """Return ``aig`` restricted to the transitive fan-in of its outputs.

    Primary inputs are always kept (so PI indices stay stable — the paper's
    circuits keep their interfaces through optimisation).
    """
    keep = np.zeros(aig.num_vars, dtype=bool)
    stack = [lit_var(o) for o in aig.outputs]
    while stack:
        var = stack.pop()
        if keep[var] or var == 0:
            continue
        keep[var] = True
        if aig.is_and_var(var):
            a, b = (int(x) for x in aig.ands[var - 1 - aig.num_pis])
            stack.append(lit_var(a))
            stack.append(lit_var(b))

    base = 1 + aig.num_pis
    old_to_new = np.zeros(aig.num_vars, dtype=np.int64)
    for i in range(aig.num_pis):
        old_to_new[1 + i] = 1 + i
    new_ands: List[List[int]] = []
    next_var = base
    for i in range(aig.num_ands):
        var = base + i
        if not keep[var]:
            continue
        a, b = (int(x) for x in aig.ands[i])

        def remap(lit: int) -> int:
            new = 2 * int(old_to_new[lit_var(lit)])
            return lit_negate(new) if lit_is_negated(lit) else new

        new_ands.append([remap(a), remap(b)])
        old_to_new[var] = next_var
        next_var += 1

    outputs = []
    for o in aig.outputs:
        var = lit_var(o)
        new = 2 * int(old_to_new[var]) if var else 0
        outputs.append(lit_negate(new) if lit_is_negated(o) else new)
    ands = np.asarray(new_ands, dtype=np.int64).reshape(-1, 2)
    return AIG(aig.num_pis, ands, outputs, aig.name)
