"""Structural hashing (strash) for AIG construction.

Structural hashing is the workhorse of ABC-style synthesis: every 2-input
AND is canonicalised (ordered fan-ins) and looked up in a hash table, so
structurally identical sub-functions are built exactly once.  Constant and
trivial-identity simplifications are applied on the fly, together with a
small set of one-level rewrite rules (containment / contradiction), which is
what gives the "optimised circuit" inductive bias the paper relies on.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..aig.graph import (
    AIG,
    CONST0_LIT,
    CONST1_LIT,
    lit_is_negated,
    lit_make,
    lit_negate,
    lit_var,
)

__all__ = ["StrashBuilder", "strash", "structural_hash"]


class StrashBuilder:
    """AIG builder with structural hashing and local simplification.

    Compared with :class:`repro.aig.AIGBuilder`, ``add_and`` here never
    creates duplicate structure and applies these rules:

    * ``a & a = a``; ``a & !a = 0``; ``a & 1 = a``; ``a & 0 = 0``
    * containment: ``a & (a & b) = (a & b)``
    * contradiction: ``a & (!a & b) = 0`` (checked one level deep)
    """

    def __init__(self, num_pis: int, name: str = "aig"):
        self.name = name
        self.num_pis = num_pis
        self._ands: List[Tuple[int, int]] = []
        self._outputs: List[int] = []
        self._table: Dict[Tuple[int, int], int] = {}  # (lit0, lit1) -> var
        self._levels: List[int] = [0] * (1 + num_pis)  # per-var logic level

    # -- literals ---------------------------------------------------------
    def pi_lit(self, i: int) -> int:
        if not 0 <= i < self.num_pis:
            raise IndexError(f"PI index {i} out of range")
        return lit_make(1 + i)

    @property
    def const0(self) -> int:
        return CONST0_LIT

    @property
    def const1(self) -> int:
        return CONST1_LIT

    # -- core -------------------------------------------------------------
    def add_and(self, a: int, b: int) -> int:
        """Return a literal computing ``a & b``, reusing structure."""
        if a > b:
            a, b = b, a
        # constants and trivial identities
        if a == CONST0_LIT:
            return CONST0_LIT
        if a == CONST1_LIT:
            return b
        if a == b:
            return a
        if a == lit_negate(b):
            return CONST0_LIT
        # one-level containment / contradiction rules
        simplified = self._one_level_rule(a, b)
        if simplified is not None:
            return simplified
        key = (a, b)
        var = self._table.get(key)
        if var is None:
            var = 1 + self.num_pis + len(self._ands)
            for lit in (a, b):
                if lit_var(lit) >= var:
                    raise ValueError(f"fan-in literal {lit} not yet defined")
            self._ands.append(key)
            self._table[key] = var
            self._levels.append(
                1 + max(self._levels[lit_var(a)], self._levels[lit_var(b)])
            )
        return lit_make(var)

    def level_of(self, lit: int) -> int:
        """Logic level of the variable behind ``lit`` (PIs/consts at 0)."""
        return self._levels[lit_var(lit)]

    def _fanins_of(self, lit: int) -> Optional[Tuple[int, int]]:
        """Fan-in literals if ``lit`` is a non-complemented AND, else None."""
        var = lit_var(lit)
        if lit_is_negated(lit) or var <= self.num_pis or var == 0:
            return None
        return self._ands[var - 1 - self.num_pis]

    def _one_level_rule(self, a: int, b: int) -> Optional[int]:
        """ABC-style one-level rules on ``a & b`` (a, b ordered)."""
        for x, y in ((a, b), (b, a)):
            fan = self._fanins_of(y)
            if fan is None:
                continue
            f0, f1 = fan
            if x == f0 or x == f1:  # a & (a & b) = (a & b)
                return y
            if x == lit_negate(f0) or x == lit_negate(f1):  # a & (!a & b) = 0
                return CONST0_LIT
        return None

    # -- convenience logic ops (used by transform and generators) ---------
    def add_not(self, a: int) -> int:
        return lit_negate(a)

    def add_or(self, a: int, b: int) -> int:
        return lit_negate(self.add_and(lit_negate(a), lit_negate(b)))

    def add_nand(self, a: int, b: int) -> int:
        return lit_negate(self.add_and(a, b))

    def add_nor(self, a: int, b: int) -> int:
        return self.add_and(lit_negate(a), lit_negate(b))

    def add_xor(self, a: int, b: int) -> int:
        # a ^ b = !( !(a & !b) & !(!a & b) )
        t0 = self.add_and(a, lit_negate(b))
        t1 = self.add_and(lit_negate(a), b)
        return self.add_or(t0, t1)

    def add_xnor(self, a: int, b: int) -> int:
        return lit_negate(self.add_xor(a, b))

    def add_mux(self, sel: int, if_false: int, if_true: int) -> int:
        """2:1 multiplexer: ``sel ? if_true : if_false``."""
        t = self.add_and(sel, if_true)
        f = self.add_and(lit_negate(sel), if_false)
        return self.add_or(t, f)

    def add_and_tree(self, lits: List[int]) -> int:
        """Depth-aware conjunction of arbitrarily many literals.

        Operands are merged lowest-level-first (Huffman style), which is the
        balancing strategy ABC's ``balance`` pass uses for AND supergates.
        """
        if not lits:
            return CONST1_LIT
        heap = [(self.level_of(lit), k, lit) for k, lit in enumerate(lits)]
        heapq.heapify(heap)
        counter = len(lits)
        while len(heap) > 1:
            _, _, a = heapq.heappop(heap)
            _, _, b = heapq.heappop(heap)
            c = self.add_and(a, b)
            heapq.heappush(heap, (self.level_of(c), counter, c))
            counter += 1
        return heap[0][2]

    def add_or_tree(self, lits: List[int]) -> int:
        """Balanced disjunction of arbitrarily many literals."""
        return lit_negate(self.add_and_tree([lit_negate(x) for x in lits]))

    def add_xor_tree(self, lits: List[int]) -> int:
        """Balanced parity of arbitrarily many literals."""
        if not lits:
            return CONST0_LIT
        layer = list(lits)
        while len(layer) > 1:
            nxt = [
                self.add_xor(layer[k], layer[k + 1])
                for k in range(0, len(layer) - 1, 2)
            ]
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    # -- outputs / build ----------------------------------------------------
    def add_output(self, lit: int) -> None:
        self._outputs.append(lit)

    @property
    def num_ands(self) -> int:
        return len(self._ands)

    def build(self, name: Optional[str] = None) -> AIG:
        ands = np.asarray(self._ands, dtype=np.int64).reshape(-1, 2)
        return AIG(self.num_pis, ands, self._outputs, name or self.name)


def strash(aig: AIG) -> AIG:
    """Rebuild ``aig`` through a :class:`StrashBuilder`.

    Merges structurally identical nodes, propagates constants and applies
    the one-level rules.  The result is functionally equivalent.
    """
    b = StrashBuilder(aig.num_pis, aig.name)
    old_to_new = np.zeros(aig.num_vars, dtype=np.int64)
    old_to_new[0] = CONST0_LIT
    for i in range(aig.num_pis):
        old_to_new[1 + i] = b.pi_lit(i)

    def map_lit(lit: int) -> int:
        mapped = int(old_to_new[lit_var(lit)])
        return lit_negate(mapped) if lit_is_negated(lit) else mapped

    base = 1 + aig.num_pis
    for i in range(aig.num_ands):
        a, bb = (int(x) for x in aig.ands[i])
        old_to_new[base + i] = b.add_and(map_lit(a), map_lit(bb))
    for o in aig.outputs:
        b.add_output(map_lit(o))
    return b.build()


def structural_hash(aig: AIG, canonicalize: bool = True) -> str:
    """Name-independent sha256 fingerprint of ``aig``'s structure.

    The hash covers the PI count, the AND fan-in table and the output
    literals — everything that defines the graph — and nothing else, so
    two parses of the same circuit under different names collide (which is
    the point: it is the compilation-cache key for ``repro serve``).  With
    ``canonicalize`` (the default) the AIG is first rebuilt through
    :func:`strash`, merging duplicate structure, so lightly redundant
    variants of the same netlist also map to one key.
    """
    if canonicalize:
        aig = strash(aig)
    h = hashlib.sha256()
    outputs = ",".join(str(int(o)) for o in aig.outputs)
    h.update(f"aig1:{aig.num_pis}:{aig.num_ands}:{outputs}:".encode("ascii"))
    h.update(np.ascontiguousarray(aig.ands, dtype=np.int64).tobytes())
    return h.hexdigest()
