"""Tuning knobs for the lease-based dispatcher/worker protocol.

One frozen dataclass carries every timing and retry parameter, so the
dispatcher, standalone workers and the chaos tests agree on semantics by
construction.  Each field has an environment override (``REPRO_LEASE_TTL``
etc.) so extra hosts joining a run via ``repro worker`` can match the
dispatcher's settings without repeating CLI flags.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Mapping, Optional

__all__ = ["DistConfig", "ENV_KNOBS"]

#: env var -> DistConfig field
ENV_KNOBS = {
    "REPRO_LEASE_TTL": "lease_ttl",
    "REPRO_HEARTBEAT_INTERVAL": "heartbeat_interval",
    "REPRO_MAX_ATTEMPTS": "max_attempts",
    "REPRO_BACKOFF_BASE": "backoff_base",
    "REPRO_BACKOFF_CAP": "backoff_cap",
    "REPRO_POLL_INTERVAL": "poll_interval",
}


@dataclass(frozen=True)
class DistConfig:
    """Lease lifecycle and retry policy for distributed execution.

    * ``lease_ttl`` — seconds without a heartbeat after which a lease is
      *stale* and any worker may reclaim it (the crash-recovery clock);
    * ``heartbeat_interval`` — how often a running worker renews its
      lease; must be well under the TTL so slow-but-alive workers are
      never mistaken for dead ones;
    * ``max_attempts`` — executions of one unit before it is quarantined
      as *poisoned* instead of retried forever;
    * ``backoff_base``/``backoff_cap`` — exponential per-unit retry
      delay: attempt ``n`` becomes eligible ``min(cap, base * 2**(n-1))``
      seconds after attempt ``n`` was claimed;
    * ``poll_interval`` — how long an idle worker sleeps between scans
      of the work list.
    """

    lease_ttl: float = 15.0
    heartbeat_interval: float = 2.0
    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 10.0
    poll_interval: float = 0.2

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if not 0 < self.heartbeat_interval < self.lease_ttl:
            raise ValueError(
                "heartbeat_interval must be positive and below lease_ttl "
                f"(got {self.heartbeat_interval} vs ttl {self.lease_ttl})"
            )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be non-negative")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def backoff_delay(self, attempt: int) -> float:
        """Eligibility delay after claiming attempt ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))

    @classmethod
    def from_env(
        cls, env: Optional[Mapping[str, str]] = None, **overrides
    ) -> "DistConfig":
        """Defaults, then ``REPRO_*`` env knobs, then explicit overrides.

        ``None``-valued overrides are ignored so CLI plumbing can pass
        unset flags straight through.
        """
        env = os.environ if env is None else env
        config = cls()
        fields = {}
        for var, field_name in ENV_KNOBS.items():
            raw = env.get(var)
            if raw is None or raw == "":
                continue
            caster = int if field_name == "max_attempts" else float
            try:
                fields[field_name] = caster(raw)
            except ValueError:
                raise ValueError(
                    f"bad {var} {raw!r}: expected "
                    f"{'an integer' if caster is int else 'a number'}"
                )
        fields.update({k: v for k, v in overrides.items() if v is not None})
        return replace(config, **fields) if fields else config
