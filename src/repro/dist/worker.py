"""The lease-based worker loop.

A worker repeatedly scans its :class:`~repro.dist.work.WorkSource` for
unresolved items and, for each one it can claim, runs the full
claim → execute → commit → release protocol:

1. skip items that are committed, quarantined, or inside their
   retry-backoff window; an item that burned through ``max_attempts``
   is quarantined — but only under the item's lease (attempts are
   recorded *before* execution, so an exhausted-looking count may
   describe a final attempt still running on a peer: a fresh foreign
   lease always blocks poisoning);
2. :meth:`~repro.dist.leases.LeaseStore.try_acquire` a lease (losing a
   race is normal — move on);
3. re-check ``is_done()`` *after* acquiring: a predecessor that crashed
   between its atomic commit and its lease release left a committed item
   under a stale lease, which must not be re-executed;
4. record the attempt (count + backoff clock) so a crash mid-execution
   is already accounted for;
5. execute with a background heartbeat renewing the lease, re-verify
   ownership, commit atomically, release.

Workers are interchangeable and stateless between items: any number may
run the same loop on the same shared directory, including processes that
join mid-run (``repro worker``).  A worker that finds nothing claimable
sleeps ``poll_interval`` and rescans; the loop returns once every item
is committed or quarantined, or when ``stop_event`` is set (SIGTERM
drain: the in-flight item is finished and released, nothing new is
claimed).

Fault-injection hooks (:mod:`repro.dist.faults`) sit at the exact
protocol points the chaos suite cares about; with no plan in the
environment they are inert.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .config import DistConfig
from .faults import FaultInjector
from .leases import LeaseStore, new_owner_id
from .work import WorkItem, WorkSource

__all__ = [
    "HeartbeatThread",
    "WorkerReport",
    "run_worker",
]

#: progress callback: ``fn(event)`` with ``status`` ("done" | "failed" |
#: "poisoned" | "abandoned"), ``key``, ``label`` and ``detail``.
WorkerProgress = Callable[[Dict[str, object]], None]


class HeartbeatThread(threading.Thread):
    """Renews one lease in the background while its item executes.

    ``lost`` flips to True (and renewal stops) the moment a renewal
    fails, i.e. the lease was reclaimed out from under us — the worker
    checks it before committing.  ``pause``/``resume`` exist for the
    ``stall_past_lease`` fault, which needs heartbeats suspended long
    enough for the lease to go stale.
    """

    def __init__(
        self, store: LeaseStore, key: str, owner: str, interval: float
    ):
        super().__init__(name=f"heartbeat-{key}", daemon=True)
        self.store = store
        self.key = key
        self.owner = owner
        self.interval = interval
        self.lost = False
        # note: not named _stop — Thread.join() calls an internal _stop()
        self._halt = threading.Event()
        self._paused = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            if self._paused.is_set():
                continue
            if not self.store.heartbeat(self.key, self.owner):
                self.lost = True
                return

    def pause(self) -> None:
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self.interval * 4 + 1.0)


@dataclass
class WorkerReport:
    """What one worker loop did before returning."""

    owner: str
    completed: List[str] = field(default_factory=list)
    skipped_done: int = 0
    failed: int = 0
    abandoned: int = 0
    poisoned: List[str] = field(default_factory=list)
    drained: bool = False


def _emit(
    progress: Optional[WorkerProgress],
    status: str,
    item: WorkItem,
    detail: str = "",
) -> None:
    if progress is not None:
        progress(
            {
                "status": status,
                "key": item.key,
                "label": item.label,
                "detail": detail,
            }
        )


def run_worker(
    source: WorkSource,
    cfg: Optional[DistConfig] = None,
    owner: Optional[str] = None,
    stop_event: Optional[threading.Event] = None,
    progress: Optional[WorkerProgress] = None,
) -> WorkerReport:
    """Run the claim/execute/commit loop until the source is resolved.

    Returns a :class:`WorkerReport`; raises nothing for per-item
    failures (they go through retry/backoff/quarantine).  ``stop_event``
    triggers a drain: finish and release the in-flight item, then
    return with ``drained=True``.
    """
    cfg = DistConfig() if cfg is None else cfg
    owner = new_owner_id() if owner is None else owner
    stop_event = threading.Event() if stop_event is None else stop_event

    coord = source.coordination_dir()
    store = LeaseStore(coord, ttl=cfg.lease_ttl)
    injector = FaultInjector.from_env(coord)
    items = source.items()
    report = WorkerReport(owner=owner)

    while True:
        if stop_event.is_set():
            report.drained = True
            return report
        unresolved = 0
        progressed = False
        for item in items:
            if stop_event.is_set():
                break
            if item.is_done() or store.is_poisoned(item.key):
                continue
            unresolved += 1
            now = time.time()
            rec = store.attempts(item.key)
            if rec.count >= cfg.max_attempts:
                progressed = (
                    _quarantine(item, store, cfg, report, progress, owner)
                    or progressed
                )
                continue
            if now < rec.next_eligible_at:
                continue
            lease = store.try_acquire(item.key, owner, now)
            if lease is None:
                continue
            if item.is_done():
                # predecessor crashed after its commit, before its
                # release: the work is in the cache, just drop the lease
                report.skipped_done += 1
                store.release(item.key, owner)
                progressed = True
                continue
            count = rec.count + 1
            store.record_attempt(
                item.key,
                count,
                next_eligible_at=now + cfg.backoff_delay(count),
                last_error=rec.last_error,
            )
            progressed = (
                _run_item(item, store, injector, cfg, owner, count, report,
                          progress)
                or progressed
            )
        if unresolved == 0:
            return report
        if not progressed:
            time.sleep(cfg.poll_interval)


def _quarantine(
    item: WorkItem,
    store: LeaseStore,
    cfg: DistConfig,
    report: WorkerReport,
    progress: Optional[WorkerProgress],
    owner: str,
) -> bool:
    """Poison an item whose retry budget is spent — lease in hand.

    ``count == max_attempts`` in the attempt record also describes an
    item whose *final* attempt is executing right now on another worker
    (attempts are recorded before execution), so quarantining is gated
    on acquiring the item's lease: a fresh foreign lease means a live
    holder whose attempt may yet commit, and the scan moves on.
    Acquiring proves nothing is in flight — the holder either poisoned
    the item itself (see :func:`_run_item`) or died before it could —
    and keeps the invariant that poison records are written only by the
    current lease holder.  Returns True when the scan made progress.
    """
    lease = store.try_acquire(item.key, owner)
    if lease is None:
        return False  # live holder on its final attempt — not ours to judge
    try:
        if item.is_done():
            # the final attempt committed, then its worker died before
            # releasing: the item is resolved, nothing to poison
            report.skipped_done += 1
            return True
        rec = store.attempts(item.key)
        if rec.count < cfg.max_attempts:
            return False  # record changed underfoot; let the rescan decide
        store.poison(item.key, rec.count, rec.last_error)
        report.poisoned.append(item.key)
        _emit(progress, "poisoned", item, rec.last_error)
        return True
    finally:
        store.release(item.key, owner)


def _run_item(
    item: WorkItem,
    store: LeaseStore,
    injector: FaultInjector,
    cfg: DistConfig,
    owner: str,
    count: int,
    report: WorkerReport,
    progress: Optional[WorkerProgress],
) -> bool:
    """Execute one claimed item end to end.  Returns True on commit."""
    hb = HeartbeatThread(store, item.key, owner, cfg.heartbeat_interval)
    hb.start()
    try:
        try:
            payload = item.run()
        except Exception as exc:  # noqa: BLE001 - quarantine, don't die
            error = f"{type(exc).__name__}: {exc}"
            store.record_attempt(
                item.key,
                count,
                next_eligible_at=time.time() + cfg.backoff_delay(count),
                last_error=error,
            )
            report.failed += 1
            _emit(progress, "failed", item, error)
            if count >= cfg.max_attempts and store.owns(item.key, owner):
                # that was the final permitted attempt and the lease is
                # still ours: quarantine here, under the lease, instead
                # of leaving it to a scan (which would have to reclaim)
                store.poison(item.key, count, error)
                report.poisoned.append(item.key)
                _emit(progress, "poisoned", item, error)
            return False

        if injector.take("stall_past_lease", item.label):
            # wedge with heartbeats suspended until the lease is stale;
            # a rival may reclaim meanwhile — the ownership check below
            # decides whether this result is still ours to publish
            hb.pause()
            time.sleep(cfg.lease_ttl + cfg.heartbeat_interval)
            hb.resume()
        if injector.take("torn_write", item.label):
            # the failure mode atomic commits exist to prevent, forced:
            # a truncated artifact in place, then sudden death
            item.simulate_torn_write()
            injector.crash()
        if injector.take("crash_before_commit", item.label):
            injector.crash()

        if hb.lost or not store.owns(item.key, owner):
            # lease reclaimed mid-flight: someone else owns the item
            # now; abandon the result (commits are idempotent, but
            # double-publishing is still pointless churn)
            report.abandoned += 1
            _emit(progress, "abandoned", item)
            return False

        item.commit(payload)
        if injector.take("crash_after_commit", item.label):
            injector.crash()
        report.completed.append(item.key)
        _emit(progress, "done", item)
        return True
    finally:
        hb.stop()
        store.release(item.key, owner)
