"""Lease files: crash-safe mutual exclusion over a shared cache layout.

A *lease* is one JSON file under ``<coordination dir>/leases/<key>.json``
claiming one work item (an experiment unit, a dataset shard) for one
worker.  The protocol is designed so that a worker killed with ``kill
-9`` at any instant leaves either a reclaimable lease or no lease — a
lease can never deadlock a run:

* **acquire** — the lease content is written to a temp file first and
  hard-linked into place (`os.link` fails atomically if the lease
  exists), so a lease file is always complete: creation *is* the
  critical section;
* **heartbeat** — the holder periodically rewrites the lease (atomic
  temp + ``os.replace``) with a fresh wall-clock timestamp; a lease
  whose heartbeat is older than its TTL is *stale*;
* **reclaim** — a claimant first publishes a *reclaim marker*
  (create-excl, content-stamped with its creation time) so only one
  claimant reclaims at a time and the transient no-lease-file window
  mid-reclaim is recognisable as such; it then renames the stale lease
  to a claimant-unique tombstone (``os.rename`` of one source succeeds
  exactly once, the hard CAS under the marker), re-reads the tombstone
  to undo a rename that caught a heartbeat-resurrected fresh lease, and
  acquires freshly, carrying the attempt count forward.  A marker older
  than the TTL is an orphan from a reclaimer that died mid-reclaim and
  is swept by the next claimant.

Leases provide *efficiency* (no duplicated work, crash recovery); they
are deliberately not the correctness boundary.  Every commit in this
repo is idempotent and atomic, and workers re-verify ownership before
committing, so even a pathological double-claim (e.g. extreme clock
skew between hosts) degrades to wasted work, never to a torn artifact.

Next to the leases live two sibling records, both written atomically by
the current lease holder only:

* ``attempts/<key>.json`` — how many times the item has been claimed and
  when it is next eligible (the exponential-backoff clock), plus the
  last error message;
* ``poisoned/<key>.json`` — the quarantine marker written once an item
  has burned through ``max_attempts``; poisoned items are skipped by
  every worker and reported loudly by the dispatcher.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..utils import atomic_write_json

__all__ = [
    "LEASE_FORMAT_VERSION",
    "Lease",
    "AttemptRecord",
    "LeaseStore",
    "new_owner_id",
]

LEASE_FORMAT_VERSION = 1

LEASES_DIR = "leases"
ATTEMPTS_DIR = "attempts"
POISONED_DIR = "poisoned"


def new_owner_id(role: str = "worker") -> str:
    """A globally-unique worker identity: ``role@host:pid:nonce``."""
    return (
        f"{role}@{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
    )


@dataclass(frozen=True)
class Lease:
    """One claim: who holds the item, since when, and how fresh."""

    key: str
    owner: str
    attempt: int
    acquired_at: float
    heartbeat_at: float
    ttl: float

    def is_stale(self, now: Optional[float] = None) -> bool:
        now = time.time() if now is None else now
        return (now - self.heartbeat_at) > self.ttl

    def to_dict(self) -> Dict[str, object]:
        return {
            "lease_format_version": LEASE_FORMAT_VERSION,
            "key": self.key,
            "owner": self.owner,
            "attempt": self.attempt,
            "acquired_at": self.acquired_at,
            "heartbeat_at": self.heartbeat_at,
            "ttl": self.ttl,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> Optional["Lease"]:
        try:
            if data.get("lease_format_version") != LEASE_FORMAT_VERSION:
                return None
            return cls(
                key=str(data["key"]),
                owner=str(data["owner"]),
                attempt=int(data["attempt"]),
                acquired_at=float(data["acquired_at"]),
                heartbeat_at=float(data["heartbeat_at"]),
                ttl=float(data["ttl"]),
            )
        except (KeyError, TypeError, ValueError):
            return None


@dataclass(frozen=True)
class AttemptRecord:
    """Retry accounting for one item (written by its lease holder)."""

    count: int = 0
    next_eligible_at: float = 0.0
    last_error: str = ""


class LeaseStore:
    """Lease/attempt/poison records rooted at one coordination directory."""

    def __init__(self, root: Union[str, Path], ttl: float):
        self.root = Path(root)
        self.ttl = float(ttl)
        self._leases = self.root / LEASES_DIR
        self._attempts = self.root / ATTEMPTS_DIR
        self._poisoned = self.root / POISONED_DIR

    # -- low-level file helpers -----------------------------------------
    def lease_path(self, key: str) -> Path:
        return self._leases / f"{key}.json"

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict[str, object]]:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    # -- leases ----------------------------------------------------------
    def read(self, key: str) -> Optional[Lease]:
        """The current lease on ``key``, or ``None`` (absent/corrupt)."""
        data = self._read_json(self.lease_path(key))
        return None if data is None else Lease.from_dict(data)

    def _create_excl(self, lease: Lease) -> bool:
        """Atomically create a complete lease file; False if one exists.

        Write-then-link: the content is fully written to a temp file and
        ``os.link`` publishes it under the lease name in one atomic step
        (failing with ``FileExistsError`` if any lease is present), so a
        reader can never observe a half-written lease.
        """
        path = self.lease_path(lease.key)
        self._leases.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.{lease.owner.rsplit(':', 1)[-1]}.tmp"
        tmp.write_text(
            json.dumps(lease.to_dict(), sort_keys=True, indent=2) + "\n"
        )
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
        finally:
            tmp.unlink(missing_ok=True)

    def _reclaim_marker(self, key: str) -> Path:
        return self._leases / f".{key}.json.reclaiming"

    def _claim_reclaim_marker(
        self, marker: Path, owner: str, now: float
    ) -> bool:
        """Atomically become the one claimant allowed to reclaim.

        The marker carries its creation time in its *content* (never fs
        metadata, which rename/link handle inconsistently); a marker
        older than the TTL is an orphan from a reclaimer that died
        mid-reclaim and is swept so the item cannot wedge.
        """
        for _ in range(2):
            self._leases.mkdir(parents=True, exist_ok=True)
            tmp = marker.parent / f"{marker.name}.{uuid.uuid4().hex[:8]}.tmp"
            tmp.write_text(json.dumps({"owner": owner, "at": now}) + "\n")
            try:
                os.link(tmp, marker)
                return True
            except FileExistsError:
                data = self._read_json(marker)
                try:
                    at = float(data["at"]) if data is not None else None
                except (KeyError, TypeError, ValueError):
                    at = None
                if at is not None and (now - at) < self.ttl:
                    return False  # a live reclaim is in flight
                marker.unlink(missing_ok=True)  # orphan: sweep and retry
            finally:
                tmp.unlink(missing_ok=True)
        return False

    def _reclaim_pending(self, key: str, now: float) -> bool:
        """Is a live reclaim of ``key`` mid-flight (young marker)?

        An orphaned marker (older than the TTL, or unreadable) is swept
        on the way through so a reclaimer that died mid-reclaim leaves
        no litter behind.
        """
        marker = self._reclaim_marker(key)
        data = self._read_json(marker)
        if data is None:
            if marker.is_file():
                marker.unlink(missing_ok=True)
            return False
        try:
            at = float(data["at"])
        except (KeyError, TypeError, ValueError):
            at = None
        if at is not None and (now - at) < self.ttl:
            return True
        marker.unlink(missing_ok=True)
        return False

    def try_acquire(
        self, key: str, owner: str, now: Optional[float] = None
    ) -> Optional[Lease]:
        """Claim ``key`` for ``owner``; ``None`` when someone holds it.

        A fresh foreign lease loses immediately.  A stale (or corrupt)
        lease is reclaimed under a reclaim marker plus the
        tombstone-rename CAS: of N claimants racing on the same stale
        lease, exactly one acquires, and it carries the attempt count
        forward.  The marker exists before the stale file is renamed
        away and is removed after the new lease is published, so the
        transient no-lease-file window of a reclaim in flight is never
        mistaken for a brand-new item (which would reset the attempt
        count — or worse, hand a second claimant a win).
        """
        now = time.time() if now is None else now
        path = self.lease_path(key)
        marker = self._reclaim_marker(key)
        if path.exists():
            existing = self.read(key)
            if existing is not None and not existing.is_stale(now):
                return None
            # stale or corrupt: exactly one claimant may reclaim at a
            # time, and it announces itself before touching the file
            if not self._claim_reclaim_marker(marker, owner, now):
                return None
            try:
                tomb = (
                    path.parent
                    / f".{path.name}.reclaim.{uuid.uuid4().hex[:8]}"
                )
                try:
                    os.rename(path, tomb)
                except OSError:
                    return None  # the lease was released meanwhile
                # verify the rename took the lease we judged stale: the
                # holder may have heartbeat-resurrected it between the
                # read and the rename.  A fresh lease goes back.
                data = self._read_json(tomb)
                renamed = None if data is None else Lease.from_dict(data)
                if renamed is not None and not renamed.is_stale(now):
                    try:
                        os.link(tomb, path)
                    except OSError:
                        pass  # another lease appeared meanwhile — defer
                    tomb.unlink(missing_ok=True)
                    return None
                tomb.unlink(missing_ok=True)
                carried = renamed if renamed is not None else existing
                lease = Lease(
                    key=key,
                    owner=owner,
                    attempt=(carried.attempt + 1 if carried else 1),
                    acquired_at=now,
                    heartbeat_at=now,
                    ttl=self.ttl,
                )
                return lease if self._create_excl(lease) else None
            finally:
                marker.unlink(missing_ok=True)
        if self._reclaim_pending(key, now):
            # no lease file, but a reclaim is mid-flight: the reclaimer
            # owns this window — creating here would reset the attempt
            # count and race its publish
            return None
        lease = Lease(
            key=key,
            owner=owner,
            attempt=1,
            acquired_at=now,
            heartbeat_at=now,
            ttl=self.ttl,
        )
        return lease if self._create_excl(lease) else None

    def heartbeat(self, key: str, owner: str) -> bool:
        """Renew ``owner``'s lease on ``key``; False when it was lost.

        Renewal is read-check-write, not compare-and-swap: between the
        ownership read and the rewrite, a rival may reclaim the lease
        (possible only once it has already gone stale — a live holder
        heartbeats well inside the TTL) and this write then resurrects
        the old lease over the rival's fresh one.  POSIX offers no
        atomic content-CAS on a file, so this window is accepted per the
        efficiency-only design above: commits stay idempotent and
        ownership is re-verified before publishing, so the worst case is
        the rival's claim being erased and reclaim delayed by up to one
        more TTL — wasted time, never a torn artifact.
        """
        lease = self.read(key)
        if lease is None or lease.owner != owner:
            return False
        renewed = Lease(
            key=lease.key,
            owner=lease.owner,
            attempt=lease.attempt,
            acquired_at=lease.acquired_at,
            heartbeat_at=time.time(),
            ttl=self.ttl,
        )
        atomic_write_json(self.lease_path(key), renewed.to_dict())
        return True

    def owns(self, key: str, owner: str) -> bool:
        lease = self.read(key)
        return lease is not None and lease.owner == owner

    def release(self, key: str, owner: str) -> bool:
        """Drop ``owner``'s lease; False when it was no longer held.

        Same read-check-act window as :meth:`heartbeat`: a rival that
        reclaims a stale lease between the ownership read and the unlink
        loses its fresh lease file — it simply re-acquires on its next
        scan (retry state lives in the attempt record, not the lease).
        """
        if not self.owns(key, owner):
            return False
        self.lease_path(key).unlink(missing_ok=True)
        return True

    def active_leases(self) -> List[Lease]:
        """Every parseable lease file under the store (fresh and stale)."""
        if not self._leases.is_dir():
            return []
        leases = []
        for path in sorted(self._leases.glob("*.json")):
            data = self._read_json(path)
            lease = None if data is None else Lease.from_dict(data)
            if lease is not None:
                leases.append(lease)
        return leases

    # -- attempts (retry/backoff accounting) -----------------------------
    def attempts(self, key: str) -> AttemptRecord:
        data = self._read_json(self._attempts / f"{key}.json")
        if data is None:
            return AttemptRecord()
        try:
            return AttemptRecord(
                count=int(data.get("count", 0)),
                next_eligible_at=float(data.get("next_eligible_at", 0.0)),
                last_error=str(data.get("last_error", "")),
            )
        except (TypeError, ValueError):
            return AttemptRecord()

    def record_attempt(
        self,
        key: str,
        count: int,
        next_eligible_at: float,
        last_error: str = "",
    ) -> None:
        self._attempts.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            self._attempts / f"{key}.json",
            {
                "count": count,
                "next_eligible_at": next_eligible_at,
                "last_error": last_error,
            },
        )

    # -- poisoned-item quarantine ----------------------------------------
    def poison(self, key: str, attempts: int, last_error: str) -> None:
        """Quarantine ``key`` after exhausting its retry budget."""
        self._poisoned.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            self._poisoned / f"{key}.json",
            {
                "key": key,
                "attempts": attempts,
                "last_error": last_error,
                "poisoned_at": time.time(),
            },
        )

    def is_poisoned(self, key: str) -> bool:
        return (self._poisoned / f"{key}.json").is_file()

    def poisoned(self) -> Dict[str, Dict[str, object]]:
        """Quarantine records by key (empty dict when none)."""
        if not self._poisoned.is_dir():
            return {}
        out: Dict[str, Dict[str, object]] = {}
        for path in sorted(self._poisoned.glob("*.json")):
            data = self._read_json(path)
            if data is not None:
                out[str(data.get("key", path.stem))] = data
        return out
