"""Deterministic fault injection for the distributed execution layer.

The chaos suite (and the CI ``chaos`` job) needs workers that fail *on
purpose, at an exact protocol point, exactly once* — a random
fault-injection sleep would make the byte-identical-results assertion
flaky.  ``REPRO_FAULT_PLAN`` names the faults::

    REPRO_FAULT_PLAN="crash_before_commit@gcn/conv_sum;stall_past_lease@*"

Each clause is ``<kind>@<work-item key>`` (``*`` matches any item), with
clauses separated by ``;``.  Kinds:

* ``crash_before_commit`` — the worker dies (``os._exit``) after
  computing a unit but before publishing it: the run must recover by
  lease expiry and a retry, and no partial artifact may exist;
* ``crash_after_commit`` — the worker dies between the atomic commit
  and the lease release: the run must recognise the committed unit and
  clean up without re-executing it;
* ``stall_past_lease`` — the worker wedges (heartbeats suspended)
  until its lease expires, then wakes: it must notice the lost lease
  and abandon its result instead of double-publishing;
* ``torn_write`` — the worker writes a truncated artifact *in place*
  (the failure mode atomic commits exist to prevent) and dies: readers
  must treat the torn state as a cache miss and the retry must clear it.

Every fault fires **once per (kind, key) per run**, coordinated across
worker processes by an atomic marker file under the run's coordination
directory — so a crashed-and-retried unit completes on the second
attempt instead of crash-looping.  The plan travels by environment
variable, so it reaches dispatcher-spawned workers and standalone
``repro worker`` processes alike.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Tuple, Union

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "CRASH_EXIT_CODE",
    "FaultPlanError",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

FAULT_KINDS = (
    "crash_before_commit",
    "crash_after_commit",
    "stall_past_lease",
    "torn_write",
)

#: exit status of an injected crash — distinguishable from a real fault
CRASH_EXIT_CODE = 57

FIRED_DIR = "faults-fired"


class FaultPlanError(ValueError):
    """``REPRO_FAULT_PLAN`` does not parse."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: a kind aimed at a work-item key (or ``*``)."""

    kind: str
    key: str

    def matches(self, key: str) -> bool:
        return self.key == "*" or self.key == key

    @property
    def marker(self) -> str:
        digest = hashlib.sha256(
            f"{self.kind}@{self.key}".encode("utf-8")
        ).hexdigest()
        return f"{self.kind}.{digest[:16]}"


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULT_PLAN`` value."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kind, sep, key = clause.partition("@")
            if not sep or not key:
                raise FaultPlanError(
                    f"bad fault clause {clause!r}: use <kind>@<key>"
                )
            if kind not in FAULT_KINDS:
                raise FaultPlanError(
                    f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
                )
            specs.append(FaultSpec(kind=kind, key=key))
        return cls(specs=tuple(specs))

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "FaultPlan":
        env = os.environ if env is None else env
        return cls.parse(env.get(FAULT_PLAN_ENV, ""))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def planned(self, kind: str, key: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.kind == kind and spec.matches(key):
                return spec
        return None


class FaultInjector:
    """Fire planned faults exactly once per run, across processes.

    ``take(kind, key)`` returns True when this call (in this process,
    among all cooperating processes) owns the firing of a planned fault.
    The once-only guarantee comes from ``O_CREAT|O_EXCL`` on a marker
    file under ``state_dir`` — whichever process creates it fires; every
    later taker sees the marker and declines.
    """

    def __init__(self, plan: FaultPlan, state_dir: Union[str, Path]):
        self.plan = plan
        self.state_dir = Path(state_dir) / FIRED_DIR

    @classmethod
    def from_env(
        cls,
        state_dir: Union[str, Path],
        env: Optional[Mapping[str, str]] = None,
    ) -> "FaultInjector":
        return cls(FaultPlan.from_env(env), state_dir)

    def take(self, kind: str, key: str) -> bool:
        spec = self.plan.planned(kind, key)
        if spec is None:
            return False
        self.state_dir.mkdir(parents=True, exist_ok=True)
        marker = self.state_dir / spec.marker
        try:
            fd = os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(f"{kind}@{key}\n")
        return True

    @staticmethod
    def crash() -> None:  # pragma: no cover - kills the test process
        """Die the way ``kill -9`` does: no cleanup, no lease release."""
        os._exit(CRASH_EXIT_CODE)
