"""Fault-tolerant distributed execution over a shared cache layout.

Workers claim experiment units and dataset shards through lease files
(:mod:`~repro.dist.leases`), execute them, and commit atomically, so a
``kill -9`` at any instant leaves either a reclaimable lease or a
complete artifact.  A dispatcher (:mod:`~repro.dist.dispatcher`)
supervises a local fleet — retry with exponential backoff, poisoned-item
quarantine, graceful degradation — while standalone ``repro worker``
processes can join any run mid-flight.  Deterministic fault injection
(:mod:`~repro.dist.faults`, ``REPRO_FAULT_PLAN``) drives the chaos
suite that proves distributed results byte-identical to serial ones.
"""

from .config import DistConfig
from .dispatcher import (
    DistSummary,
    PoisonedWorkError,
    build_shards_distributed,
    execute_distributed,
    run_distributed,
)
from .faults import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)
from .leases import Lease, LeaseStore, new_owner_id
from .work import DatasetWorkSource, ExperimentWorkSource, WorkItem, WorkSource
from .worker import HeartbeatThread, WorkerReport, run_worker

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "DistConfig",
    "DistSummary",
    "DatasetWorkSource",
    "ExperimentWorkSource",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "HeartbeatThread",
    "Lease",
    "LeaseStore",
    "PoisonedWorkError",
    "WorkItem",
    "WorkSource",
    "WorkerReport",
    "build_shards_distributed",
    "execute_distributed",
    "new_owner_id",
    "run_distributed",
    "run_worker",
]
