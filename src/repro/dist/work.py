"""Work sources: what the lease-based workers actually execute.

A :class:`WorkSource` enumerates independent :class:`WorkItem`\\ s over a
shared cache layout.  Two adapters cover the repo's fleet-sized jobs:

* :class:`ExperimentWorkSource` — the units of a unit-decomposed
  experiment (one Table-II model configuration each), committed through
  the same atomic :func:`repro.runtime.parallel.commit_unit` seam the
  process-pool executor uses;
* :class:`DatasetWorkSource` — the shards of a dataset build.  Shard
  files are already written atomically; completion is certified by a
  small per-shard meta record under the coordination directory, written
  last, which the dispatcher later assembles into the dataset manifest.

Every item exposes the same crash-safe contract:

* ``is_done()`` consults only committed on-disk state, so any process
  (dispatcher, pool worker, a host that joined mid-run) agrees on it;
* ``run()`` is pure compute — deterministic given the source config —
  and ``commit(payload)`` publishes atomically and idempotently:
  committing the same item twice writes byte-identical state;
* ``simulate_torn_write()`` deliberately writes the torn, in-place
  partial state that atomic commits exist to prevent — the hook the
  ``torn_write`` fault uses to prove readers treat it as a cache miss.

Coordination state (leases, attempts, quarantine, fault markers) lives
under ``coordination_dir()``, a dot-directory inside the run/dataset
directory so the shared layout itself is the coordination point and
extra hosts need nothing beyond the filesystem.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..datagen.pipeline import (
    PipelineConfig,
    ShardSpec,
    generate_shard,
    plan_shards,
    shard_metadata,
)
from ..graphdata.shards import write_shard
from ..runtime.parallel import (
    commit_unit,
    load_unit_result,
    unit_dir_for,
    unit_hash,
)
from ..runtime.registry import (
    Experiment,
    ExperimentSpec,
    UnitSpec,
    canonical_unit_result,
    get_experiment,
)
from ..runtime.runner import run_dir_for, spec_hash
from ..utils import atomic_write_json

__all__ = [
    "COORD_DIR_NAME",
    "WorkItem",
    "WorkSource",
    "ExperimentWorkSource",
    "DatasetWorkSource",
    "rebuild_source",
]

#: coordination dot-directory inside the run / dataset directory
COORD_DIR_NAME = ".dist"


class WorkItem:
    """One independent, atomically-committable piece of work."""

    #: filesystem-safe identifier — names the lease/attempt/poison files
    key: str
    #: human identifier matched by ``REPRO_FAULT_PLAN`` and progress lines
    label: str

    def is_done(self) -> bool:
        raise NotImplementedError

    def run(self) -> object:
        raise NotImplementedError

    def commit(self, payload: object) -> None:
        raise NotImplementedError

    def simulate_torn_write(self) -> None:
        raise NotImplementedError


class WorkSource:
    """A stable, deterministic list of work items over a shared layout."""

    name: str

    def coordination_dir(self) -> Path:
        raise NotImplementedError

    def items(self) -> List[WorkItem]:
        raise NotImplementedError

    def subprocess_payload(self) -> "tuple[str, tuple]":
        """``(kind, args)`` understood by :func:`rebuild_source`.

        What the dispatcher ships to subprocess workers instead of the
        source object itself: under a spawn start method the args must
        pickle, so the built-in sources override this with plain
        primitives (name/spec/config/paths) and rebuild on the far side
        — mirroring how ``execute_parallel`` ships unit args — so an
        :class:`~repro.runtime.registry.Experiment` holding user
        callables never has to cross the process boundary.  The default
        ships the source itself, for custom sources that do pickle.
        """
        return ("pickle", (self,))


def rebuild_source(kind: str, args: tuple) -> "WorkSource":
    """Reconstruct a :class:`WorkSource` from its subprocess payload."""
    if kind == "experiment":
        name, spec, runs_dir = args
        return ExperimentWorkSource(name, spec, runs_dir)
    if kind == "dataset":
        config, out_dir = args
        return DatasetWorkSource(config, out_dir)
    if kind == "pickle":
        (source,) = args
        return source
    raise ValueError(f"unknown work-source kind {kind!r}")


# ---------------------------------------------------------------------------
# experiments
# ---------------------------------------------------------------------------


class _UnitItem(WorkItem):
    def __init__(
        self,
        exp: Experiment,
        spec: ExperimentSpec,
        unit: UnitSpec,
        digest: str,
        unit_dir: Path,
    ):
        self.exp = exp
        self.spec = spec
        self.unit = unit
        self.digest = digest
        self.unit_dir = unit_dir
        self.key = digest[:16]
        self.label = unit.key

    def is_done(self) -> bool:
        return load_unit_result(self.unit_dir, self.digest) is not None

    def run(self) -> object:
        start = time.perf_counter()
        result = canonical_unit_result(self.exp.run_unit(self.spec, self.unit))
        return result, time.perf_counter() - start

    def commit(self, payload: object) -> None:
        result, elapsed = payload
        commit_unit(self.unit_dir, self.unit, self.digest, result, elapsed)

    def simulate_torn_write(self) -> None:
        # the legacy failure mode: a unit dir holding a truncated
        # result.json and no certifying manifest
        self.unit_dir.mkdir(parents=True, exist_ok=True)
        (self.unit_dir / "result.json").write_text('{"rows": [{"tru')


class ExperimentWorkSource(WorkSource):
    """The pending units of one (experiment, spec) run directory.

    Workers on any host construct this from the same (name, spec,
    runs_dir) triple; the spec hash keys the run directory, so they all
    converge on the same unit list, unit digests and lease namespace.
    """

    def __init__(
        self,
        name: str,
        spec: Optional[ExperimentSpec] = None,
        runs_dir: Union[str, Path] = "runs",
    ):
        self.exp = get_experiment(name)
        if not self.exp.supports_units:
            raise ValueError(
                f"experiment {name!r} has no unit decomposition; "
                "distributed execution needs units/run_unit/merge"
            )
        self.spec = self.exp.validate_spec(spec)
        self.name = name
        self.runs_dir = Path(runs_dir)
        self.digest = spec_hash(name, self.spec)
        self.out_dir = run_dir_for(self.runs_dir, name, self.digest)
        self.units = self.exp.units(self.spec)
        self.digests = [unit_hash(self.digest, u) for u in self.units]

    def coordination_dir(self) -> Path:
        return self.out_dir / COORD_DIR_NAME

    def subprocess_payload(self) -> "tuple[str, tuple]":
        # the spec already pickles across the pool boundary; the
        # Experiment (with its user callables) is re-looked-up by name
        # in the subprocess, exactly like execute_parallel's unit args
        return ("experiment", (self.name, self.spec, str(self.runs_dir)))

    def items(self) -> List[WorkItem]:
        return [
            _UnitItem(
                self.exp,
                self.spec,
                unit,
                digest,
                unit_dir_for(self.out_dir, digest),
            )
            for unit, digest in zip(self.units, self.digests)
        ]

    def unit_results(self) -> List[Dict[str, object]]:
        """Every unit's committed result, in unit order.

        Raises if any unit is missing — callers check completion first.
        """
        results = []
        for unit, digest in zip(self.units, self.digests):
            result = load_unit_result(
                unit_dir_for(self.out_dir, digest), digest
            )
            if result is None:
                raise RuntimeError(
                    f"unit {unit.key!r} of {self.name} has no committed result"
                )
            results.append(result)
        return results


# ---------------------------------------------------------------------------
# dataset builds
# ---------------------------------------------------------------------------


class _ShardItem(WorkItem):
    def __init__(
        self,
        config: PipelineConfig,
        spec: ShardSpec,
        out_dir: Path,
        meta_path: Path,
    ):
        self.config = config
        self.spec = spec
        self.out_dir = out_dir
        self.meta_path = meta_path
        # the config hash is part of the key so lease/attempt/poison
        # records left by an aborted build of a *different* config can
        # never block or quarantine this build's shards
        self.key = (
            f"{spec.suite.lower()}-{spec.index:05d}"
            f"-{config.config_hash()[:12]}"
        )
        self.label = spec.filename

    @property
    def shard_path(self) -> Path:
        return self.out_dir / self.spec.filename

    def read_meta(self) -> Optional[Dict[str, object]]:
        try:
            data = json.loads(self.meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("config_hash") != self.config.config_hash()
            or not isinstance(data.get("shard"), dict)
        ):
            return None
        return data["shard"]

    def is_done(self) -> bool:
        return self.read_meta() is not None and self.shard_path.is_file()

    def run(self) -> object:
        return generate_shard(self.config, self.spec)

    def commit(self, payload: object) -> None:
        # the shard write is atomic (deterministic temp + rename); the
        # meta record is written last and certifies it, mirroring the
        # manifest-last convention of the non-distributed builder
        sha = write_shard(self.shard_path, payload)
        atomic_write_json(
            self.meta_path,
            {
                "config_hash": self.config.config_hash(),
                "shard": shard_metadata(self.spec, payload, sha),
            },
        )

    def simulate_torn_write(self) -> None:
        # a torn shard: half a zip archive, written in place
        self.shard_path.write_bytes(b"PK\x03\x04truncated-shard")


class DatasetWorkSource(WorkSource):
    """The shards of one dataset build directory."""

    def __init__(self, config: PipelineConfig, out_dir: Union[str, Path]):
        self.config = config
        self.out_dir = Path(out_dir)
        self.name = f"dataset:{config.config_hash()[:12]}"
        self.specs = plan_shards(config)

    def coordination_dir(self) -> Path:
        return self.out_dir / COORD_DIR_NAME

    def subprocess_payload(self) -> "tuple[str, tuple]":
        return ("dataset", (self.config, str(self.out_dir)))

    def _meta_path(self, spec: ShardSpec) -> Path:
        return self.coordination_dir() / "meta" / f"{spec.filename}.json"

    def items(self) -> List[WorkItem]:
        self.out_dir.mkdir(parents=True, exist_ok=True)
        (self.coordination_dir() / "meta").mkdir(parents=True, exist_ok=True)
        return [
            _ShardItem(self.config, spec, self.out_dir, self._meta_path(spec))
            for spec in self.specs
        ]

    def shard_metas(self) -> List[Dict[str, object]]:
        """Committed shard manifest entries, in plan order."""
        metas: List[Dict[str, object]] = []
        for spec in self.specs:
            item = _ShardItem(
                self.config, spec, self.out_dir, self._meta_path(spec)
            )
            meta = item.read_meta()
            if meta is None or not item.shard_path.is_file():
                raise RuntimeError(
                    f"shard {spec.filename} has no committed meta record"
                )
            metas.append(meta)
        return metas


def all_resolved(items: Sequence[WorkItem], poisoned_keys) -> bool:
    """Is every item either committed or quarantined?"""
    return all(
        item.is_done() or item.key in poisoned_keys for item in items
    )
