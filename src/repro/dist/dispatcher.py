"""Fleet supervision and the high-level distributed entry points.

:func:`run_distributed` spawns N worker processes over one
:class:`~repro.dist.work.WorkSource` and babysits them:

* a worker that exits cleanly has nothing left to claim — the fleet is
  simply done, or draining;
* a worker that *dies* (crash, ``kill -9``, injected fault) is reaped,
  counted, and respawned while the respawn budget lasts; past the
  budget the fleet degrades gracefully to fewer workers;
* if every subprocess is gone and work remains, the dispatcher runs the
  worker loop **inline** as a floor — a run never stalls just because
  its fleet died, it just gets slower;
* items that burned through their retry budget surface as
  :class:`PoisonedWorkError` listing every quarantined key and its last
  error, instead of hanging the run forever.

Because workers coordinate purely through lease files in the shared
layout, supervision is optional: standalone ``repro worker`` processes
(possibly on other hosts sharing the filesystem) join and leave the
same run freely, and the dispatcher treats their progress exactly like
its own fleet's.

On top of the generic loop sit the two user-facing wrappers —
:func:`execute_distributed` (mirrors
:func:`repro.runtime.parallel.execute_parallel`, including the run
cache and byte-identical ``result.json``) and
:func:`build_shards_distributed` (mirrors
:func:`repro.datagen.pipeline.build_shards`, including manifest
equality for any worker count).
"""

from __future__ import annotations

import shutil
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..datagen.pipeline import (
    BuildResult,
    PipelineConfig,
    load_manifest,
    manifest_is_current,
    write_manifest,
)
from ..runtime.parallel import UNITS_DIR_NAME, _pool_context
from ..runtime.registry import ExperimentSpec
from ..runtime.runner import (
    RunRecord,
    default_runs_dir,
    load_cached_record,
    write_run_artifacts,
)
from .config import DistConfig
from .leases import LeaseStore, new_owner_id
from .work import (
    DatasetWorkSource,
    ExperimentWorkSource,
    WorkSource,
    rebuild_source,
)
from .worker import WorkerProgress, run_worker

__all__ = [
    "PoisonedWorkError",
    "DistSummary",
    "run_distributed",
    "execute_distributed",
    "build_shards_distributed",
]


class PoisonedWorkError(RuntimeError):
    """Work items exhausted their retry budget and were quarantined."""

    def __init__(self, source_name: str, poisoned: Dict[str, Dict[str, object]]):
        self.poisoned = poisoned
        lines = [
            f"{len(poisoned)} work item(s) of {source_name} poisoned after "
            "repeated failures:"
        ]
        for key, record in sorted(poisoned.items()):
            lines.append(
                f"  - {key} (attempts={record.get('attempts', '?')}): "
                f"{record.get('last_error', '') or 'no recorded error'}"
            )
        super().__init__("\n".join(lines))


@dataclass
class DistSummary:
    """What the supervision loop observed for one distributed run."""

    workers: int
    worker_deaths: int = 0
    respawns: int = 0
    ran_inline: bool = False
    poisoned: Dict[str, Dict[str, object]] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def degraded(self) -> bool:
        return self.worker_deaths > self.respawns or self.ran_inline


def _worker_proc_main(
    source_kind: str, source_args: tuple, cfg: DistConfig, index: int
) -> None:
    """Subprocess entry: one worker loop with a SIGTERM drain handler.

    Receives the source as ``(kind, primitives)`` from
    :meth:`~repro.dist.work.WorkSource.subprocess_payload` and rebuilds
    it here, so a spawn start method (platforms without fork) never has
    to pickle an Experiment object holding user callables.
    """
    source = rebuild_source(source_kind, source_args)
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    run_worker(
        source,
        cfg,
        owner=new_owner_id(f"worker{index}"),
        stop_event=stop,
    )


def _resolved(source: WorkSource, store: LeaseStore) -> bool:
    poisoned = store.poisoned()
    return all(
        item.is_done() or item.key in poisoned for item in source.items()
    )


def _source_poisoned(
    source: WorkSource, store: LeaseStore
) -> Dict[str, Dict[str, object]]:
    """Quarantine records for *this source's* items only.

    The coordination directory can hold poison markers keyed for other
    work (e.g. an aborted dataset build of a different config, whose
    keys embed a different config hash); those are dead state, not this
    run's failures, and must not fail this run.
    """
    keys = {item.key for item in source.items()}
    return {
        key: record
        for key, record in store.poisoned().items()
        if key in keys
    }


def run_distributed(
    source: WorkSource,
    workers: int = 2,
    cfg: Optional[DistConfig] = None,
    progress: Optional[WorkerProgress] = None,
    respawn_budget: Optional[int] = None,
) -> DistSummary:
    """Drive ``source`` to resolution with a supervised worker fleet.

    Blocks until every item is committed or quarantined.  Dead workers
    are respawned up to ``respawn_budget`` times (default: one refill
    per slot); beyond that the fleet degrades, down to an inline
    fallback in this process.  Does **not** raise for poisoned items —
    callers inspect ``summary.poisoned`` and decide (the high-level
    wrappers raise :class:`PoisonedWorkError`).
    """
    cfg = DistConfig() if cfg is None else cfg
    workers = max(1, int(workers))
    budget = workers if respawn_budget is None else max(0, respawn_budget)
    start = time.perf_counter()

    store = LeaseStore(source.coordination_dir(), ttl=cfg.lease_ttl)
    summary = DistSummary(workers=workers)
    if _resolved(source, store):
        summary.poisoned = _source_poisoned(source, store)
        summary.elapsed = time.perf_counter() - start
        return summary

    ctx = _pool_context()
    source_kind, source_args = source.subprocess_payload()

    def spawn(index: int):
        proc = ctx.Process(
            target=_worker_proc_main,
            args=(source_kind, source_args, cfg, index),
            name=f"repro-dist-worker-{index}",
            daemon=False,
        )
        proc.start()
        return proc

    procs: List[Optional[object]] = [spawn(i) for i in range(workers)]
    try:
        while not _resolved(source, store):
            for i, proc in enumerate(procs):
                if proc is None or proc.is_alive():
                    continue
                proc.join()
                if proc.exitcode == 0:
                    # clean exit: that worker saw nothing left to claim
                    procs[i] = None
                    continue
                summary.worker_deaths += 1
                if progress is not None:
                    progress(
                        {
                            "status": "worker-died",
                            "key": proc.name,
                            "label": proc.name,
                            "detail": f"exit code {proc.exitcode}",
                        }
                    )
                if summary.respawns < budget:
                    summary.respawns += 1
                    procs[i] = spawn(i)
                else:
                    procs[i] = None  # degraded: run on with fewer workers
            if all(p is None for p in procs):
                if _resolved(source, store):
                    break
                # every subprocess is gone (dead past the respawn budget,
                # or finished while a lease was still settling): finish
                # the job inline rather than stall the run
                summary.ran_inline = True
                run_worker(
                    source, cfg, owner=new_owner_id("dispatcher"),
                    progress=progress,
                )
                break
            time.sleep(cfg.poll_interval)
    finally:
        for proc in procs:
            if proc is not None and proc.is_alive():
                proc.terminate()  # SIGTERM: workers drain and release
        for proc in procs:
            if proc is not None:
                proc.join()

    summary.poisoned = _source_poisoned(source, store)
    summary.elapsed = time.perf_counter() - start
    return summary


def _dist_manifest_extra(
    summary: DistSummary, cfg: DistConfig
) -> Dict[str, object]:
    return {
        "mode": "distributed",
        "workers": summary.workers,
        "worker_deaths": summary.worker_deaths,
        "respawns": summary.respawns,
        "ran_inline": summary.ran_inline,
        "lease_ttl": cfg.lease_ttl,
        "heartbeat_interval": cfg.heartbeat_interval,
        "max_attempts": cfg.max_attempts,
    }


def execute_distributed(
    name: str,
    spec: Optional[ExperimentSpec] = None,
    runs_dir: Optional[Union[str, Path]] = None,
    workers: int = 2,
    cfg: Optional[DistConfig] = None,
    force: bool = False,
    progress: Optional[WorkerProgress] = None,
) -> RunRecord:
    """Run experiment ``name`` on a fault-tolerant worker fleet.

    Same cache semantics and byte-identical ``result.json`` as
    :func:`repro.runtime.parallel.execute_parallel`; only the manifest's
    execution metadata differs.  Raises :class:`PoisonedWorkError` when
    any unit exhausts its retry budget.
    """
    cfg = DistConfig() if cfg is None else cfg
    root = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    source = ExperimentWorkSource(name, spec, root)

    start = time.perf_counter()
    if not force:
        cached = load_cached_record(
            name,
            source.spec,
            source.out_dir,
            source.digest,
            elapsed=time.perf_counter() - start,
        )
        if cached is not None:
            return cached
    else:
        # recompute everything: drop unit caches and coordination state
        shutil.rmtree(source.out_dir / UNITS_DIR_NAME, ignore_errors=True)
        shutil.rmtree(source.coordination_dir(), ignore_errors=True)

    summary = run_distributed(
        source, workers=workers, cfg=cfg, progress=progress
    )
    if summary.poisoned:
        raise PoisonedWorkError(name, summary.poisoned)

    # every unit committed: the coordination state is spent.  Drop it so
    # the finished run dir matches a serial run tree-for-tree (late
    # workers recreate .dist/ lazily and find nothing left to claim)
    shutil.rmtree(source.coordination_dir(), ignore_errors=True)

    result_obj = source.exp.merge(source.spec, source.unit_results())
    elapsed = time.perf_counter() - start
    return write_run_artifacts(
        source.exp,
        source.spec,
        source.digest,
        source.out_dir,
        result_obj,
        elapsed,
        manifest_extra={
            "units": {
                u.key: d[:16]
                for u, d in zip(source.units, source.digests)
            },
            "dist": _dist_manifest_extra(summary, cfg),
        },
    )


def build_shards_distributed(
    config: PipelineConfig,
    out_dir: Union[str, Path],
    workers: int = 2,
    cfg: Optional[DistConfig] = None,
    force: bool = False,
    progress: Optional[WorkerProgress] = None,
) -> BuildResult:
    """Build a sharded dataset on a fault-tolerant worker fleet.

    Cache, shard bytes and manifest match
    :func:`repro.datagen.pipeline.build_shards` exactly — the manifest
    is assembled from per-shard meta records in plan order, through the
    same :func:`~repro.datagen.pipeline.write_manifest`.
    """
    cfg = DistConfig() if cfg is None else cfg
    out_dir = Path(out_dir)
    start = time.perf_counter()
    if not force and manifest_is_current(out_dir, config):
        manifest = load_manifest(out_dir)
        assert manifest is not None
        return BuildResult(
            manifest=manifest,
            out_dir=out_dir,
            cache_hit=True,
            elapsed=time.perf_counter() - start,
        )

    out_dir.mkdir(parents=True, exist_ok=True)
    source = DatasetWorkSource(config, out_dir)
    if force:
        shutil.rmtree(source.coordination_dir(), ignore_errors=True)
    # drop shards from a previous (now stale) build so the directory
    # never mixes generations — same rule as the pool builder
    stale = load_manifest(out_dir)
    if stale is not None and stale.get("config_hash") != config.config_hash():
        for shard in stale.get("shards", []):
            try:
                (out_dir / shard["filename"]).unlink(missing_ok=True)
            except OSError:
                pass
        # the old build's coordination state (leases, attempt counts,
        # quarantine markers, meta records) describes work that no
        # longer exists; item keys embed the config hash so it could
        # not wedge this build anyway, but there is no reason to keep it
        shutil.rmtree(source.coordination_dir(), ignore_errors=True)

    summary = run_distributed(
        source, workers=workers, cfg=cfg, progress=progress
    )
    if summary.poisoned:
        raise PoisonedWorkError(source.name, summary.poisoned)

    manifest = write_manifest(out_dir, config, source.shard_metas())
    # manifest written from the per-shard meta records: the coordination
    # state is spent.  Drop it so the dataset dir diffs clean against a
    # serial build
    shutil.rmtree(source.coordination_dir(), ignore_errors=True)
    return BuildResult(
        manifest=manifest,
        out_dir=out_dir,
        cache_hit=False,
        elapsed=time.perf_counter() - start,
    )
