"""Parameterised combinational circuit generators.

These stand in for the paper's benchmark suites (EPFL, ITC'99, IWLS'05,
OpenCores): each function builds a gate-level :class:`Netlist` of a family
that appears in those suites — arithmetic datapaths (adders, multipliers,
squarers), control logic (arbiters, decoders, comparators), routing (mux
trees, barrel shifters) and code/parity networks (CRC, gray code, voters).

Arithmetic circuits contribute deep reconvergent structure (carry chains,
partial-product trees); control circuits contribute wide fanout stems — the
two structural regimes the paper's dataset spans.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..aig.netlist import GateType, Netlist

__all__ = [
    "ripple_adder",
    "carry_select_adder",
    "multiplier",
    "squarer",
    "comparator",
    "alu",
    "priority_arbiter",
    "round_robin_arbiter",
    "decoder",
    "mux_tree",
    "barrel_shifter",
    "parity",
    "crc",
    "gray_to_binary",
    "majority_voter",
    "incrementer",
    "random_control",
    "processor_like",
    "iter_huge_circuit_levels",
    "huge_circuit",
    "GENERATOR_CATALOG",
]


# ---------------------------------------------------------------------------
# small shared building blocks
# ---------------------------------------------------------------------------


def _full_adder(
    nl: Netlist, a: str, b: str, cin: Optional[str], prefix: str
) -> Tuple[str, str]:
    """Add a full (or half) adder; returns (sum, carry-out) net names."""
    if cin is None:
        s = nl.add_gate(f"{prefix}_s", GateType.XOR, [a, b])
        c = nl.add_gate(f"{prefix}_c", GateType.AND, [a, b])
        return s, c
    t = nl.add_gate(f"{prefix}_t", GateType.XOR, [a, b])
    s = nl.add_gate(f"{prefix}_s", GateType.XOR, [t, cin])
    c1 = nl.add_gate(f"{prefix}_c1", GateType.AND, [a, b])
    c2 = nl.add_gate(f"{prefix}_c2", GateType.AND, [t, cin])
    c = nl.add_gate(f"{prefix}_c", GateType.OR, [c1, c2])
    return s, c


def _mux2(nl: Netlist, sel: str, if_false: str, if_true: str, name: str) -> str:
    return nl.add_gate(name, GateType.MUX, [sel, if_false, if_true])


def _reduce_tree(nl: Netlist, op: str, nets: Sequence[str], prefix: str) -> str:
    """Balanced reduction of ``nets`` with a 2-input gate type."""
    layer = list(nets)
    round_no = 0
    while len(layer) > 1:
        nxt = []
        for k in range(0, len(layer) - 1, 2):
            nxt.append(
                nl.add_gate(f"{prefix}_r{round_no}_{k // 2}", op, layer[k : k + 2])
            )
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        round_no += 1
    return layer[0]


# ---------------------------------------------------------------------------
# arithmetic (EPFL-arithmetic / OpenCores style)
# ---------------------------------------------------------------------------


def ripple_adder(width: int, with_carry_in: bool = False) -> Netlist:
    """``width``-bit ripple-carry adder: deep carry chain, heavy reconvergence."""
    nl = Netlist(f"ripple_adder{width}")
    a = [nl.add_input(f"a{k}") for k in range(width)]
    b = [nl.add_input(f"b{k}") for k in range(width)]
    carry = nl.add_input("cin") if with_carry_in else None
    sums: List[str] = []
    for k in range(width):
        s, carry = _full_adder(nl, a[k], b[k], carry, f"fa{k}")
        sums.append(s)
    nl.set_outputs(sums + [carry])
    return nl


def carry_select_adder(width: int, block: int = 4) -> Netlist:
    """Carry-select adder: duplicated blocks + mux chains (wide, shallower)."""
    nl = Netlist(f"carry_select_adder{width}")
    a = [nl.add_input(f"a{k}") for k in range(width)]
    b = [nl.add_input(f"b{k}") for k in range(width)]
    outs: List[str] = []
    carry: Optional[str] = None
    for start in range(0, width, block):
        stop = min(start + block, width)
        if start == 0:
            for k in range(start, stop):
                s, carry = _full_adder(nl, a[k], b[k], carry, f"b0_fa{k}")
                outs.append(s)
            continue
        # speculative block for carry-in = 0 and = 1
        c0: Optional[str] = None
        c1: Optional[str] = None
        s0s, s1s = [], []
        for k in range(start, stop):
            if c0 is None:
                s0, c0 = _full_adder(nl, a[k], b[k], None, f"s0_fa{k}")
                t = nl.add_gate(f"s1_t{k}", GateType.XOR, [a[k], b[k]])
                s1 = nl.add_gate(f"s1_s{k}", GateType.NOT, [t])
                g = nl.add_gate(f"s1_g{k}", GateType.AND, [a[k], b[k]])
                c1 = nl.add_gate(f"s1_c{k}", GateType.OR, [g, t])
            else:
                s0, c0 = _full_adder(nl, a[k], b[k], c0, f"s0_fa{k}")
                s1, c1 = _full_adder(nl, a[k], b[k], c1, f"s1_fa{k}")
            s0s.append(s0)
            s1s.append(s1)
        for k, (s0, s1) in enumerate(zip(s0s, s1s)):
            outs.append(_mux2(nl, carry, s0, s1, f"sel_s{start + k}"))
        carry = _mux2(nl, carry, c0, c1, f"sel_c{start}")
    nl.set_outputs(outs + [carry])
    return nl


def multiplier(width: int, width_b: Optional[int] = None) -> Netlist:
    """Array multiplier: AND partial products + ripple adder rows."""
    wb = width_b or width
    nl = Netlist(f"multiplier{width}x{wb}")
    a = [nl.add_input(f"a{k}") for k in range(width)]
    b = [nl.add_input(f"b{k}") for k in range(wb)]
    return _finish_product(nl, a, b, shared_operand=False)


def squarer(width: int) -> Netlist:
    """Squarer: multiplier with both operands tied to one input vector.

    Every input bit fans out into two partial-product rows — maximal
    reconvergence (the paper's Table III evaluates exactly this family).
    """
    nl = Netlist(f"squarer{width}")
    a = [nl.add_input(f"a{k}") for k in range(width)]
    return _finish_product(nl, a, a, shared_operand=True)


def _finish_product(
    nl: Netlist, a: Sequence[str], b: Sequence[str], shared_operand: bool
) -> Netlist:
    rows: List[List[Tuple[int, str]]] = []  # (bit position, net)
    for j, bj in enumerate(b):
        row = []
        for i, ai in enumerate(a):
            if shared_operand and ai == bj:
                row.append((i + j, ai))  # a_i & a_i = a_i
                continue
            pp = nl.add_gate(f"pp_{i}_{j}", GateType.AND, [ai, bj])
            row.append((i + j, pp))
        rows.append(row)
    # accumulate rows with ripple adders per bit position
    acc: dict = {}
    for row in rows:
        for pos, net in row:
            acc.setdefault(pos, []).append(net)
    outs: List[str] = []
    counter = 0
    pos = 0
    while pos in acc:
        column = acc[pos]
        while len(column) > 1:
            if len(column) == 2:
                s, c = _full_adder(nl, column[0], column[1], None, f"acc{counter}")
            else:
                s, c = _full_adder(
                    nl, column[0], column[1], column[2], f"acc{counter}"
                )
                del column[2]
            counter += 1
            column[0:2] = [s]
            acc.setdefault(pos + 1, []).append(c)
        outs.append(column[0])
        pos += 1
    nl.set_outputs(outs)
    return nl


def incrementer(width: int) -> Netlist:
    """x + 1: the next-state logic of a counter (ITC'99-style block)."""
    nl = Netlist(f"incrementer{width}")
    x = [nl.add_input(f"x{k}") for k in range(width)]
    carry = x[0]
    outs = [nl.add_gate("s0", GateType.NOT, [x[0]])]
    for k in range(1, width):
        outs.append(nl.add_gate(f"s{k}", GateType.XOR, [x[k], carry]))
        if k < width - 1:
            carry = nl.add_gate(f"c{k}", GateType.AND, [x[k], carry])
    nl.set_outputs(outs)
    return nl


# ---------------------------------------------------------------------------
# comparison / control (ITC'99 / EPFL-control style)
# ---------------------------------------------------------------------------


def comparator(width: int) -> Netlist:
    """Equality and less-than comparison of two vectors."""
    nl = Netlist(f"comparator{width}")
    a = [nl.add_input(f"a{k}") for k in range(width)]
    b = [nl.add_input(f"b{k}") for k in range(width)]
    eq_bits = [
        nl.add_gate(f"eq{k}", GateType.XNOR, [a[k], b[k]]) for k in range(width)
    ]
    eq = _reduce_tree(nl, GateType.AND, eq_bits, "eq_all")
    # a < b: highest differing bit has a=0, b=1
    lt_terms: List[str] = []
    for k in range(width - 1, -1, -1):
        na = nl.add_gate(f"na{k}", GateType.NOT, [a[k]])
        bit_lt = nl.add_gate(f"lt{k}", GateType.AND, [na, b[k]])
        if k == width - 1:
            lt_terms.append(bit_lt)
        else:
            higher_eq = _reduce_tree(
                nl, GateType.AND, eq_bits[k + 1 :], f"he{k}"
            )
            lt_terms.append(
                nl.add_gate(f"ltc{k}", GateType.AND, [bit_lt, higher_eq])
            )
    lt = _reduce_tree(nl, GateType.OR, lt_terms, "lt_any")
    nl.set_outputs([eq, lt])
    return nl


def priority_arbiter(num_requests: int) -> Netlist:
    """Fixed-priority arbiter: grant_i = req_i & !req_0 & ... & !req_{i-1}.

    Low-index requests fan out into every higher grant — the repetitive,
    reconvergence-dense structure the paper highlights for its Arbiter
    result (73.6% error reduction, Table III).
    """
    nl = Netlist(f"priority_arbiter{num_requests}")
    reqs = [nl.add_input(f"req{k}") for k in range(num_requests)]
    neg = [
        nl.add_gate(f"nreq{k}", GateType.NOT, [reqs[k]])
        for k in range(num_requests - 1)
    ]
    grants: List[str] = [
        nl.add_gate("grant0", GateType.BUF, [reqs[0]])
    ]
    for k in range(1, num_requests):
        mask = _reduce_tree(nl, GateType.AND, neg[:k], f"mask{k}")
        grants.append(nl.add_gate(f"grant{k}", GateType.AND, [reqs[k], mask]))
    any_grant = _reduce_tree(nl, GateType.OR, reqs, "busy")
    nl.set_outputs(grants + [any_grant])
    return nl


def round_robin_arbiter(num_requests: int) -> Netlist:
    """Arbiter with a rotating priority pointer (one-hot pointer inputs)."""
    nl = Netlist(f"rr_arbiter{num_requests}")
    reqs = [nl.add_input(f"req{k}") for k in range(num_requests)]
    ptr = [nl.add_input(f"ptr{k}") for k in range(num_requests)]
    grants: List[str] = []
    for k in range(num_requests):
        terms: List[str] = []
        for start in range(num_requests):
            # grant k when pointer at `start` and k is the first request
            # (scanning from start) that is asserted
            offset = (k - start) % num_requests
            scan = [reqs[(start + j) % num_requests] for j in range(offset)]
            parts = [ptr[start], reqs[k]]
            for j, r in enumerate(scan):
                parts.append(
                    nl.add_gate(f"n_{k}_{start}_{j}", GateType.NOT, [r])
                )
            terms.append(
                _reduce_tree(nl, GateType.AND, parts, f"t_{k}_{start}")
            )
        grants.append(_reduce_tree(nl, GateType.OR, terms, f"grant{k}_or"))
    nl.set_outputs(grants)
    return nl


def decoder(select_bits: int) -> Netlist:
    """``select_bits``-to-``2**select_bits`` one-hot decoder with enable."""
    nl = Netlist(f"decoder{select_bits}")
    sel = [nl.add_input(f"s{k}") for k in range(select_bits)]
    en = nl.add_input("en")
    neg = [nl.add_gate(f"ns{k}", GateType.NOT, [s]) for k, s in enumerate(sel)]
    outs: List[str] = []
    for code in range(1 << select_bits):
        terms = [en] + [
            sel[k] if (code >> k) & 1 else neg[k] for k in range(select_bits)
        ]
        outs.append(_reduce_tree(nl, GateType.AND, terms, f"d{code}"))
    nl.set_outputs(outs)
    return nl


def mux_tree(select_bits: int) -> Netlist:
    """``2**select_bits``-to-1 multiplexer tree."""
    nl = Netlist(f"mux_tree{select_bits}")
    data = [nl.add_input(f"d{k}") for k in range(1 << select_bits)]
    sel = [nl.add_input(f"s{k}") for k in range(select_bits)]
    layer = data
    for level, s in enumerate(sel):
        layer = [
            _mux2(nl, s, layer[2 * k], layer[2 * k + 1], f"m{level}_{k}")
            for k in range(len(layer) // 2)
        ]
    nl.set_outputs([layer[0]])
    return nl


def barrel_shifter(width_bits: int) -> Netlist:
    """Logarithmic left-rotate of a ``2**width_bits``-bit word."""
    nl = Netlist(f"barrel_shifter{width_bits}")
    width = 1 << width_bits
    word = [nl.add_input(f"d{k}") for k in range(width)]
    amount = [nl.add_input(f"sh{k}") for k in range(width_bits)]
    layer = word
    for stage, s in enumerate(amount):
        shift = 1 << stage
        layer = [
            _mux2(nl, s, layer[k], layer[(k - shift) % width], f"b{stage}_{k}")
            for k in range(width)
        ]
    nl.set_outputs(layer)
    return nl


# ---------------------------------------------------------------------------
# codes and parity (IWLS / OpenCores style)
# ---------------------------------------------------------------------------


def parity(width: int) -> Netlist:
    """XOR parity tree over ``width`` inputs."""
    nl = Netlist(f"parity{width}")
    xs = [nl.add_input(f"x{k}") for k in range(width)]
    nl.set_outputs([_reduce_tree(nl, GateType.XOR, xs, "p")])
    return nl


def crc(data_width: int, polynomial: int = 0x07, crc_width: int = 8) -> Netlist:
    """Combinational CRC over a data word (serial LFSR unrolled).

    ``polynomial`` gives the feedback taps (low ``crc_width`` bits); the
    default 0x07 is CRC-8-CCITT.
    """
    nl = Netlist(f"crc{crc_width}_d{data_width}")
    data = [nl.add_input(f"d{k}") for k in range(data_width)]
    state = [nl.add_input(f"c{k}") for k in range(crc_width)]
    regs: List[str] = list(state)
    for step, bit in enumerate(data):
        feedback = nl.add_gate(
            f"fb{step}", GateType.XOR, [bit, regs[crc_width - 1]]
        )
        nxt: List[str] = []
        for k in range(crc_width):
            prev = regs[k - 1] if k else None
            if (polynomial >> k) & 1:
                if k == 0:
                    nxt.append(
                        nl.add_gate(f"s{step}_{k}", GateType.BUF, [feedback])
                    )
                else:
                    nxt.append(
                        nl.add_gate(
                            f"s{step}_{k}", GateType.XOR, [prev, feedback]
                        )
                    )
            else:
                nxt.append(
                    nl.add_gate(f"s{step}_{k}", GateType.BUF, [prev])
                    if k
                    else nl.add_gate(f"s{step}_{k}", GateType.BUF, [feedback])
                )
        regs = nxt
    nl.set_outputs(regs)
    return nl


def gray_to_binary(width: int) -> Netlist:
    """Gray-code to binary: prefix-XOR chain."""
    nl = Netlist(f"gray_to_binary{width}")
    g = [nl.add_input(f"g{k}") for k in range(width)]
    outs = [nl.add_gate(f"b{width - 1}", GateType.BUF, [g[width - 1]])]
    for k in range(width - 2, -1, -1):
        outs.append(nl.add_gate(f"b{k}", GateType.XOR, [g[k], outs[-1]]))
    nl.set_outputs(list(reversed(outs)))
    return nl


def majority_voter(width: int) -> Netlist:
    """1 when more than half of the inputs are 1 (EPFL 'voter' family).

    Counts ones with a full-adder tree, then compares against width/2.
    """
    if width % 2 == 0:
        raise ValueError("majority needs an odd number of inputs")
    nl = Netlist(f"majority{width}")
    xs = [nl.add_input(f"x{k}") for k in range(width)]
    # column-compression popcount: repeatedly full-add triples per weight
    columns: dict = {0: list(xs)}
    counter = 0
    weight = 0
    sum_bits: List[str] = []
    while weight in columns:
        col = columns[weight]
        while len(col) > 2:
            s, c = _full_adder(nl, col[0], col[1], col[2], f"v{counter}")
            counter += 1
            col[0:3] = [s]
            columns.setdefault(weight + 1, []).append(c)
        if len(col) == 2:
            s, c = _full_adder(nl, col[0], col[1], None, f"v{counter}")
            counter += 1
            col[0:2] = [s]
            columns.setdefault(weight + 1, []).append(c)
        sum_bits.append(col[0])
        weight += 1
    # majority: popcount >= (width+1)/2; compare against the constant
    threshold = (width + 1) // 2
    terms: List[str] = []
    # popcount > t-1  <=>  OR over bits of (popcount AND mask >= ...) — use
    # direct comparison: popcount >= threshold via subtract-free compare
    # against fixed constant: scan from MSB.
    gt_terms: List[str] = []
    eq_so_far: Optional[str] = None
    for k in range(len(sum_bits) - 1, -1, -1):
        t_bit = (threshold >> k) & 1
        bit = sum_bits[k]
        if t_bit == 0:
            # popcount bit 1 where threshold bit 0 (higher bits equal) -> greater
            term = bit if eq_so_far is None else nl.add_gate(
                f"gt{k}", GateType.AND, [eq_so_far, bit]
            )
            gt_terms.append(term)
            eq_bit = nl.add_gate(f"eqb{k}", GateType.NOT, [bit])
        else:
            eq_bit = bit
        eq_so_far = (
            eq_bit
            if eq_so_far is None
            else nl.add_gate(f"eqs{k}", GateType.AND, [eq_so_far, eq_bit])
        )
    # >= threshold: strictly greater OR exactly equal
    terms = gt_terms + [eq_so_far]
    nl.set_outputs([_reduce_tree(nl, GateType.OR, terms, "maj")])
    return nl


# ---------------------------------------------------------------------------
# random control logic and composite "processor-like" designs
# ---------------------------------------------------------------------------

_RANDOM_BINARY = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)


def random_control(
    rng: np.random.Generator,
    num_inputs: int = 8,
    num_gates: int = 60,
    num_outputs: int = 4,
    include_mux: bool = True,
    locality: int = 12,
) -> Netlist:
    """Random combinational control logic (ITC'99 next-state style).

    Gates draw fan-ins from recently created nets (window ``locality``),
    giving layered, fanout-sharing structure rather than a shapeless blob.
    """
    nl = Netlist(f"random_control_{num_inputs}x{num_gates}")
    nets = [nl.add_input(f"i{k}") for k in range(num_inputs)]
    for g in range(num_gates):
        window = nets[-locality:]
        choice = int(rng.integers(0, 12))
        name = f"g{g}"
        if choice == 0:
            nl.add_gate(name, GateType.NOT, [str(rng.choice(window))])
        elif include_mux and choice == 1 and len(window) >= 3:
            picks = rng.choice(len(window), size=3, replace=False)
            nl.add_gate(name, GateType.MUX, [window[p] for p in picks])
        else:
            t = _RANDOM_BINARY[int(rng.integers(0, len(_RANDOM_BINARY)))]
            k = min(len(window), int(rng.integers(2, 4)))
            picks = rng.choice(len(window), size=k, replace=False)
            nl.add_gate(name, t, [window[p] for p in picks])
        nets.append(name)
    pool = nets[num_inputs:]
    step = max(1, len(pool) // num_outputs)
    outs = [pool[min(len(pool) - 1, (k + 1) * step - 1)] for k in range(num_outputs)]
    nl.set_outputs(outs)
    return nl


def alu(width: int) -> Netlist:
    """Small ALU: add, and, or, xor selected by two opcode bits."""
    nl = Netlist(f"alu{width}")
    a = [nl.add_input(f"a{k}") for k in range(width)]
    b = [nl.add_input(f"b{k}") for k in range(width)]
    op0 = nl.add_input("op0")
    op1 = nl.add_input("op1")
    carry: Optional[str] = None
    add_bits: List[str] = []
    for k in range(width):
        s, carry = _full_adder(nl, a[k], b[k], carry, f"add{k}")
        add_bits.append(s)
    outs: List[str] = []
    for k in range(width):
        and_k = nl.add_gate(f"and{k}", GateType.AND, [a[k], b[k]])
        or_k = nl.add_gate(f"or{k}", GateType.OR, [a[k], b[k]])
        xor_k = nl.add_gate(f"xor{k}", GateType.XOR, [a[k], b[k]])
        lo = _mux2(nl, op0, add_bits[k], and_k, f"lo{k}")
        hi = _mux2(nl, op0, or_k, xor_k, f"hi{k}")
        outs.append(_mux2(nl, op1, lo, hi, f"out{k}"))
    zero_terms = [nl.add_gate(f"nz{k}", GateType.NOT, [outs[k]]) for k in range(width)]
    zero = _reduce_tree(nl, GateType.AND, zero_terms, "zero")
    nl.set_outputs(outs + [zero, carry])
    return nl


def processor_like(width: int, rng: Optional[np.random.Generator] = None) -> Netlist:
    """A processor-datapath slice: ALU + comparator + shifter + control.

    Stands in for the paper's "80386 / Viper processor" designs: a mix of
    arithmetic depth and control fanout in one netlist.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    nl = Netlist(f"processor_like{width}")
    a = [nl.add_input(f"a{k}") for k in range(width)]
    b = [nl.add_input(f"b{k}") for k in range(width)]
    op = [nl.add_input(f"op{k}") for k in range(3)]

    # ALU core (add / logic ops)
    carry: Optional[str] = None
    add_bits: List[str] = []
    for k in range(width):
        s, carry = _full_adder(nl, a[k], b[k], carry, f"p_add{k}")
        add_bits.append(s)
    logic_bits = [
        nl.add_gate(f"p_logic{k}", GateType.XOR, [a[k], b[k]]) for k in range(width)
    ]
    # rotate-by-one unit
    rot_bits = [a[(k - 1) % width] for k in range(width)]
    stage1 = [
        _mux2(nl, op[0], add_bits[k], logic_bits[k], f"p_s1_{k}")
        for k in range(width)
    ]
    stage2 = [
        _mux2(nl, op[1], stage1[k], rot_bits[k], f"p_s2_{k}") for k in range(width)
    ]
    # conditional invert (sub-like path)
    result = [
        _mux2(
            nl,
            op[2],
            stage2[k],
            nl.add_gate(f"p_inv{k}", GateType.NOT, [stage2[k]]),
            f"p_res{k}",
        )
        for k in range(width)
    ]
    # flags
    nres = [nl.add_gate(f"p_nr{k}", GateType.NOT, [result[k]]) for k in range(width)]
    zero = _reduce_tree(nl, GateType.AND, nres, "p_zero")
    sign = nl.add_gate("p_sign", GateType.BUF, [result[-1]])
    eq_bits = [
        nl.add_gate(f"p_eq{k}", GateType.XNOR, [a[k], b[k]]) for k in range(width)
    ]
    equal = _reduce_tree(nl, GateType.AND, eq_bits, "p_equal")
    nl.set_outputs(result + [zero, sign, equal, carry])
    return nl


# ---------------------------------------------------------------------------
# industrial-scale synthetic netlists (streaming ingest)
# ---------------------------------------------------------------------------


def iter_huge_circuit_levels(
    num_gates: int,
    seed: int = 0,
    width: int = 512,
    num_pis: Optional[int] = None,
    not_frac: float = 0.15,
    fanin_window: int = 4096,
):
    """Stream a levelized synthetic AIG-style netlist, one level at a time.

    The scalable ingest path for 10^5–10^6-gate circuits: no ``Netlist``
    name dictionaries or Python object graphs are ever built — each yield
    is a tuple of numpy arrays ``(node_type, levels, labels, edges)`` for
    one topological level (the natural streaming chunk), with globally
    numbered node ids and edges pointing at strictly smaller ids.

    Structure: level 0 holds ``num_pis`` primary inputs; every following
    level holds up to ``width`` gates, each an AND (two fanins) or — with
    probability ``not_frac`` — a NOT (one fanin).  A gate's first fanin
    is drawn from the immediately preceding level, pinning its logic
    level; an AND's second fanin is drawn from a trailing locality window
    of ``fanin_window`` earlier nodes (bounded fan-in reach keeps the
    frontier cut sets of windowed propagation bounded too, like placed
    netlists).  Labels are signal probabilities under the independence
    approximation (PI ``0.5``, AND ``p_a * p_b``, NOT ``1 - p_a``).

    Determinism: each level draws from
    ``default_rng([seed, level])``, so the stream's bytes depend only on
    the parameters — never on how many levels a consumer materialises at
    once, which process builds them, or any global RNG state.

    ``num_gates`` counts *all* nodes (PIs included), matching
    ``CircuitGraph.num_nodes``.
    """
    num_pis = int(width if num_pis is None else num_pis)
    num_gates = int(num_gates)
    width = int(width)
    if num_pis < 1:
        raise ValueError(f"num_pis must be >= 1, got {num_pis}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if num_gates <= num_pis:
        raise ValueError(
            f"num_gates ({num_gates}) must exceed num_pis ({num_pis})"
        )
    if not 0.0 <= not_frac <= 1.0:
        raise ValueError(f"not_frac must be in [0, 1], got {not_frac}")
    if fanin_window < 1:
        raise ValueError(f"fanin_window must be >= 1, got {fanin_window}")
    # level 0: primary inputs
    yield (
        np.zeros(num_pis, np.int64),
        np.zeros(num_pis, np.int64),
        np.full(num_pis, 0.5, np.float32),
        np.zeros((0, 2), np.int64),
    )
    # running probabilities of every node emitted so far: the only state
    # the generator carries (4 bytes per node)
    probs = np.full(num_pis, 0.5, np.float32)
    base = num_pis
    prev_lo, prev_hi = 0, num_pis
    level = 0
    while base < num_gates:
        level += 1
        w = min(width, num_gates - base)
        rng = np.random.default_rng([seed, level])
        is_not = rng.random(w) < not_frac
        fan_a = rng.integers(prev_lo, prev_hi, size=w)
        win_lo = max(0, base - fanin_window)
        fan_b = rng.integers(win_lo, base, size=w)
        ids = np.arange(base, base + w, dtype=np.int64)
        node_type = np.where(is_not, 2, 1).astype(np.int64)  # AND=1, NOT=2
        levels = np.full(w, level, np.int64)
        p = np.where(
            is_not,
            1.0 - probs[fan_a],
            probs[fan_a] * probs[fan_b],
        ).astype(np.float32)
        edges_a = np.stack([fan_a, ids], axis=1)
        edges_b = np.stack([fan_b[~is_not], ids[~is_not]], axis=1)
        edges = np.concatenate([edges_a, edges_b], axis=0)
        yield node_type, levels, p, edges
        probs = np.concatenate([probs, p])
        prev_lo, prev_hi = base, base + w
        base += w


def huge_circuit(
    num_gates: int,
    seed: int = 0,
    width: int = 512,
    num_pis: Optional[int] = None,
    not_frac: float = 0.15,
    fanin_window: int = 4096,
):
    """Materialise :func:`iter_huge_circuit_levels` as a ``CircuitGraph``.

    Array-only construction (one concatenate per field) — no per-gate
    Python objects, so a million-gate circuit costs megabytes, not
    gigabytes.  Returned graphs carry no skip edges.
    """
    from ..graphdata.features import AIG_TYPE_NAMES, CircuitGraph

    types, levels, labels, edges = [], [], [], []
    for t, lv, p, e in iter_huge_circuit_levels(
        num_gates,
        seed=seed,
        width=width,
        num_pis=num_pis,
        not_frac=not_frac,
        fanin_window=fanin_window,
    ):
        types.append(t)
        levels.append(lv)
        labels.append(p)
        edges.append(e)
    return CircuitGraph(
        node_type=np.concatenate(types),
        type_names=AIG_TYPE_NAMES,
        edges=np.concatenate(edges),
        levels=np.concatenate(levels),
        labels=np.concatenate(labels),
        skip_edges=np.zeros((0, 2), np.int64),
        skip_level_diff=np.zeros(0, np.int64),
        name=f"huge_{num_gates}g_s{seed}",
    )


#: name -> (factory, default kwargs); used by suites and the CLI examples
GENERATOR_CATALOG = {
    "ripple_adder": (ripple_adder, {"width": 8}),
    "carry_select_adder": (carry_select_adder, {"width": 8}),
    "multiplier": (multiplier, {"width": 4}),
    "squarer": (squarer, {"width": 4}),
    "comparator": (comparator, {"width": 8}),
    "alu": (alu, {"width": 4}),
    "priority_arbiter": (priority_arbiter, {"num_requests": 8}),
    "round_robin_arbiter": (round_robin_arbiter, {"num_requests": 4}),
    "decoder": (decoder, {"select_bits": 3}),
    "mux_tree": (mux_tree, {"select_bits": 3}),
    "barrel_shifter": (barrel_shifter, {"width_bits": 3}),
    "parity": (parity, {"width": 16}),
    "crc": (crc, {"data_width": 8}),
    "gray_to_binary": (gray_to_binary, {"width": 8}),
    "majority_voter": (majority_voter, {"width": 9}),
    "incrementer": (incrementer, {"width": 8}),
    "processor_like": (processor_like, {"width": 4}),
}
