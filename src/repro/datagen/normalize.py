"""Netlist normalisation and technology variegation (Table IV substrate).

The "w/o transformation" arm of Table IV trains directly on original
netlists whose vocabulary is {AND, NAND, OR, NOR, XOR, NOT} plus inputs.

:func:`normalize_to_library` rewrites generator-only gate types into that
library without changing functionality (BUF removed, XNOR -> XOR + NOT,
MUX -> AND/OR/NOT network).

:func:`variegate` emulates what diverse technology libraries and design
styles do to real netlists — the heterogeneity the paper's §III-B calls "a
challenge for GNN model development".  Every gate is rewritten into a
randomly chosen functionally equivalent form (direct, inverted-output
NAND/NOR, De Morgan dual, chain vs tree decomposition), yielding mixed,
imbalanced gate-type distributions; logic synthesis collapses all variants
back to the same optimised AIG, which is exactly the paper's argument for
the unified representation.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..aig.netlist import GateType, Netlist, NetlistError

__all__ = ["normalize_to_library", "variegate"]

_LIBRARY = {
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.NOT,
}


def normalize_to_library(netlist: Netlist) -> Netlist:
    """Return an equivalent netlist using only the 6-type gate library."""
    netlist.validate()
    out = Netlist(netlist.name)
    alias: Dict[str, str] = {}

    def resolve(name: str) -> str:
        while name in alias:
            name = alias[name]
        return name

    for pin in netlist.inputs:  # keep the declared PI order
        out.add_input(pin)
    for name in netlist.topological_order():
        gate = netlist.gate(name)
        t = gate.gate_type
        fanins = [resolve(f) for f in gate.fanins]
        if t == GateType.INPUT:
            pass  # declared above
        elif t in _LIBRARY:
            out.add_gate(name, t, fanins)
        elif t == GateType.BUF:
            alias[name] = fanins[0]
        elif t == GateType.XNOR:
            out.add_gate(f"{name}__x", GateType.XOR, fanins)
            out.add_gate(name, GateType.NOT, [f"{name}__x"])
        elif t == GateType.MUX:
            sel, if_false, if_true = fanins
            out.add_gate(f"{name}__ns", GateType.NOT, [sel])
            out.add_gate(f"{name}__t0", GateType.AND, [f"{name}__ns", if_false])
            out.add_gate(f"{name}__t1", GateType.AND, [sel, if_true])
            out.add_gate(name, GateType.OR, [f"{name}__t0", f"{name}__t1"])
        else:
            raise NetlistError(
                f"cannot normalise gate type {t!r} (constants unsupported)"
            )

    outputs = []
    for o in netlist.outputs:
        resolved = resolve(o)
        if resolved not in out:
            raise NetlistError(f"output {o!r} lost during normalisation")
        outputs.append(resolved)
    out.set_outputs(outputs)
    out.validate()
    return out


def variegate(netlist: Netlist, rng: np.random.Generator) -> Netlist:
    """Rewrite every gate into a random functionally equivalent form.

    Input must already use the 6-type library (run
    :func:`normalize_to_library` first).  The output uses the same library
    but with a mixed, imbalanced type distribution: ANDs may become
    inverted NANDs or De Morgan NOR forms, multi-input gates may become
    chains instead of trees, and so on.
    """
    netlist.validate()
    out = Netlist(netlist.name)
    counter = [0]

    def fresh(tag: str) -> str:
        counter[0] += 1
        return f"v{counter[0]}_{tag}"

    def emit_not(x: str) -> str:
        return out.add_gate(fresh("n"), GateType.NOT, [x])

    def emit_and2(a: str, b: str) -> str:
        style = int(rng.integers(0, 3))
        if style == 0:
            return out.add_gate(fresh("a"), GateType.AND, [a, b])
        if style == 1:  # !(a nand b)
            return emit_not(out.add_gate(fresh("na"), GateType.NAND, [a, b]))
        return out.add_gate(fresh("dm"), GateType.NOR, [emit_not(a), emit_not(b)])

    def emit_or2(a: str, b: str) -> str:
        style = int(rng.integers(0, 3))
        if style == 0:
            return out.add_gate(fresh("o"), GateType.OR, [a, b])
        if style == 1:
            return emit_not(out.add_gate(fresh("no"), GateType.NOR, [a, b]))
        return out.add_gate(fresh("dm"), GateType.NAND, [emit_not(a), emit_not(b)])

    def emit_xor2(a: str, b: str) -> str:
        # real technology-mapped netlists use XOR cells sparingly (the
        # paper's §IV-D.1 observes exactly this imbalance); most parities
        # appear as AND/OR decompositions
        draw = rng.random()
        if draw < 0.3:
            return out.add_gate(fresh("x"), GateType.XOR, [a, b])
        if draw < 0.65:  # (a | b) & !(a & b)
            return emit_and2(emit_or2(a, b), emit_not(emit_and2(a, b)))
        # (a & !b) | (!a & b)
        return emit_or2(
            emit_and2(a, emit_not(b)), emit_and2(emit_not(a), b)
        )

    def reduce_many(op, fanins: List[str]) -> str:
        """Random chain (ripple) or tree reduction of 3+ fan-ins."""
        items = list(fanins)
        if rng.integers(0, 2):  # chain
            acc = items[0]
            for nxt in items[1:]:
                acc = op(acc, nxt)
            return acc
        while len(items) > 1:  # tree
            nxt_items = []
            for k in range(0, len(items) - 1, 2):
                nxt_items.append(op(items[k], items[k + 1]))
            if len(items) % 2:
                nxt_items.append(items[-1])
            items = nxt_items
        return items[0]

    _BASE = {
        GateType.AND: emit_and2,
        GateType.OR: emit_or2,
        GateType.XOR: emit_xor2,
    }
    _INVERTED = {GateType.NAND: emit_and2, GateType.NOR: emit_or2}

    name_map: Dict[str, str] = {}
    for pin in netlist.inputs:  # keep the declared PI order
        name_map[pin] = out.add_input(pin)
    for name in netlist.topological_order():
        gate = netlist.gate(name)
        t = gate.gate_type
        fanins = [name_map[f] for f in gate.fanins]
        if t == GateType.INPUT:
            continue
        if t == GateType.NOT:
            name_map[name] = emit_not(fanins[0])
        elif t in _BASE:
            name_map[name] = reduce_many(_BASE[t], fanins)
        elif t in _INVERTED:
            name_map[name] = emit_not(reduce_many(_INVERTED[t], fanins))
        else:
            raise NetlistError(
                f"variegate expects the 6-type library, got {t!r} "
                "(run normalize_to_library first)"
            )

    out.set_outputs([name_map[o] for o in netlist.outputs])
    out.validate()
    return out
