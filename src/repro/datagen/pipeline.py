"""Parallel, sharded, cached dataset generation.

The paper's supervision labels come from simulating up to 100k random
patterns per circuit; at dataset scale (Table I: 10,824 sub-circuits) that
is embarrassingly parallel but far too slow to redo on every run.  This
module turns dataset generation into a build system:

* the work is split into **shards** of ``shard_size`` circuits each;
* every shard is a pure function of ``(config, suite, shard_index)`` — its
  RNG is derived from a :class:`numpy.random.SeedSequence` over exactly
  those values — so shards can be built in any order, by any number of
  worker processes, and still come out byte-identical;
* shards are written as deterministic ``.npz`` files next to a
  ``manifest.json`` carrying the config, a sha256 **config hash** for cache
  invalidation and a sha256 per shard for integrity checking;
* a rebuild with an unchanged config and intact shard files is a **cache
  hit** and touches nothing on disk.

Shard and manifest writes are atomic (temp file + rename), so readers
never see a torn file; but two *builders* racing on the same directory
are not coordinated — last writer wins.  Give concurrent first-time
builds distinct directories (the experiment harness keys directories by
scale and seed for this reason).

Typical use::

    config = PipelineConfig.from_scale(get_scale("default"))
    result = build_shards(config, "data/default", workers=8)
    dataset = ShardedCircuitDataset(result.out_dir)

or from the command line::

    python -m repro dataset build --scale default --out data/default --workers 8
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from ..graphdata.features import CircuitGraph
from ..utils import atomic_write_text
from ..graphdata.shards import (
    MANIFEST_FORMAT_VERSION,
    MANIFEST_NAME,
    SHARD_FORMAT_VERSION,
    file_sha256,
    load_manifest,
    write_shard,
)
from .suites import SUITE_NAMES, generate_suite_graphs

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_FORMAT_VERSION",
    "PipelineConfig",
    "ShardSpec",
    "BuildResult",
    "plan_shards",
    "generate_shard",
    "generate_suite",
    "shard_metadata",
    "write_manifest",
    "build_shards",
    "load_manifest",
    "manifest_is_current",
    "default_workers",
]


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that determines the contents of a dataset build.

    The config (plus the shard format version) hashes to ``config_hash``;
    any change to any field produces a different hash and therefore a full
    cache invalidation.  ``suites`` maps suite name to circuit count, as a
    tuple of pairs so the config stays hashable.

    ``shard_size`` determines the per-shard RNG partitioning, so changing
    it changes *which* circuits are generated — it is a dataset knob like
    ``seed``, not a performance-only tuning parameter.
    """

    suites: Tuple[Tuple[str, int], ...]
    seed: int = 0
    num_patterns: int = 15_000
    min_nodes: int = 30
    max_nodes: int = 3000
    max_levels: int = 80
    with_skip_edges: bool = True
    shard_size: int = 8

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        seen = set()
        for name, count in self.suites:
            if name not in SUITE_NAMES:
                raise ValueError(
                    f"unknown suite {name!r}; choose from {SUITE_NAMES}"
                )
            if name in seen:
                raise ValueError(f"suite {name!r} listed twice")
            seen.add(name)
            if count < 1:
                raise ValueError(f"suite {name!r} needs a positive count")

    @classmethod
    def from_scale(cls, scale) -> "PipelineConfig":
        """Build a config from an experiment :class:`~repro.experiments.common.Scale`."""
        return cls(
            suites=tuple(scale.circuits_per_suite),
            seed=scale.seed,
            num_patterns=scale.num_patterns,
            min_nodes=scale.min_nodes,
            max_nodes=scale.max_nodes,
            max_levels=scale.max_levels,
        )

    def suite_counts(self) -> Dict[str, int]:
        return dict(self.suites)

    def to_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        out["suites"] = [list(pair) for pair in self.suites]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PipelineConfig":
        kwargs = dict(data)
        kwargs["suites"] = tuple(
            (str(name), int(count)) for name, count in kwargs["suites"]
        )
        return cls(**kwargs)

    def config_hash(self) -> str:
        """Sha256 over the canonical config JSON + shard format version."""
        payload = {
            "config": self.to_dict(),
            "shard_format_version": SHARD_FORMAT_VERSION,
        }
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """One unit of work: ``count`` circuits of ``suite`` in shard ``index``."""

    suite: str
    index: int
    count: int

    @property
    def filename(self) -> str:
        return f"{self.suite.lower()}-{self.index:05d}.npz"


@dataclass
class BuildResult:
    """Outcome of :func:`build_shards`."""

    manifest: Dict[str, object]
    out_dir: Path
    cache_hit: bool
    elapsed: float

    @property
    def shard_paths(self) -> List[Path]:
        return [
            self.out_dir / shard["filename"]
            for shard in self.manifest["shards"]
        ]

    @property
    def total_circuits(self) -> int:
        return int(self.manifest["total_circuits"])


def plan_shards(config: PipelineConfig) -> List[ShardSpec]:
    """Deterministic decomposition of a config into shard work units."""
    specs: List[ShardSpec] = []
    for suite, total in config.suites:
        index = 0
        remaining = total
        while remaining > 0:
            count = min(config.shard_size, remaining)
            specs.append(ShardSpec(suite=suite, index=index, count=count))
            remaining -= count
            index += 1
    return specs


def _shard_rng(config: PipelineConfig, spec: ShardSpec) -> np.random.Generator:
    """Per-shard RNG keyed on (seed, suite, shard index) only.

    Deliberately independent of worker assignment, shard ordering and the
    other suites in the config, so adding a suite or changing the worker
    count never changes an existing shard's contents.
    """
    seq = np.random.SeedSequence(
        [config.seed, SUITE_NAMES.index(spec.suite), spec.index]
    )
    return np.random.default_rng(seq)


def generate_shard(
    config: PipelineConfig, spec: ShardSpec
) -> List[CircuitGraph]:
    """Generate one shard's circuits (pure, deterministic)."""
    return generate_suite_graphs(
        spec.suite,
        spec.count,
        _shard_rng(config, spec),
        num_patterns=config.num_patterns,
        min_nodes=config.min_nodes,
        max_nodes=config.max_nodes,
        max_levels=config.max_levels,
        with_skip_edges=config.with_skip_edges,
    )


def generate_suite(config: PipelineConfig, suite: str) -> List[CircuitGraph]:
    """All circuits of one suite, serially, bypassing disk.

    Produces exactly the graphs that the sharded build writes for that
    suite, in shard order — the in-process fast path used by the
    experiment harness when no dataset directory is configured.
    """
    graphs: List[CircuitGraph] = []
    for spec in plan_shards(config):
        if spec.suite == suite:
            graphs.extend(generate_shard(config, spec))
    return graphs


# ---------------------------------------------------------------------------
# building + caching
# ---------------------------------------------------------------------------


def shard_metadata(
    spec: ShardSpec, graphs: List[CircuitGraph], sha: str
) -> Dict[str, object]:
    """The manifest entry for one written shard.

    One canonical constructor, shared by the pool builder and the
    distributed workers, so manifests assembled from either path are
    byte-identical for the same shards.
    """
    return {
        "filename": spec.filename,
        "suite": spec.suite,
        "shard_index": spec.index,
        "num_circuits": len(graphs),
        "num_nodes": int(sum(g.num_nodes for g in graphs)),
        "circuits": [g.name for g in graphs],
        "sha256": sha,
    }


def _build_one(
    args: Tuple[Dict[str, object], str, str, int, int]
) -> Dict[str, object]:
    """Worker entry point: build one shard, write it, return its metadata.

    Takes plain picklable values so it works identically under fork and
    spawn start methods.
    """
    config_dict, out_dir, suite, index, count = args
    config = PipelineConfig.from_dict(config_dict)
    spec = ShardSpec(suite=suite, index=index, count=count)
    graphs = generate_shard(config, spec)
    path = Path(out_dir) / spec.filename
    sha = write_shard(path, graphs)
    return shard_metadata(spec, graphs, sha)


def manifest_is_current(
    out_dir: Union[str, Path],
    config: PipelineConfig,
    verify_hashes: bool = True,
) -> bool:
    """True when ``out_dir`` holds a complete build of exactly ``config``."""
    manifest = load_manifest(out_dir)
    if manifest is None or manifest.get("config_hash") != config.config_hash():
        return False
    for shard in manifest["shards"]:
        path = Path(out_dir) / shard["filename"]
        if not path.is_file():
            return False
        if verify_hashes and file_sha256(path) != shard["sha256"]:
            return False
    return True


def write_manifest(
    out_dir: Path, config: PipelineConfig, shards: List[Dict[str, object]]
) -> Dict[str, object]:
    """Write the certifying dataset manifest (atomically, always last)."""
    manifest: Dict[str, object] = {
        "format_version": MANIFEST_FORMAT_VERSION,
        "shard_format_version": SHARD_FORMAT_VERSION,
        "config": config.to_dict(),
        "config_hash": config.config_hash(),
        "shards": shards,
        "total_circuits": sum(int(s["num_circuits"]) for s in shards),
    }
    text = json.dumps(manifest, sort_keys=True, indent=2) + "\n"
    # atomic: a manifest either describes a complete build or doesn't exist
    atomic_write_text(out_dir / MANIFEST_NAME, text)
    return manifest


def default_workers() -> int:
    """Worker-count default: ``REPRO_WORKERS`` env var, else the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise SystemExit(
                f"bad REPRO_WORKERS {env!r}: expected an integer"
            )
    return max(1, multiprocessing.cpu_count())


def build_shards(
    config: PipelineConfig,
    out_dir: Union[str, Path],
    workers: int = 1,
    force: bool = False,
    verify_hashes: bool = True,
) -> BuildResult:
    """Build (or reuse) the sharded dataset for ``config`` in ``out_dir``.

    If the directory already holds a manifest with the same config hash and
    every shard file matches its recorded sha256, nothing is rebuilt and
    ``cache_hit`` is True.  Otherwise all shards are (re)generated —
    serially in-process for ``workers <= 1``, else on a
    ``multiprocessing.Pool`` — and a fresh manifest is written.  Output is
    byte-identical for any worker count.

    ``verify_hashes=False`` downgrades cache validation to an existence
    check — useful when a very large known-good dataset makes re-hashing
    every shard at startup too costly.
    """
    out_dir = Path(out_dir)
    start = time.perf_counter()
    if not force and manifest_is_current(
        out_dir, config, verify_hashes=verify_hashes
    ):
        manifest = load_manifest(out_dir)
        assert manifest is not None
        return BuildResult(
            manifest=manifest,
            out_dir=out_dir,
            cache_hit=True,
            elapsed=time.perf_counter() - start,
        )

    out_dir.mkdir(parents=True, exist_ok=True)
    # drop shards from a previous (now stale) build so the directory never
    # mixes generations
    stale = load_manifest(out_dir)
    if stale is not None:
        for shard in stale.get("shards", []):
            try:
                (out_dir / shard["filename"]).unlink(missing_ok=True)
            except OSError:
                pass

    specs = plan_shards(config)
    tasks = [
        (config.to_dict(), str(out_dir), s.suite, s.index, s.count)
        for s in specs
    ]
    if workers <= 1 or len(tasks) <= 1:
        metas = [_build_one(t) for t in tasks]
    else:
        with multiprocessing.Pool(processes=min(workers, len(tasks))) as pool:
            metas = pool.map(_build_one, tasks)
    # manifest order == plan order regardless of completion order
    order = {(s.suite, s.index): k for k, s in enumerate(specs)}
    metas.sort(key=lambda m: order[(m["suite"], m["shard_index"])])
    manifest = write_manifest(out_dir, config, metas)
    return BuildResult(
        manifest=manifest,
        out_dir=out_dir,
        cache_hit=False,
        elapsed=time.perf_counter() - start,
    )
