"""Benchmark-suite-like circuit pools (paper Table I).

The paper draws 10,824 sub-circuits from four suites.  Those suites are not
redistributable here, so each is emulated by a pool of generated circuits
with the same structural character:

* **EPFL**       arithmetic-heavy (adders, multipliers, voter) plus the
                 random-control family (arbiters, shifters) — few, larger
                 designs, node range [52, 341] after extraction;
* **ITC99**      control-dominated FSM next-state logic — many small random
                 control blocks, comparators and counters, [36, 1947];
* **IWLS**       a mix of routing, decode and small datapath, [41, 2268];
* **OpenCores**  datapath cores: CRC, ALUs, shifters, processors, [51, 3214].

``build_suite_dataset`` turns a pool into labelled :class:`CircuitGraph`
examples: synthesise to AIG, keep or cone-extract into the paper's 30-3k
node window, simulate for probability labels, annotate reconvergence.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

import numpy as np

from ..aig.netlist import Netlist
from ..graphdata.dataset import CircuitDataset
from ..graphdata.features import CircuitGraph, from_aig
from ..synth.pipeline import has_constant_outputs, strip_constant_outputs, synthesize
from . import generators as gen
from .extraction import extract_subcircuits

__all__ = [
    "SUITE_NAMES",
    "suite_pool",
    "generate_suite_graphs",
    "build_suite_dataset",
    "build_all_suites",
    "TABLE1_PAPER_ROWS",
]

SUITE_NAMES = ("EPFL", "ITC99", "IWLS", "OpenCores")

#: the published Table I rows: suite -> (#subcircuits, node range, level range)
TABLE1_PAPER_ROWS = {
    "EPFL": (828, (52, 341), (4, 17)),
    "ITC99": (7560, (36, 1947), (3, 23)),
    "IWLS": (1281, (41, 2268), (5, 24)),
    "OpenCores": (1155, (51, 3214), (4, 18)),
}


def _epfl_pool(rng: np.random.Generator) -> Iterator[Netlist]:
    while True:
        yield gen.ripple_adder(int(rng.integers(6, 20)))
        yield gen.carry_select_adder(int(rng.integers(8, 20)))
        yield gen.multiplier(int(rng.integers(3, 7)))
        yield gen.squarer(int(rng.integers(3, 7)))
        yield gen.majority_voter(int(rng.integers(4, 9)) * 2 + 1)
        yield gen.priority_arbiter(int(rng.integers(6, 20)))
        yield gen.barrel_shifter(int(rng.integers(2, 5)))
        yield gen.comparator(int(rng.integers(6, 20)))


def _itc99_pool(rng: np.random.Generator) -> Iterator[Netlist]:
    while True:
        for _ in range(4):  # control logic dominates, as in ITC'99
            yield gen.random_control(
                rng,
                num_inputs=int(rng.integers(6, 16)),
                num_gates=int(rng.integers(30, 220)),
                num_outputs=int(rng.integers(2, 8)),
            )
        yield gen.incrementer(int(rng.integers(6, 24)))
        yield gen.comparator(int(rng.integers(4, 12)))
        yield gen.decoder(int(rng.integers(2, 5)))
        yield gen.priority_arbiter(int(rng.integers(4, 12)))


def _iwls_pool(rng: np.random.Generator) -> Iterator[Netlist]:
    while True:
        yield gen.mux_tree(int(rng.integers(2, 5)))
        yield gen.alu(int(rng.integers(2, 6)))
        yield gen.parity(int(rng.integers(8, 32)))
        yield gen.gray_to_binary(int(rng.integers(6, 20)))
        yield gen.random_control(
            rng,
            num_inputs=int(rng.integers(6, 14)),
            num_gates=int(rng.integers(40, 300)),
            num_outputs=int(rng.integers(2, 6)),
        )
        yield gen.multiplier(int(rng.integers(3, 6)))
        yield gen.decoder(int(rng.integers(3, 5)))


def _opencores_pool(rng: np.random.Generator) -> Iterator[Netlist]:
    while True:
        yield gen.crc(int(rng.integers(4, 16)), crc_width=8)
        yield gen.alu(int(rng.integers(3, 8)))
        yield gen.barrel_shifter(int(rng.integers(2, 5)))
        yield gen.round_robin_arbiter(int(rng.integers(3, 6)))
        yield gen.processor_like(int(rng.integers(3, 8)), rng)
        yield gen.gray_to_binary(int(rng.integers(8, 24)))
        yield gen.crc(int(rng.integers(8, 24)), polynomial=0x31, crc_width=8)


_POOLS: Dict[str, Callable[[np.random.Generator], Iterator[Netlist]]] = {
    "EPFL": _epfl_pool,
    "ITC99": _itc99_pool,
    "IWLS": _iwls_pool,
    "OpenCores": _opencores_pool,
}


def suite_pool(name: str, rng: np.random.Generator) -> Iterator[Netlist]:
    """Endless iterator of netlists with the named suite's character."""
    if name not in _POOLS:
        raise ValueError(f"unknown suite {name!r}; choose from {SUITE_NAMES}")
    return _POOLS[name](rng)


def generate_suite_graphs(
    name: str,
    num_circuits: int,
    rng: np.random.Generator,
    num_patterns: int = 15_000,
    min_nodes: int = 30,
    max_nodes: int = 3000,
    max_levels: int = 80,
    with_skip_edges: bool = True,
) -> List[CircuitGraph]:
    """Generate ``num_circuits`` labelled graphs from one suite's pool.

    Netlists larger than ``max_nodes`` (gate-graph nodes) are cone-extracted
    into the window, exactly like the paper's sub-circuit flow; those inside
    the window are kept whole; tiny, too-deep or constant circuits are
    skipped (the paper's dataset tops out at 24 levels).

    All randomness — pool parameters, cone roots, label-simulation seeds —
    is drawn from ``rng``, so the result is a pure function of the suite
    name, the count, the generator state and the keyword knobs.  The
    sharded pipeline relies on this to produce identical shards no matter
    how work is distributed across processes.
    """
    pool = suite_pool(name, rng)
    graphs: List[CircuitGraph] = []
    while len(graphs) < num_circuits:
        netlist = next(pool)
        aig = synthesize(netlist)
        if has_constant_outputs(aig):
            try:
                aig = strip_constant_outputs(aig)
            except ValueError:
                continue
        if aig.num_ands == 0:
            continue
        graph_view = aig.to_gate_graph()
        if graph_view.depth() > max_levels:
            continue
        size = graph_view.num_nodes
        candidates: List = []
        if size > max_nodes:
            candidates = extract_subcircuits(
                aig,
                rng,
                count=min(3, num_circuits - len(graphs)),
                min_nodes=min_nodes,
                max_nodes=max_nodes,
            )
        elif size >= min_nodes:
            candidates = [aig]
        for cand in candidates:
            if len(graphs) >= num_circuits:
                break
            if cand is not aig and cand.to_gate_graph().depth() > max_levels:
                continue
            graphs.append(
                from_aig(
                    cand,
                    num_patterns=num_patterns,
                    seed=int(rng.integers(0, 2**31)),
                    with_skip_edges=with_skip_edges,
                )
            )
    return graphs


def build_suite_dataset(
    name: str,
    num_circuits: int,
    seed: int = 0,
    num_patterns: int = 15_000,
    min_nodes: int = 30,
    max_nodes: int = 3000,
    max_levels: int = 80,
    with_skip_edges: bool = True,
) -> CircuitDataset:
    """Materialise a labelled in-memory dataset for one suite.

    Thin wrapper over :func:`generate_suite_graphs` with a seed instead of a
    generator.  Large runs should prefer the sharded pipeline
    (:mod:`repro.datagen.pipeline`), which parallelises and caches this work.
    """
    rng = np.random.default_rng(seed)
    graphs = generate_suite_graphs(
        name,
        num_circuits,
        rng,
        num_patterns=num_patterns,
        min_nodes=min_nodes,
        max_nodes=max_nodes,
        max_levels=max_levels,
        with_skip_edges=with_skip_edges,
    )
    return CircuitDataset(graphs, name=name)


def build_all_suites(
    circuits_per_suite: Dict[str, int],
    seed: int = 0,
    num_patterns: int = 15_000,
    **kwargs,
) -> Dict[str, CircuitDataset]:
    """Build every requested suite; returns suite name -> dataset."""
    out: Dict[str, CircuitDataset] = {}
    for k, name in enumerate(SUITE_NAMES):
        if name not in circuits_per_suite:
            continue
        out[name] = build_suite_dataset(
            name,
            circuits_per_suite[name],
            seed=seed + 1000 * k,
            num_patterns=num_patterns,
            **kwargs,
        )
    return out
