"""Sub-circuit extraction (paper §III-B).

"If the original circuit is too large, we extract small sub-circuits with
circuit sizes ranging from 30 to 3k gates."  Extraction takes the transitive
fan-in cone of chosen root nodes, truncated to a node budget; variables cut
at the truncation boundary become new primary inputs.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

import numpy as np

from ..aig.graph import AIG, lit_is_negated, lit_negate, lit_var
from ..synth.pipeline import has_constant_outputs, synthesize

__all__ = ["extract_cone", "extract_subcircuits"]


def extract_cone(
    aig: AIG,
    roots: Sequence[int],
    max_nodes: Optional[int] = None,
    name: Optional[str] = None,
) -> AIG:
    """Cut out the fan-in cone of ``roots`` (AND variable indices).

    Expansion is highest-level-first, so when the ``max_nodes`` budget stops
    it, the kept region is the *top* of the cone and every dangling fan-in
    turns into a fresh primary input.  Original PIs reached by the cone stay
    inputs.  Output literals are the roots' positive literals.
    """
    levels = aig.levels()
    base = 1 + aig.num_pis
    in_cone = np.zeros(aig.num_vars, dtype=bool)
    # max-heap on level: expand deepest nodes first
    heap = [(-int(levels[v]), int(v)) for v in set(roots)]
    heapq.heapify(heap)
    for _, v in heap:
        if not aig.is_and_var(v):
            raise ValueError(f"root {v} is not an AND variable")
    budget = max_nodes if max_nodes is not None else aig.num_vars
    kept: List[int] = []
    while heap and len(kept) < budget:
        _, v = heapq.heappop(heap)
        if in_cone[v]:
            continue
        in_cone[v] = True
        kept.append(v)
        a, b = (int(x) for x in aig.ands[v - base])
        for lit in (a, b):
            u = lit_var(lit)
            if aig.is_and_var(u) and not in_cone[u]:
                heapq.heappush(heap, (-int(levels[u]), u))

    kept_set = sorted(kept)
    # boundary: fan-ins outside the kept set (PIs or truncated ANDs)
    boundary: List[int] = []
    seen = set()
    for v in kept_set:
        a, b = (int(x) for x in aig.ands[v - base])
        for lit in (a, b):
            u = lit_var(lit)
            if not in_cone[u] and u not in seen:
                seen.add(u)
                boundary.append(u)
    boundary.sort()
    pi_index = {u: i for i, u in enumerate(boundary)}

    from ..aig.graph import AIGBuilder

    builder = AIGBuilder(num_pis=len(boundary), name=name or f"{aig.name}_cone")
    lit_map = {}
    for u in boundary:
        lit_map[u] = builder.pi_lit(pi_index[u])
    for v in kept_set:
        a, b = (int(x) for x in aig.ands[v - base])

        def remap(lit: int) -> int:
            mapped = lit_map[lit_var(lit)]
            return lit_negate(mapped) if lit_is_negated(lit) else mapped

        lit_map[v] = builder.add_and(remap(a), remap(b))
    for r in sorted(set(roots)):
        builder.add_output(lit_map[r])
    return builder.build()


def extract_subcircuits(
    aig: AIG,
    rng: np.random.Generator,
    count: int,
    min_nodes: int = 30,
    max_nodes: int = 3000,
    max_attempts_factor: int = 8,
) -> List[AIG]:
    """Sample ``count`` sub-circuits whose *gate-graph* size is in range.

    Roots are drawn uniformly from AND variables, preferring deeper nodes
    (level-weighted) so cones are non-trivial.  Each cone is re-synthesised;
    cones that collapse to constants or fall outside the size window are
    rejected and re-drawn.
    """
    if aig.num_ands == 0:
        return []
    levels = aig.levels()
    base = 1 + aig.num_pis
    and_vars = np.arange(base, aig.num_vars)
    weights = (levels[base:] + 1).astype(np.float64)
    weights /= weights.sum()

    out: List[AIG] = []
    attempts = 0
    max_attempts = max(count * max_attempts_factor, 16)
    while len(out) < count and attempts < max_attempts:
        attempts += 1
        num_roots = int(rng.integers(1, 4))
        roots = rng.choice(and_vars, size=num_roots, replace=False, p=weights)
        # the AND budget is in AIG nodes; gate-graph adds NOT nodes, so
        # stay below the cap and verify after expansion
        cone = extract_cone(
            aig, [int(r) for r in roots], max_nodes=max_nodes // 2
        )
        cone = synthesize(cone, rounds=1)
        if has_constant_outputs(cone) or cone.num_ands == 0:
            continue
        size = cone.to_gate_graph().num_nodes
        if min_nodes <= size <= max_nodes:
            cone.name = f"{aig.name}_sub{len(out)}"
            out.append(cone)
    return out
