"""Benchmark circuit generation: families, suite pools, extraction."""

from . import generators
from .extraction import extract_cone, extract_subcircuits
from .suites import (
    SUITE_NAMES,
    TABLE1_PAPER_ROWS,
    build_all_suites,
    build_suite_dataset,
    suite_pool,
)

__all__ = [
    "generators",
    "extract_cone",
    "extract_subcircuits",
    "SUITE_NAMES",
    "TABLE1_PAPER_ROWS",
    "build_all_suites",
    "build_suite_dataset",
    "suite_pool",
]
