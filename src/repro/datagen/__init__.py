"""Benchmark circuit generation: families, suite pools, extraction."""

from . import generators
from .extraction import extract_cone, extract_subcircuits
from .pipeline import (
    BuildResult,
    PipelineConfig,
    build_shards,
    generate_shard,
    generate_suite,
    load_manifest,
    plan_shards,
)
from .suites import (
    SUITE_NAMES,
    TABLE1_PAPER_ROWS,
    build_all_suites,
    build_suite_dataset,
    generate_suite_graphs,
    suite_pool,
)

__all__ = [
    "generators",
    "extract_cone",
    "extract_subcircuits",
    "BuildResult",
    "PipelineConfig",
    "build_shards",
    "generate_shard",
    "generate_suite",
    "load_manifest",
    "plan_shards",
    "SUITE_NAMES",
    "TABLE1_PAPER_ROWS",
    "build_all_suites",
    "build_suite_dataset",
    "generate_suite_graphs",
    "suite_pool",
]
