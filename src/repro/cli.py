"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the library's workflow end to end::

    python -m repro generate ripple_adder --width 8 -o adder.bench
    python -m repro synth adder.bench -o adder.aag
    python -m repro stats adder.aag
    python -m repro sim adder.aag --patterns 100000
    python -m repro equiv adder.bench adder.aag
    python -m repro faults adder.aag --patterns 4096
    python -m repro dataset build --scale smoke --out data/smoke --workers 4
    python -m repro dataset info data/smoke
    python -m repro experiment list
    python -m repro experiment run table2 --scale smoke --workers 4
    python -m repro experiment report table2 --scale smoke --format markdown
    python -m repro experiment compare runs/table2/<hash-a> runs/table2/<hash-b>
    python -m repro experiment capture sat_oracle --scale smoke
    python -m repro experiment verify
    python -m repro experiment run table2 --scale smoke --dist --workers 4
    python -m repro worker experiment table2 --scale smoke

Circuit formats are chosen by suffix: ``.bench`` (ISCAS), ``.v``
(structural Verilog) and ``.aag`` (ASCII AIGER).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Union

import numpy as np

from .aig import AIG, Netlist, aiger, bench, verilog
from .datagen.generators import GENERATOR_CATALOG
from .sat import check_equivalence
from .sim import find_reconvergences, monte_carlo_probabilities
from .synth import has_constant_outputs, strip_constant_outputs, synthesize
from .testability import run_fault_simulation

__all__ = ["main", "build_parser"]

#: default port of `repro serve` / `repro query` (kept out of the
#: ephemeral range so a long-lived server doesn't collide with clients)
DEFAULT_PORT = 8351

Circuit = Union[Netlist, AIG]


def _read_circuit(path: str) -> Circuit:
    if path.endswith(".bench"):
        return bench.load(path)
    if path.endswith(".v"):
        return verilog.load(path)
    if path.endswith(".aag"):
        return aiger.load(path)
    raise SystemExit(f"unsupported circuit format: {path} (.bench/.v/.aag)")


def _write_circuit(circuit: Circuit, path: str) -> None:
    if path.endswith(".aag"):
        aig = circuit if isinstance(circuit, AIG) else synthesize(circuit)
        aiger.dump(aig, path)
    elif path.endswith(".bench"):
        if isinstance(circuit, AIG):
            raise SystemExit("writing AIGs as .bench is not supported; use .aag")
        bench.dump(circuit, path)
    elif path.endswith(".v"):
        if isinstance(circuit, AIG):
            raise SystemExit("writing AIGs as .v is not supported; use .aag")
        verilog.dump(circuit, path)
    else:
        raise SystemExit(f"unsupported output format: {path}")


def _as_aig(circuit: Circuit) -> AIG:
    return circuit if isinstance(circuit, AIG) else synthesize(circuit)


# ---------------------------------------------------------------------------
# subcommand implementations
# ---------------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    if args.family not in GENERATOR_CATALOG:
        raise SystemExit(
            f"unknown family {args.family!r}; choose from "
            f"{sorted(GENERATOR_CATALOG)}"
        )
    factory, defaults = GENERATOR_CATALOG[args.family]
    kwargs = dict(defaults)
    for override in args.param or []:
        key, _, value = override.partition("=")
        if not value:
            raise SystemExit(f"bad --param {override!r}; use key=value")
        kwargs[key] = int(value)
    netlist = factory(**kwargs)
    _write_circuit(netlist, args.output)
    print(f"wrote {netlist.num_gates()} gates to {args.output}")
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    circuit = _read_circuit(args.input)
    aig = synthesize(circuit, rounds=args.rounds)
    stats = aig.stats()
    print(
        f"synthesised: {stats['ands']} ANDs, depth {stats['depth']}, "
        f"{stats['pis']} PIs, {stats['outputs']} outputs"
    )
    if args.output:
        _write_circuit(aig, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    aig = _as_aig(_read_circuit(args.input))
    if has_constant_outputs(aig):
        aig = strip_constant_outputs(aig)
    graph = aig.to_gate_graph()
    counts = graph.type_counts()
    reconv = find_reconvergences(graph)
    print(f"name:        {aig.name}")
    print(f"PIs:         {aig.num_pis}")
    print(f"outputs:     {aig.num_outputs}")
    print(f"AND nodes:   {counts['AND']}")
    print(f"NOT nodes:   {counts['NOT']}")
    print(f"graph nodes: {graph.num_nodes}")
    print(f"levels:      {graph.depth()}")
    print(f"reconvergence nodes: {len(reconv)}")
    return 0


def cmd_sim(args: argparse.Namespace) -> int:
    aig = _as_aig(_read_circuit(args.input))
    probs = monte_carlo_probabilities(aig, args.patterns, seed=args.seed)
    order = np.argsort(np.minimum(probs, 1 - probs))
    print(f"signal probabilities over {args.patterns} random patterns")
    print("most skewed nodes (hardest to excite randomly):")
    shown = 0
    for var in order:
        if var == 0 or (1 <= var <= aig.num_pis):
            continue
        print(f"  var {int(var):6d}  p = {probs[var]:.5f}")
        shown += 1
        if shown >= args.top:
            break
    return 0


def cmd_equiv(args: argparse.Namespace) -> int:
    left = _as_aig(_read_circuit(args.left))
    right = _as_aig(_read_circuit(args.right))
    result = check_equivalence(left, right)
    if result.equivalent:
        print("EQUIVALENT")
        return 0
    pattern = "".join("1" if b else "0" for b in result.counterexample)
    print(f"DIFFERENT (counterexample inputs, PI0 first: {pattern})")
    return 1


def cmd_faults(args: argparse.Namespace) -> int:
    aig = _as_aig(_read_circuit(args.input))
    if has_constant_outputs(aig):
        aig = strip_constant_outputs(aig)
    graph = aig.to_gate_graph()
    report = run_fault_simulation(graph, num_patterns=args.patterns, seed=args.seed)
    print(f"faults:    {len(report.faults)}")
    print(f"patterns:  {report.num_patterns}")
    print(f"coverage:  {100 * report.coverage:.2f}%")
    undetected = report.undetected()
    if undetected:
        print(f"undetected ({len(undetected)} shown up to 10):")
        for fault in undetected[:10]:
            print(f"  {fault}")
    return 0


def _pipeline_config_from_args(args: argparse.Namespace):
    """The dataset ``PipelineConfig`` for build/worker CLI arguments.

    One constructor for ``dataset build`` and ``worker dataset`` so a
    standalone worker computes the exact config (hence config hash,
    shard plan and lease namespace) of the build it is joining.
    """
    from .datagen.pipeline import PipelineConfig
    from .experiments.common import get_scale

    try:
        if args.suite:
            suites = []
            for item in args.suite:
                name, _, count = item.partition("=")
                if not count:
                    raise SystemExit(f"bad --suite {item!r}; use NAME=COUNT")
                suites.append((name, int(count)))
            scale = get_scale(args.scale)
            config = PipelineConfig(
                suites=tuple(suites),
                seed=args.seed if args.seed is not None else scale.seed,
                num_patterns=args.patterns or scale.num_patterns,
                min_nodes=scale.min_nodes,
                max_nodes=scale.max_nodes,
                max_levels=scale.max_levels,
                shard_size=args.shard_size,
            )
        else:
            scale = get_scale(args.scale)
            config = PipelineConfig.from_scale(scale)
            overrides = {"shard_size": args.shard_size}
            if args.seed is not None:
                overrides["seed"] = args.seed
            if args.patterns:
                overrides["num_patterns"] = args.patterns
            config = dataclasses.replace(config, **overrides)
    except ValueError as exc:
        raise SystemExit(str(exc))
    return config


def _dist_config(args: argparse.Namespace):
    """A ``DistConfig`` from env knobs plus any explicit CLI overrides."""
    from .dist import DistConfig

    try:
        return DistConfig.from_env(
            lease_ttl=args.lease_ttl,
            heartbeat_interval=args.heartbeat_interval,
            max_attempts=args.max_attempts,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _dist_progress(event) -> None:
    """One live line per distributed work-item event on stderr."""
    detail = event.get("detail") or ""
    print(
        f"[dist] {event['status']}: {event['label']}"
        + (f" ({detail})" if detail else ""),
        file=sys.stderr,
        flush=True,
    )


def cmd_dataset_build(args: argparse.Namespace) -> int:
    from .datagen.pipeline import build_shards, default_workers, plan_shards

    config = _pipeline_config_from_args(args)
    workers = args.workers or default_workers()
    mode = "distributed workers" if args.dist else "workers"
    print(
        f"building {sum(c for _, c in config.suites)} circuits "
        f"({len(plan_shards(config))} shards, {workers} {mode}) "
        f"-> {args.out}"
    )
    if args.dist:
        from .dist import PoisonedWorkError, build_shards_distributed

        try:
            result = build_shards_distributed(
                config,
                args.out,
                workers=workers,
                cfg=_dist_config(args),
                force=args.force,
                progress=_dist_progress,
            )
        except PoisonedWorkError as exc:
            raise SystemExit(str(exc))
    else:
        result = build_shards(
            config, args.out, workers=workers, force=args.force
        )
    status = "cache hit" if result.cache_hit else "built"
    print(
        f"{status}: {result.total_circuits} circuits in "
        f"{len(result.manifest['shards'])} shards "
        f"({result.elapsed:.2f}s, config {config.config_hash()[:12]})"
    )
    return 0


def cmd_dataset_info(args: argparse.Namespace) -> int:
    from .graphdata.dataset import ShardedCircuitDataset

    try:
        ds = ShardedCircuitDataset(args.dir)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    manifest = ds.manifest
    print(f"dataset:     {args.dir}")
    print(f"config hash: {manifest['config_hash']}")
    print(f"circuits:    {len(ds)}")
    print(f"shards:      {ds.num_shards}")
    for suite, stats in ds.suite_summaries().items():
        lo_n, hi_n = stats["nodes"]
        lo_l, hi_l = stats["levels"]
        print(
            f"  {suite:10s} {stats['circuits']:5d} circuits  "
            f"nodes [{lo_n}-{hi_n}]  levels [{lo_l}-{hi_l}]"
        )
    return 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    from .bench import (
        HUGE_SUITE,
        all_suite_names,
        merge_bench,
        run_benchmarks,
        write_bench_file,
    )
    from .nn.backends import KernelBackendError, set_backend

    if args.backend:
        try:
            set_backend(args.backend)
        except KernelBackendError as exc:
            raise SystemExit(str(exc)) from exc
    known = all_suite_names() + [HUGE_SUITE]
    for suite in args.suite or []:
        if suite not in known:
            raise SystemExit(
                f"unknown bench suite {suite!r}; choose from {known}"
            )
    huge_kwargs = {
        "num_gates": args.huge_gates,
        "window_budget": args.window_budget,
        "full_check": args.full_check,
        "full_budget_mb": args.full_budget_mb,
    }
    if args.dump_outputs:
        dump_dir = Path(args.dump_outputs)
        dump_dir.mkdir(parents=True, exist_ok=True)
        huge_kwargs["dump_path"] = dump_dir / "huge.npz"
    payload = run_benchmarks(
        suites=args.suite,
        name=args.name,
        dim=args.dim,
        iterations=args.iterations,
        repeats=args.repeats,
        epochs=args.epochs,
        variant="reference" if args.reference else "compiled",
        huge=huge_kwargs,
    )
    out = args.output or f"BENCH_{args.name}.json"
    if args.merge and Path(out).exists():
        import json as _json

        previous = _json.loads(Path(out).read_text())
        payload = merge_bench(previous, payload)
    path = write_bench_file(payload, out)
    for suite, metrics in payload["suites"].items():
        print(
            f"{suite:18s} N={metrics['nodes']:6d} L={metrics['levels']:4d}  "
            f"fwd {metrics['forward_s']:.4f}s  bwd {metrics['backward_s']:.4f}s  "
            f"epoch {metrics['train_epoch_s']:.4f}s  "
            f"({metrics['nodes_per_s']:.0f} nodes/s)"
        )
        if suite == HUGE_SUITE:
            stats = metrics.get("window_stats", {})
            print(
                f"{'':18s} rss {metrics['peak_rss_kb']} KB "
                f"(delta {metrics['peak_rss_delta_kb']} KB)  "
                f"budget {metrics['window_budget']}  "
                f"windows {stats.get('windows', 0)}  "
                f"spills {stats.get('spills', 0)}"
            )
            probe = metrics.get("full_path_probe")
            if probe:
                print(
                    f"{'':18s} full-path probe: {probe['status']} "
                    f"under {probe['budget_mb']:.0f} MB "
                    f"(rss {probe.get('peak_rss_kb', '?')} KB) "
                    f"{probe.get('error', '')}".rstrip()
                )
    print(f"wrote {path} (variant: {payload['variant']})")
    if args.max_rss_kb:
        worst = max(
            (
                (int(m["peak_rss_kb"]), suite)
                for suite, m in payload["suites"].items()
                if "peak_rss_kb" in m
            ),
            default=None,
        )
        if worst and worst[0] > args.max_rss_kb:
            print(
                f"peak RSS {worst[0]} KB (suite {worst[1]}) exceeds "
                f"--max-rss-kb {args.max_rss_kb}",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    import json as _json

    from .bench import compare_bench, render_compare

    payloads = []
    for path in (args.old, args.new):
        try:
            payloads.append(_json.loads(Path(path).read_text()))
        except FileNotFoundError:
            raise SystemExit(f"no such bench file: {path}")
        except _json.JSONDecodeError as exc:
            raise SystemExit(f"malformed bench file {path}: {exc}")
    diff = compare_bench(*payloads)
    if args.format == "json":
        print(_json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(render_compare(diff))
    headline = diff.get("deep_train_speedup")
    if args.min_speedup and (headline is None or headline < args.min_speedup):
        print(
            f"deep-circuit training speedup "
            f"{'n/a' if headline is None else f'{headline:.2f}x'} "
            f"below required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.max_rss_regression:
        from .bench import max_rss_regression

        worst = max_rss_regression(diff)
        if worst is not None and worst["ratio"] > args.max_rss_regression:
            print(
                f"peak-RSS regression {worst['ratio']:.2f}x on suite "
                f"{worst['suite']} ({worst['old']:.0f} -> {worst['new']:.0f} "
                f"KB) exceeds --max-rss-regression "
                f"{args.max_rss_regression:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


def _experiment_spec(args: argparse.Namespace):
    """Build the spec for ``experiment run/report`` from CLI arguments."""
    from .runtime import get_experiment, spec_from_overrides

    try:
        exp = get_experiment(args.name)
    except KeyError as exc:
        raise SystemExit(exc.args[0])
    overrides = {"scale": args.scale}
    if args.seed is not None:
        overrides["seed"] = str(args.seed)
    if args.epochs is not None:
        overrides["epochs"] = str(args.epochs)
    for item in args.set or []:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"bad --set {item!r}; use key=value")
        overrides[key] = value
    try:
        spec = spec_from_overrides(exp.spec_type, overrides)
    except ValueError as exc:
        raise SystemExit(str(exc))
    return exp, spec


def _unit_progress(event) -> None:
    """One live line per unit on stderr as the grid executes."""
    tag = "cached" if event["status"] == "cached" else "done"
    print(
        f"[unit {event['index'] + 1}/{event['total']}] "
        f"{event['label']}: {tag} ({event['elapsed']:.2f}s)",
        file=sys.stderr,
        flush=True,
    )


def cmd_experiment_run(args: argparse.Namespace) -> int:
    from .runtime import default_workers, execute_parallel

    exp, spec = _experiment_spec(args)
    workers = args.workers if args.workers else default_workers()
    try:
        if args.dist:
            from .dist import PoisonedWorkError, execute_distributed

            try:
                record = execute_distributed(
                    args.name,
                    spec,
                    runs_dir=args.runs_dir,
                    workers=workers,
                    cfg=_dist_config(args),
                    force=args.force,
                    progress=None if args.quiet else _dist_progress,
                )
            except PoisonedWorkError as exc:
                raise SystemExit(str(exc))
        else:
            record = execute_parallel(
                args.name,
                spec,
                runs_dir=args.runs_dir,
                workers=workers,
                force=args.force,
                progress=None if args.quiet else _unit_progress,
            )
    except ValueError as exc:  # bad spec values surface at run time
        raise SystemExit(str(exc))
    status = "cache hit" if record.cache_hit else "ran"
    if args.format == "json":
        import json as _json

        print(_json.dumps(record.result, indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(record.markdown)
    else:
        print(record.report, end="")
    print(
        f"[{status}: {record.out_dir} "
        f"({record.elapsed:.2f}s, spec {record.spec_hash[:12]})]",
        file=sys.stderr,
    )
    return 0


def cmd_experiment_list(args: argparse.Namespace) -> int:
    import dataclasses as _dc

    from .runtime import default_runs_dir, list_experiments, list_runs

    runs_dir = args.runs_dir or default_runs_dir()
    cached = {}
    for manifest in list_runs(runs_dir):
        name = str(manifest.get("experiment"))
        cached[name] = cached.get(name, 0) + 1
    for exp in list_experiments():
        fields = ", ".join(
            f"{f.name}={f.default!r}"
            if f.default is not _dc.MISSING
            else f.name
            for f in _dc.fields(exp.spec_type)
        )
        runs = cached.get(exp.name, 0)
        suffix = f"  [{runs} cached run{'s' if runs != 1 else ''}]" if runs else ""
        print(f"{exp.name:10s} {exp.title}{suffix}")
        print(f"{'':10s} spec: {fields}")
    return 0


def cmd_experiment_compare(args: argparse.Namespace) -> int:
    from .runtime.compare import (
        apply_tolerances,
        compare_results,
        load_run_result,
        load_tolerances,
        render_markdown,
        render_text,
    )

    if args.fail_on_drift and not args.tolerances:
        raise SystemExit("--fail-on-drift requires --tolerances")
    try:
        run_a = load_run_result(args.run_a, runs_dir=args.runs_dir)
        run_b = load_run_result(args.run_b, runs_dir=args.runs_dir)
        tolerances = (
            load_tolerances(args.tolerances) if args.tolerances else None
        )
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    if run_a.experiment != run_b.experiment:
        print(
            f"note: comparing different experiments "
            f"({run_a.experiment} vs {run_b.experiment})",
            file=sys.stderr,
        )
    diff = compare_results(run_a, run_b)
    if tolerances is not None:
        diff = apply_tolerances(diff, tolerances)
    if args.format == "json":
        import json as _json

        print(_json.dumps(diff, indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(render_markdown(diff))
    else:
        print(render_text(diff))
    violations = diff.get("violations", [])
    if violations:
        print(
            f"{len(violations)} tolerance violation"
            f"{'s' if len(violations) != 1 else ''}",
            file=sys.stderr,
        )
        if args.fail_on_drift:
            return 1
    return 0


def cmd_experiment_capture(args: argparse.Namespace) -> int:
    from .runtime import default_workers, execute_parallel
    from .runtime.golden import (
        DEFAULT_ABS_FLOOR,
        DEFAULT_REL_TOLERANCE,
        capture_golden,
        write_golden,
    )

    exp, spec = _experiment_spec(args)
    overrides = {}
    for item in args.tolerance or []:
        key, sep, value = item.partition("=")
        if not sep:
            raise SystemExit(f"bad --tolerance {item!r}; use metric=limit")
        try:
            overrides[key] = float(value)
        except ValueError:
            raise SystemExit(f"bad --tolerance limit {value!r}")
    workers = args.workers if args.workers else default_workers()
    record = execute_parallel(
        args.name,
        spec,
        runs_dir=args.runs_dir,
        workers=workers,
        force=args.force,
        progress=None if args.quiet else _unit_progress,
    )
    rel = args.rel if args.rel is not None else DEFAULT_REL_TOLERANCE
    floor = args.floor if args.floor is not None else DEFAULT_ABS_FLOOR
    try:
        golden = capture_golden(
            record, rel=rel, floor=floor, overrides=overrides
        )
        path = write_golden(golden, goldens_dir=args.goldens_dir)
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(
        f"captured {len(golden.metrics)} metrics of {args.name} "
        f"(spec {golden.spec_hash[:12]}) into {path}"
    )
    return 0


def cmd_experiment_verify(args: argparse.Namespace) -> int:
    from .runtime.golden import (
        GoldenError,
        default_goldens_dir,
        list_golden_paths,
        load_golden,
        render_report_markdown,
        render_report_text,
        verify_golden,
    )
    from .runtime.parallel import default_workers

    root = Path(args.goldens_dir) if args.goldens_dir else default_goldens_dir()
    if args.fixtures:
        paths = []
        for ref in args.fixtures:
            p = Path(ref)
            if p.is_file():
                paths.append(p)
            elif (root / ref).is_dir():  # an experiment name
                paths.extend(sorted((root / ref).glob("*.json")))
            else:
                raise SystemExit(
                    f"no golden fixture file or experiment directory for "
                    f"{ref!r} under {root}"
                )
    else:
        paths = list_golden_paths(root)
    if not paths:
        print(f"no golden fixtures under {root}", file=sys.stderr)
        return 1

    workers = args.workers if args.workers else default_workers()
    failed = 0
    for path in paths:
        try:
            golden = load_golden(path)
            report = verify_golden(
                golden,
                runs_dir=args.runs_dir,
                workers=workers,
                force=args.force,
                progress=None if args.quiet else _unit_progress,
            )
        except (GoldenError, ValueError) as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            failed += 1
            continue
        if args.format == "json":
            import json as _json

            print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
        elif args.format == "markdown":
            print(render_report_markdown(report))
        else:
            print(render_report_text(report))
        if not report.passed:
            failed += 1
    total = len(paths)
    print(
        f"verified {total} fixture{'s' if total != 1 else ''}: "
        f"{total - failed} passed, {failed} failed",
        file=sys.stderr,
    )
    return 1 if failed else 0


def cmd_experiment_report(args: argparse.Namespace) -> int:
    from .runtime import load_record

    _, spec = _experiment_spec(args)
    record = load_record(args.name, spec, runs_dir=args.runs_dir)
    if record is None:
        print(
            f"no cached run for {args.name!r} with this spec; "
            f"run 'repro experiment run {args.name}' first",
            file=sys.stderr,
        )
        return 1
    if args.format == "json":
        import json as _json

        print(_json.dumps(record.result, indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(record.markdown)
    else:
        print(record.report, end="")
    return 0


def _run_worker_until_signalled(source, args: argparse.Namespace) -> int:
    """Drive one standalone worker loop with a SIGTERM/SIGINT drain."""
    import signal
    import threading

    from .dist import run_worker

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    report = run_worker(
        source,
        _dist_config(args),
        stop_event=stop,
        progress=None if args.quiet else _dist_progress,
    )
    drained = " (drained on signal)" if report.drained else ""
    print(
        f"worker {report.owner}: {len(report.completed)} completed, "
        f"{report.skipped_done} already done, {report.failed} failed, "
        f"{report.abandoned} abandoned, {len(report.poisoned)} "
        f"poisoned{drained}"
    )
    return 0


def cmd_worker_experiment(args: argparse.Namespace) -> int:
    from .dist import ExperimentWorkSource
    from .runtime.runner import default_runs_dir

    _, spec = _experiment_spec(args)
    root = Path(args.runs_dir) if args.runs_dir else default_runs_dir()
    try:
        source = ExperimentWorkSource(args.name, spec, root)
    except ValueError as exc:
        raise SystemExit(str(exc))
    return _run_worker_until_signalled(source, args)


def cmd_worker_dataset(args: argparse.Namespace) -> int:
    from .dist import DatasetWorkSource

    source = DatasetWorkSource(_pipeline_config_from_args(args), args.out)
    return _run_worker_until_signalled(source, args)


def _circuit_format(path: str) -> str:
    """Map a circuit file suffix onto a serve protocol format name."""
    if path.endswith(".bench"):
        return "bench"
    if path.endswith(".v"):
        return "verilog"
    if path.endswith(".aag"):
        return "aiger"
    raise SystemExit(f"unsupported circuit format: {path} (.bench/.v/.aag)")


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .serve import (
        CheckpointNotFound,
        ServeServer,
        describe,
        resolve_checkpoint,
        service_from_checkpoint,
    )

    if args.backend:
        from .nn.backends import KernelBackendError, set_backend

        try:
            set_backend(args.backend)
        except KernelBackendError as exc:
            raise SystemExit(str(exc)) from exc
    ref = args.checkpoint or args.run
    try:
        path = resolve_checkpoint(ref, runs_dir=args.runs_dir)
    except CheckpointNotFound as exc:
        raise SystemExit(str(exc)) from exc
    try:
        service = service_from_checkpoint(
            path,
            cache_size=args.cache_size,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            batch_mode=args.batch_mode,
        )
    except ValueError as exc:
        raise SystemExit(f"cannot serve {path}: {exc}") from exc
    server = ServeServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    print(f"loaded {path}")
    print(describe(server), flush=True)

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: stop.set())
    worker = threading.Thread(target=server.serve_forever, daemon=True)
    worker.start()
    try:
        stop.wait()
    finally:
        print("shutting down", flush=True)
        server.shutdown()
        worker.join(timeout=10)
        server.close()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    import json as _json

    from .serve import ServeClient, ServeClientError

    client = ServeClient(
        args.url, timeout=args.timeout, retries=args.retries
    )
    try:
        if args.stats:
            reply = client.stats()
            if args.format == "json":
                print(_json.dumps(reply.to_payload(), indent=2, sort_keys=True))
            else:
                print(
                    f"{reply.model}: {reply.requests} requests "
                    f"({reply.errors} errors) over {reply.uptime_s:.1f}s\n"
                    f"cache: {reply.cache_hits} hits / {reply.cache_misses} "
                    f"misses, {reply.cache_entries}/{reply.cache_capacity} "
                    f"entries, {reply.cache_evictions} evictions\n"
                    f"batcher[{reply.batch_mode}]: {reply.batches} cycles, "
                    f"{reply.batched_requests} jobs, largest "
                    f"{reply.max_batch_observed} "
                    f"(max {reply.max_batch_size}, "
                    f"wait {reply.max_wait_ms}ms)"
                )
            return 0
        if not args.circuit:
            raise SystemExit("give a circuit file, or --stats")
        fmt = args.fmt or _circuit_format(args.circuit)
        text = Path(args.circuit).read_text()
        reply = client.query(text, fmt=fmt, num_iterations=args.iterations)
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(_json.dumps(reply.to_payload(), indent=2, sort_keys=True))
        return 0
    print(
        f"{args.circuit}: {reply.num_nodes} nodes ({reply.num_pis} PIs, "
        f"{reply.num_ands} ANDs) hash {reply.structural_hash[:16]}"
    )
    print(
        f"model {reply.model}  cache_hit={reply.cache_hit}  "
        f"coalesced={reply.coalesced}  {reply.elapsed_ms:.1f}ms"
    )
    preds = reply.predictions
    shown = preds if args.top <= 0 else preds[: args.top]
    for i, p in enumerate(shown):
        print(f"  node {i:>5}  p={p:.6f}")
    if len(shown) < len(preds):
        print(f"  ... {len(preds) - len(shown)} more (use --top 0 for all)")
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DeepGate reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="emit a benchmark-family circuit")
    p.add_argument("family", help=f"one of {sorted(GENERATOR_CATALOG)}")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--param", action="append", help="override, e.g. width=16")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("synth", help="synthesise a circuit into an AIG")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.add_argument("--rounds", type=int, default=2)
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser("stats", help="structural statistics incl. reconvergence")
    p.add_argument("input")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("sim", help="Monte-Carlo signal probabilities")
    p.add_argument("input")
    p.add_argument("--patterns", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_sim)

    p = sub.add_parser("equiv", help="SAT equivalence check of two circuits")
    p.add_argument("left")
    p.add_argument("right")
    p.set_defaults(func=cmd_equiv)

    p = sub.add_parser("faults", help="stuck-at fault simulation report")
    p.add_argument("input")
    p.add_argument("--patterns", type=int, default=4096)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "dataset", help="build and inspect sharded on-disk datasets"
    )
    dataset_sub = p.add_subparsers(dest="dataset_command", required=True)

    def _add_dataset_config_args(q: argparse.ArgumentParser) -> None:
        q.add_argument("--out", required=True, help="dataset directory")
        q.add_argument(
            "--scale", default="smoke", choices=["smoke", "default", "paper"],
            help="base config (circuit counts, pattern budget, size window)",
        )
        q.add_argument(
            "--suite", action="append", metavar="NAME=COUNT",
            help="override suite counts, e.g. --suite EPFL=100 --suite ITC99=50",
        )
        q.add_argument("--seed", type=int, default=None)
        q.add_argument("--patterns", type=int, default=0,
                       help="simulation patterns per circuit")
        q.add_argument("--shard-size", type=int, default=8,
                       help="circuits per shard file")

    def _add_dist_args(q: argparse.ArgumentParser) -> None:
        q.add_argument(
            "--lease-ttl", type=float, default=None,
            help="seconds without a heartbeat before a lease is "
                 "reclaimable (default: REPRO_LEASE_TTL or 15)",
        )
        q.add_argument(
            "--heartbeat-interval", type=float, default=None,
            help="seconds between lease renewals "
                 "(default: REPRO_HEARTBEAT_INTERVAL or 2)",
        )
        q.add_argument(
            "--max-attempts", type=int, default=None,
            help="claims before a failing item is quarantined "
                 "(default: REPRO_MAX_ATTEMPTS or 3)",
        )

    p = dataset_sub.add_parser(
        "build", help="build (or reuse) a sharded labelled dataset"
    )
    _add_dataset_config_args(p)
    p.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0 = REPRO_WORKERS env var or CPU count)",
    )
    p.add_argument("--force", action="store_true",
                   help="rebuild even on a cache hit")
    p.add_argument(
        "--dist", action="store_true",
        help="build on the fault-tolerant lease-based worker fleet "
             "(extra `repro worker dataset` processes may join)",
    )
    _add_dist_args(p)
    p.set_defaults(func=cmd_dataset_build)

    p = dataset_sub.add_parser("info", help="summarise a dataset directory")
    p.add_argument("dir")
    p.set_defaults(func=cmd_dataset_info)

    p = sub.add_parser(
        "bench", help="propagation micro-benchmarks (BENCH_*.json)"
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    q = bench_sub.add_parser(
        "run", help="time forward/backward/training over circuit suites"
    )
    q.add_argument(
        "--suite", action="append",
        help="suite to run (small/deep/wide/default_<aggregator>; "
             "repeatable; default all)",
    )
    q.add_argument("--name", default="bench",
                   help="benchmark name (default output BENCH_<name>.json)")
    q.add_argument("-o", "--output", default=None,
                   help="output path (default BENCH_<name>.json)")
    q.add_argument("--dim", type=int, default=64)
    q.add_argument("--iterations", type=int, default=4,
                   help="propagation rounds per forward pass")
    q.add_argument("--repeats", type=int, default=3,
                   help="timed repeats per metric (best-of reported)")
    q.add_argument("--epochs", type=int, default=2,
                   help="training epochs timed (best-of reported)")
    q.add_argument(
        "--merge", action="store_true",
        help="if the output file exists, pool with it (per-metric best "
             "of both runs) instead of overwriting — interleave repeated "
             "runs on a noisy machine to converge on the quiet floor",
    )
    q.add_argument("--reference", action="store_true",
                   help="run the uncompiled reference propagation path")
    q.add_argument(
        "--backend", default=None,
        help="kernel GEMM backend (numpy/threaded; default: "
             "REPRO_KERNEL_BACKEND or numpy)",
    )
    q.add_argument(
        "--huge-gates", type=int, default=100_000,
        help="gate count for the opt-in 'huge' suite (--suite huge)",
    )
    q.add_argument(
        "--window-budget", type=int, default=8192,
        help="written-nodes-per-window budget for the 'huge' suite's "
             "streaming propagation",
    )
    q.add_argument(
        "--full-check", action="store_true",
        help="'huge' suite: also probe the non-windowed path in a "
             "subprocess under a --full-budget-mb address-space cap",
    )
    q.add_argument(
        "--full-budget-mb", type=float, default=512.0,
        help="memory allowance for the --full-check probe (MB)",
    )
    q.add_argument(
        "--dump-outputs", default=None, metavar="DIR",
        help="'huge' suite: write untrained forward predictions to "
             "DIR/huge.npz as a deterministic npz (byte-comparable "
             "across window budgets)",
    )
    q.add_argument(
        "--max-rss-kb", type=int, default=0,
        help="exit non-zero if any suite's peak RSS exceeds this many "
             "KB (0 disables the gate)",
    )
    q.set_defaults(func=cmd_bench_run)

    q = bench_sub.add_parser(
        "compare", help="diff two BENCH_*.json files (speedup = old/new)"
    )
    q.add_argument("old")
    q.add_argument("new")
    q.add_argument("--format", default="text", choices=["text", "json"])
    q.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero if deep-circuit training speedup falls below "
             "this factor (0 disables the gate)",
    )
    q.add_argument(
        "--max-rss-regression", type=float, default=0.0,
        help="exit non-zero if any suite's peak_rss_delta_kb grew by "
             "more than this factor (new/old, old floored at 1024 KB; "
             "0 disables the gate)",
    )
    q.set_defaults(func=cmd_bench_compare)

    p = sub.add_parser(
        "experiment",
        help="run, list and report registered paper experiments",
    )
    exp_sub = p.add_subparsers(dest="experiment_command", required=True)

    def _add_spec_args(q: argparse.ArgumentParser) -> None:
        q.add_argument("name", help="registered experiment name")
        q.add_argument(
            "--scale", default="smoke", choices=["smoke", "default", "paper"]
        )
        q.add_argument("--seed", type=int, default=None,
                       help="override the scale's dataset/training seed")
        q.add_argument("--epochs", type=int, default=None,
                       help="override the scale's epoch count")
        q.add_argument(
            "--set", action="append", metavar="KEY=VALUE",
            help="override any spec field, e.g. --set models=deepgate/attention/sc",
        )
        q.add_argument(
            "--runs-dir", default=None,
            help="runs root (default: REPRO_RUNS_DIR or ./runs)",
        )
        q.add_argument(
            "--format", default="text", choices=["text", "markdown", "json"],
            help="how to print the result",
        )

    q = exp_sub.add_parser(
        "run", help="run an experiment (cache hit if already run)"
    )
    _add_spec_args(q)
    q.add_argument("--force", action="store_true",
                   help="re-run even on a cache hit (drops unit caches too)")
    q.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for unit-decomposed experiments "
             "(0 = REPRO_WORKERS env var or CPU count; default 1)",
    )
    q.add_argument("--quiet", action="store_true",
                   help="suppress per-unit progress lines")
    q.add_argument(
        "--dist", action="store_true",
        help="run on the fault-tolerant lease-based worker fleet "
             "(extra `repro worker experiment` processes may join)",
    )
    _add_dist_args(q)
    q.set_defaults(func=cmd_experiment_run)

    q = exp_sub.add_parser("list", help="list registered experiments")
    q.add_argument("--runs-dir", default=None)
    q.set_defaults(func=cmd_experiment_list)

    q = exp_sub.add_parser(
        "compare",
        help="diff the result metrics of two cached runs",
    )
    q.add_argument("run_a", help="run directory (or <experiment>/<hash> "
                                 "under --runs-dir)")
    q.add_argument("run_b", help="run directory to compare against run_a")
    q.add_argument(
        "--runs-dir", default=None,
        help="runs root for <experiment>/<hash> references "
             "(default: REPRO_RUNS_DIR or ./runs)",
    )
    q.add_argument(
        "--format", default="text", choices=["text", "markdown", "json"],
        help="how to print the diff",
    )
    q.add_argument(
        "--tolerances", default=None, metavar="FILE",
        help="JSON tolerance table (metric or 'row:metric' -> absolute "
             "drift limit); annotates every matched metric with a status",
    )
    q.add_argument(
        "--fail-on-drift", action="store_true",
        help="exit non-zero when any toleranced metric drifts beyond its "
             "limit (requires --tolerances)",
    )
    q.set_defaults(func=cmd_experiment_compare)

    q = exp_sub.add_parser(
        "report", help="print a cached run's report without re-running"
    )
    _add_spec_args(q)
    q.set_defaults(func=cmd_experiment_report)

    q = exp_sub.add_parser(
        "capture",
        help="run an experiment and freeze its metrics into a golden fixture",
    )
    _add_spec_args(q)
    q.add_argument("--force", action="store_true",
                   help="re-run even on a cache hit before capturing")
    q.add_argument("--workers", type=int, default=1,
                   help="worker processes (0 = REPRO_WORKERS or CPU count)")
    q.add_argument("--quiet", action="store_true",
                   help="suppress per-unit progress lines")
    q.add_argument(
        "--goldens-dir", default=None,
        help="goldens root (default: REPRO_GOLDENS_DIR or ./goldens)",
    )
    q.add_argument(
        "--rel", type=float, default=None,
        help="relative tolerance for derived per-metric limits",
    )
    q.add_argument(
        "--floor", type=float, default=None,
        help="absolute tolerance floor for derived per-metric limits",
    )
    q.add_argument(
        "--tolerance", action="append", metavar="METRIC=LIMIT",
        help="explicit absolute limit for one metric "
             "(or 'row:metric'); overrides the derived default",
    )
    q.set_defaults(func=cmd_experiment_capture)

    q = exp_sub.add_parser(
        "verify",
        help="re-run golden fixtures at fixture scale and fail on drift",
    )
    q.add_argument(
        "fixtures", nargs="*",
        help="fixture files or experiment names (default: every fixture "
             "under the goldens root)",
    )
    q.add_argument(
        "--goldens-dir", default=None,
        help="goldens root (default: REPRO_GOLDENS_DIR or ./goldens)",
    )
    q.add_argument(
        "--runs-dir", default=None,
        help="runs root (default: REPRO_RUNS_DIR or ./runs)",
    )
    q.add_argument("--workers", type=int, default=1,
                   help="worker processes (0 = REPRO_WORKERS or CPU count)")
    q.add_argument("--force", action="store_true",
                   help="ignore the run cache and re-execute")
    q.add_argument("--quiet", action="store_true",
                   help="suppress per-unit progress lines")
    q.add_argument(
        "--format", default="text", choices=["text", "markdown", "json"],
        help="how to print each verification report",
    )
    q.set_defaults(func=cmd_experiment_verify)

    p = sub.add_parser(
        "serve",
        help="persistent inference server over a trained checkpoint",
    )
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--checkpoint", default=None,
        help="checkpoint file (save_model_checkpoint .npz) or run directory",
    )
    group.add_argument(
        "--run", default=None,
        help="experiment name; serves its newest run's checkpoint artifact",
    )
    p.add_argument(
        "--runs-dir", default=None,
        help="runs root for --run (default: REPRO_RUNS_DIR or ./runs)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--cache-size", type=int, default=128,
                   help="compiled circuits held in the strash-keyed LRU")
    p.add_argument("--max-batch-size", type=int, default=16,
                   help="requests coalesced into one micro-batch cycle")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="coalescing window after the first queued request")
    p.add_argument(
        "--max-queue", type=int, default=128,
        help="jobs in flight before requests are shed with 503 + "
             "Retry-After",
    )
    p.add_argument(
        "--batch-mode", default="exact", choices=["exact", "merged"],
        help="exact: one pass per unique circuit (bitwise-reproducible); "
             "merged: fuse distinct circuits into one pass (~1 ulp)",
    )
    p.add_argument(
        "--backend", default=None,
        help="kernel GEMM backend (numpy/threaded; default: "
             "REPRO_KERNEL_BACKEND or numpy)",
    )
    p.add_argument("--verbose", action="store_true",
                   help="log one line per request (http.server access log)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "query", help="query a running `repro serve` instance"
    )
    p.add_argument("circuit", nargs="?", default=None,
                   help="circuit file (.bench/.v/.aag)")
    p.add_argument(
        "--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help="server base URL",
    )
    p.add_argument(
        "--fmt", default=None, choices=["aiger", "bench", "verilog"],
        help="circuit format (default: from the file suffix)",
    )
    p.add_argument("--iterations", type=int, default=None,
                   help="override the recurrent model's iteration count")
    p.add_argument("--stats", action="store_true",
                   help="print server statistics instead of querying")
    p.add_argument("--format", default="text", choices=["text", "json"])
    p.add_argument("--top", type=int, default=10,
                   help="predictions shown in text mode (0 = all)")
    p.add_argument("--timeout", type=float, default=60.0)
    p.add_argument(
        "--retries", type=int, default=0,
        help="retry 503/transport failures this many times with "
             "exponential backoff (honours Retry-After)",
    )
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "worker",
        help="join an in-flight --dist run as an extra lease-based worker",
    )
    worker_sub = p.add_subparsers(dest="worker_command", required=True)

    q = worker_sub.add_parser(
        "experiment",
        help="work experiment units (same spec args as `experiment run`)",
    )
    _add_spec_args(q)
    q.add_argument("--quiet", action="store_true",
                   help="suppress per-item progress lines")
    _add_dist_args(q)
    q.set_defaults(func=cmd_worker_experiment)

    q = worker_sub.add_parser(
        "dataset",
        help="work dataset shards (same config args as `dataset build`)",
    )
    _add_dataset_config_args(q)
    q.add_argument("--quiet", action="store_true",
                   help="suppress per-item progress lines")
    _add_dist_args(q)
    q.set_defaults(func=cmd_worker_dataset)

    return parser


def _rewrite_legacy_experiment_argv(argv):
    """Map the pre-registry ``repro experiment <name> --scale S`` form.

    Deprecated but kept working: a bare experiment name after
    ``experiment`` becomes ``experiment run <name>``.
    """
    args = list(argv)
    # only when 'experiment' is the subcommand itself — an operand named
    # 'experiment' elsewhere (e.g. a circuit file) must not be rewritten
    if not args or args[0] != "experiment":
        return args
    rest = args[1:]
    if rest and rest[0] not in ("run", "list", "report", "compare",
                                "capture", "verify", "-h", "--help"):
        if rest[0].startswith("-"):
            # option-first legacy form ('experiment --scale smoke table1')
            note = (
                "note: 'repro experiment' without a subcommand is "
                "deprecated; use 'repro experiment run ...'"
            )
        else:
            note = (
                f"note: 'repro experiment {rest[0]}' is deprecated; "
                f"use 'repro experiment run {rest[0]}'"
            )
        print(note, file=sys.stderr)
        args.insert(1, "run")
    return args


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(_rewrite_legacy_experiment_argv(argv))
    try:
        return args.func(args)
    except BrokenPipeError:
        # reports piped into `head` etc.; suppress the traceback and let
        # the pipe close quietly
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.close(1)
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
