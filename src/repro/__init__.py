"""DeepGate (DAC 2022) reproduction.

Learning neural representations of logic gates: circuits are lowered to
And-Inverter Graphs, labelled with logic-simulated signal probabilities, and
a dedicated recurrent DAG-GNN with attention aggregation and reconvergence
skip connections learns to predict those probabilities per gate.

Public API tour
---------------
>>> from repro import datagen, synth, sim
>>> netlist = datagen.generators.ripple_adder(8)
>>> aig = synth.synthesize(netlist)
>>> graph = aig.to_gate_graph()
>>> probs = sim.gate_graph_probabilities(graph, num_patterns=10_000, seed=0)

See :mod:`repro.models` for the DeepGate model and baselines, and
:mod:`repro.experiments` for the paper's tables and figures.
"""

from . import (
    aig,
    datagen,
    experiments,
    graphdata,
    models,
    nn,
    sat,
    sim,
    synth,
    testability,
    train,
)

__version__ = "1.0.0"

__all__ = [
    "aig",
    "datagen",
    "experiments",
    "graphdata",
    "models",
    "nn",
    "sat",
    "sim",
    "synth",
    "testability",
    "train",
    "__version__",
]
