"""Small shared utilities (atomic file and directory publication).

Everything that persists cache state in this repo — dataset shards,
run/unit directories, checkpoints, lease files — goes through one of the
helpers here, so the invariant "readers see the old state or the
complete new state, never a torn one" is implemented exactly once.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
from pathlib import Path
from typing import Iterator, Union

__all__ = [
    "atomic_output",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_replace_dir",
]


@contextlib.contextmanager
def atomic_output(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a writer-unique temp path; rename it onto ``path`` on success.

    The temp file lives next to the target (same filesystem, so
    ``os.replace`` is atomic) and is removed on any failure, leaving the
    previous contents of ``path`` untouched.  Use this for binary
    formats (``np.savez`` archives, zip files); text goes through
    :func:`atomic_write_text`.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` via a temp file + rename.

    Readers only ever see the old contents or the complete new contents;
    a failure mid-write cleans up the temp file and leaves ``path``
    untouched.  This is the one canonical copy of the idiom the dataset
    pipeline and the experiment runner both rely on.
    """
    with atomic_output(path) as tmp:
        tmp.write_text(text)


def atomic_write_json(path: Union[str, Path], data: object) -> None:
    """Canonical JSON (sorted keys, 2-space indent, trailing newline),
    written atomically — the layout every manifest in the repo uses."""
    atomic_write_text(path, json.dumps(data, sort_keys=True, indent=2) + "\n")


def atomic_replace_dir(
    tmp_dir: Union[str, Path], final_dir: Union[str, Path]
) -> None:
    """Atomically publish a fully-built directory at ``final_dir``.

    ``os.replace`` of a directory only succeeds when the target is
    absent or an empty directory, so a stale target (e.g. a torn partial
    write left by a crashed legacy writer) is cleared first.  If another
    process publishes the same directory concurrently the second replace
    retries once — committers in this repo write byte-identical content
    for a given key, so whichever publication survives is correct.
    """
    tmp_dir, final_dir = Path(tmp_dir), Path(final_dir)
    for attempt in (0, 1):
        try:
            os.replace(tmp_dir, final_dir)
            return
        except OSError:
            if attempt:
                raise
            shutil.rmtree(final_dir, ignore_errors=True)
