"""Small shared utilities (atomic file writes)."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text"]


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` via a temp file + rename.

    Readers only ever see the old contents or the complete new contents;
    a failure mid-write cleans up the temp file and leaves ``path``
    untouched.  This is the one canonical copy of the idiom the dataset
    pipeline and the experiment runner both rely on.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
