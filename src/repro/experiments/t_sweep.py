"""Figure (§IV-D.2) — impact of the number of recurrence iterations T.

The paper trains DeepGate with T=10 and sweeps inference-time T from 1 to
50, observing that prediction error drops with T and converges around
T = 10 regardless of circuit size.  This harness trains once and evaluates
the same trained model at every requested T, producing the error-vs-T
series (the "figure" as data rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..models.deepgate import DeepGate
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from ..train.trainer import TrainConfig, Trainer, evaluate_model
from .common import (
    Scale,
    deprecated_main,
    format_rows,
    get_scale,
    merged_dataset,
    resolve_scale,
)

__all__ = [
    "TSweepPoint",
    "TSweepSpec",
    "run",
    "format_table",
    "main",
    "DEFAULT_T_VALUES",
]

DEFAULT_T_VALUES = (1, 2, 3, 5, 8, 10, 15, 20, 30, 50)


@dataclass
class TSweepPoint:
    num_iterations: int
    error: float


# one trained model per (scale, T_train) per process: the serial unit
# path trains once and sweeps every T from the memo (same cost as the
# old train-once runner); a worker process retraining for its own sweep
# point reproduces bitwise the same model because training is fully
# seeded (model init, shuffle, updates)
_TRAINED_CACHE: dict = {}


def _trained_model_and_batches(cfg: Scale, train_iterations: Optional[int]):
    """The swept model plus its held-out eval batches (memoised)."""
    key = (cfg, train_iterations)
    if key not in _TRAINED_CACHE:
        _TRAINED_CACHE[key] = _train_for_sweep(cfg, train_iterations)
    return _TRAINED_CACHE[key]


def _train_for_sweep(cfg: Scale, train_iterations: Optional[int]):
    dataset = merged_dataset(cfg)
    train, test = dataset.split(0.9, seed=cfg.seed)
    model = DeepGate(
        dim=cfg.dim,
        num_iterations=train_iterations or max(cfg.num_iterations, 8),
        rng=np.random.default_rng(cfg.seed),
    )
    Trainer(
        model,
        TrainConfig(
            epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr, seed=cfg.seed
        ),
    ).fit(train)
    return model, test.prepared_batches(cfg.batch_size)


def run(
    scale: Union[str, Scale] = "default",
    t_values: Optional[Sequence[int]] = None,
    train_iterations: Optional[int] = None,
) -> List[TSweepPoint]:
    """Train once (at ``train_iterations``, default 8+) and sweep inference T.

    The paper trains at T=10; sweeping a model trained with very small T
    diverges beyond the trained horizon, so the sweep trains with at least
    8 iterations regardless of the scale's default.
    """
    cfg = get_scale(scale)
    model, batches = _trained_model_and_batches(cfg, train_iterations)
    values = list(t_values) if t_values is not None else list(DEFAULT_T_VALUES)
    return [
        TSweepPoint(t, evaluate_model(model, batches, num_iterations=t))
        for t in values
    ]


def convergence_iteration(
    points: List[TSweepPoint], tolerance: float = 0.002
) -> int:
    """Smallest T whose error is within ``tolerance`` of the best error."""
    best = min(p.error for p in points)
    for p in sorted(points, key=lambda q: q.num_iterations):
        if p.error <= best + tolerance:
            return p.num_iterations
    return points[-1].num_iterations  # pragma: no cover - unreachable


def format_table(points: List[TSweepPoint]) -> str:
    body = [[p.num_iterations, p.error] for p in points]
    table = format_rows(
        ["T", "Avg. Pred. Error"],
        body,
        title="Figure (T-sweep): prediction error vs recurrence iterations",
    )
    conv = convergence_iteration(points)
    return table + f"\nconverges by T = {conv} (paper: around T = 10)"


@dataclass(frozen=True)
class TSweepSpec(ExperimentSpec):
    """Inference-time T sweep of one trained model."""

    t_values: Tuple[int, ...] = DEFAULT_T_VALUES
    train_iterations: Optional[int] = None


def _units(spec: TSweepSpec) -> List[UnitSpec]:
    """One unit per sweep point T."""
    return [
        UnitSpec(key=f"T={t}", params=(("t", int(t)),)) for t in spec.t_values
    ]


def _run_unit(spec: TSweepSpec, unit: UnitSpec) -> dict:
    """Evaluate the (deterministically retrained) model at one T."""
    cfg = resolve_scale(spec)
    model, batches = _trained_model_and_batches(cfg, spec.train_iterations)
    t = int(unit.params_dict()["t"])
    return {"T": t, "error": evaluate_model(model, batches, num_iterations=t)}


@experiment(
    "tsweep",
    spec=TSweepSpec,
    title="Figure (T-sweep): prediction error vs recurrence iterations",
    description="Train once, evaluate at every requested iteration count T.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(spec: TSweepSpec, unit_results: List[dict]) -> ExperimentResult:
    points = [TSweepPoint(r["T"], r["error"]) for r in unit_results]
    return ExperimentResult(
        experiment="tsweep",
        rows=[
            {"T": p.num_iterations, "error": p.error} for p in points
        ],
        table=format_table(points),
        meta={"convergence_T": convergence_iteration(points)},
    )


def main(argv=None) -> None:
    """Deprecated shim; use ``python -m repro experiment run tsweep``."""
    deprecated_main("tsweep", argv)


if __name__ == "__main__":
    main()
