"""Table I — statistics of the circuit training dataset.

Reproduces the paper's dataset-construction flow (suite pools -> AIG ->
sub-circuit window -> labels) and reports, per suite: number of
sub-circuits, node-count range and logic-level range, next to the published
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from ..datagen.suites import SUITE_NAMES, TABLE1_PAPER_ROWS
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from .common import (
    Scale,
    cached_suites,
    deprecated_main,
    format_rows,
    get_scale,
    resolve_scale,
)

__all__ = ["Table1Row", "Table1Spec", "run", "format_table", "main"]


@dataclass
class Table1Row:
    suite: str
    subcircuits: int
    node_range: Tuple[int, int]
    level_range: Tuple[int, int]
    paper_subcircuits: int
    paper_node_range: Tuple[int, int]
    paper_level_range: Tuple[int, int]


def run(scale: Union[str, Scale] = "default") -> List[Table1Row]:
    """Build every suite at the given scale and collect its statistics."""
    cfg = get_scale(scale)
    suites = cached_suites(cfg)
    rows: List[Table1Row] = []
    for name in SUITE_NAMES:
        if name not in suites:
            continue
        ds = suites[name]
        paper_n, paper_nodes, paper_levels = TABLE1_PAPER_ROWS[name]
        rows.append(
            Table1Row(
                suite=name,
                subcircuits=len(ds),
                node_range=ds.node_count_range(),
                level_range=ds.level_range(),
                paper_subcircuits=paper_n,
                paper_node_range=paper_nodes,
                paper_level_range=paper_levels,
            )
        )
    return rows


def format_table(rows: List[Table1Row]) -> str:
    total = sum(r.subcircuits for r in rows)
    lo_n = min(r.node_range[0] for r in rows)
    hi_n = max(r.node_range[1] for r in rows)
    lo_l = min(r.level_range[0] for r in rows)
    hi_l = max(r.level_range[1] for r in rows)
    body = [
        [
            r.suite,
            r.subcircuits,
            f"[{r.node_range[0]}-{r.node_range[1]}]",
            f"[{r.level_range[0]}-{r.level_range[1]}]",
            r.paper_subcircuits,
            f"[{r.paper_node_range[0]}-{r.paper_node_range[1]}]",
            f"[{r.paper_level_range[0]}-{r.paper_level_range[1]}]",
        ]
        for r in rows
    ]
    body.append(
        ["Total", total, f"[{lo_n}-{hi_n}]", f"[{lo_l}-{hi_l}]", 10824,
         "[36-3214]", "[3-24]"]
    )
    return format_rows(
        ["Benchmark", "#Subcircuits", "#Node", "#Level",
         "paper#Sub", "paper#Node", "paper#Level"],
        body,
        title="Table I: circuit training dataset statistics (ours vs paper)",
    )


@dataclass(frozen=True)
class Table1Spec(ExperimentSpec):
    """Dataset statistics need no knobs beyond the base spec."""


def _units(spec: Table1Spec) -> List[UnitSpec]:
    """One unit per benchmark suite at this scale, in table order."""
    counts = resolve_scale(spec).suite_counts()
    return [UnitSpec(key=name) for name in SUITE_NAMES if name in counts]


def _run_unit(spec: Table1Spec, unit: UnitSpec) -> dict:
    """Stats of one suite (the suite pool is built once and shared)."""
    cfg = resolve_scale(spec)
    ds = cached_suites(cfg)[unit.key]
    paper_n, paper_nodes, paper_levels = TABLE1_PAPER_ROWS[unit.key]
    return {
        "suite": unit.key,
        "subcircuits": len(ds),
        "node_range": list(ds.node_count_range()),
        "level_range": list(ds.level_range()),
        "paper_subcircuits": paper_n,
        "paper_node_range": list(paper_nodes),
        "paper_level_range": list(paper_levels),
    }


@experiment(
    "table1",
    spec=Table1Spec,
    title="Table I: circuit training dataset statistics",
    description="Per-suite sub-circuit counts, node and level ranges.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(spec: Table1Spec, unit_results: List[dict]) -> ExperimentResult:
    rows = [
        Table1Row(
            suite=r["suite"],
            subcircuits=r["subcircuits"],
            node_range=tuple(r["node_range"]),
            level_range=tuple(r["level_range"]),
            paper_subcircuits=r["paper_subcircuits"],
            paper_node_range=tuple(r["paper_node_range"]),
            paper_level_range=tuple(r["paper_level_range"]),
        )
        for r in unit_results
    ]
    return ExperimentResult(
        experiment="table1",
        rows=[
            {
                "suite": r.suite,
                "subcircuits": r.subcircuits,
                "nodes": f"{r.node_range[0]}-{r.node_range[1]}",
                "levels": f"{r.level_range[0]}-{r.level_range[1]}",
                "paper_subcircuits": r.paper_subcircuits,
                "paper_nodes": f"{r.paper_node_range[0]}-{r.paper_node_range[1]}",
                "paper_levels": f"{r.paper_level_range[0]}-{r.paper_level_range[1]}",
            }
            for r in rows
        ],
        table=format_table(rows),
    )


def main(argv=None) -> None:
    """Deprecated shim; use ``python -m repro experiment run table1``."""
    deprecated_main("table1", argv)


if __name__ == "__main__":
    main()
