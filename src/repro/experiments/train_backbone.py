"""Train the DeepGate probability backbone and publish its checkpoint.

Unlike the table experiments — which train models as a *means* to a
metrics table — this experiment's product is the trained model itself:
the run directory gains a ``checkpoint.npz`` artifact (written with
:func:`repro.nn.serialization.save_model_checkpoint`, so it embeds the
model architecture) and the run manifest records it under
``checkpoint`` together with the ``model_config``.  That makes trained
models first-class, cacheable run artifacts that ``repro serve --run
train_backbone`` resolves without a hand-given path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..models.deepgate import DeepGate
from ..runtime.registry import ExperimentResult, ExperimentSpec, experiment
from ..train.trainer import TrainConfig, Trainer, evaluate_model
from .common import format_rows, merged_dataset, resolve_scale

__all__ = ["TrainBackboneSpec", "run"]


@dataclass(frozen=True)
class TrainBackboneSpec(ExperimentSpec):
    """Backbone training knobs beyond the scale's defaults.

    ``eval_fraction`` is the held-out share used for the reported
    prediction error; ``aggregator`` picks the neighbourhood aggregator.
    """

    eval_fraction: float = 0.1
    aggregator: str = "attention"


def run(spec: TrainBackboneSpec) -> ExperimentResult:
    cfg = resolve_scale(spec)
    train, test = merged_dataset(cfg).split(
        1.0 - spec.eval_fraction, seed=cfg.seed
    )
    model = DeepGate(
        dim=cfg.dim,
        num_iterations=cfg.num_iterations,
        aggregator=spec.aggregator,
        rng=np.random.default_rng(cfg.seed),
    )
    trainer = Trainer(
        model,
        TrainConfig(
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            lr=cfg.lr,
            seed=cfg.seed,
        ),
    )
    history = trainer.fit(train)
    eval_error = evaluate_model(model, test.prepared_batches(cfg.batch_size))
    num_params = sum(int(np.prod(p.data.shape)) for p in model.parameters())

    config = model.config()
    row: Dict[str, object] = {
        "model": "DeepGate",
        "dim": cfg.dim,
        "T": cfg.num_iterations,
        "epochs": cfg.epochs,
        "train_circuits": len(train),
        "eval_circuits": len(test),
        "params": num_params,
        "final_train_loss": history.final_train_loss,
        "eval_error": eval_error,
    }
    result = ExperimentResult(
        experiment="train_backbone",
        rows=[row],
        table=format_rows(
            list(row.keys()),
            [list(row.values())],
            title="Trained probability backbone",
        ),
        meta={
            "model_config": config,
            "train_loss": history.train_loss,
        },
    )

    checkpoint_meta = {
        "experiment": "train_backbone",
        "scale": cfg.name,
        "seed": cfg.seed,
        "epochs": cfg.epochs,
        "eval_error": eval_error,
    }

    def write_checkpoint(path) -> None:
        from ..nn.serialization import save_model_checkpoint

        save_model_checkpoint(model, path, meta=checkpoint_meta)

    result.extra_artifacts = {"checkpoint.npz": write_checkpoint}
    result.manifest_extra = {
        "checkpoint": "checkpoint.npz",
        "model_config": config,
    }
    return result


@experiment(
    "train_backbone",
    spec=TrainBackboneSpec,
    title="Trained probability backbone (servable checkpoint)",
    description=(
        "Train DeepGate on the merged all-suite pool and publish the "
        "checkpoint as a run artifact that `repro serve --run` resolves."
    ),
)
def _run(spec: TrainBackboneSpec) -> ExperimentResult:
    return run(spec)


def main(argv: Optional[list] = None) -> None:
    """Deprecated shim; use ``python -m repro experiment run train_backbone``."""
    from .common import deprecated_main

    deprecated_main("train_backbone", argv)


if __name__ == "__main__":
    main()
