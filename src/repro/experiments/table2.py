"""Table II — DeepGate versus baseline GNNs for probability prediction.

Trains all 13 configurations of the paper's grid (GCN and DAG-ConvGNN with
four aggregators each, DAG-RecGNN with three, DeepGate with and without
skip connections) on the merged suite dataset with a 90/10 split, and
reports the average prediction error of each next to the published value.

Expected shape (the reproduction target): GCN and DAG-ConvGNN errors are
several times larger than any recurrent model; DeepGate beats DAG-RecGNN;
skip connections improve DeepGate further.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..models.registry import (
    ModelConfig,
    build_model,
    config_from_code,
    table2_configs,
)
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from ..train.trainer import TrainConfig, Trainer
from .common import (
    Scale,
    deprecated_main,
    format_rows,
    get_scale,
    merged_dataset,
    resolve_scale,
)

__all__ = [
    "Table2Row",
    "Table2Spec",
    "PAPER_ERRORS",
    "run",
    "format_table",
    "main",
]

#: published Avg. Prediction Error for every grid row
PAPER_ERRORS: Dict[str, float] = {
    "GCN / Conv. Sum": 0.1386,
    "GCN / Attention": 0.1840,
    "GCN / DeepSet": 0.2541,
    "GCN / GatedSum": 0.1995,
    "DAG-ConvGNN / Conv. Sum": 0.2215,
    "DAG-ConvGNN / Attention": 0.2398,
    "DAG-ConvGNN / DeepSet": 0.2431,
    "DAG-ConvGNN / GatedSum": 0.2333,
    "DAG-RecGNN / Conv. Sum": 0.0328,
    "DAG-RecGNN / DeepSet": 0.0302,
    "DAG-RecGNN / GatedSum": 0.0329,
    "DeepGate / Attention w/o SC": 0.0234,
    "DeepGate / Attention w/ SC": 0.0204,
}


@dataclass
class Table2Row:
    config: ModelConfig
    error: float
    paper_error: float

    @property
    def label(self) -> str:
        return self.config.label


def run(
    scale: Union[str, Scale] = "default",
    configs: Optional[List[ModelConfig]] = None,
    train_fraction: float = 0.9,
) -> List[Table2Row]:
    """Train every configuration and evaluate on the held-out split."""
    cfg = get_scale(scale)
    dataset = merged_dataset(cfg)
    train, test = dataset.split(train_fraction, seed=cfg.seed)
    rows: List[Table2Row] = []
    for config in configs or table2_configs():
        model = build_model(
            config,
            dim=cfg.dim,
            num_iterations=cfg.num_iterations,
            num_layers=cfg.num_layers,
            seed=cfg.seed,
        )
        trainer = Trainer(
            model,
            TrainConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                lr=cfg.lr,
                seed=cfg.seed,
            ),
        )
        trainer.fit(train)
        error = trainer.evaluate(test)
        rows.append(
            Table2Row(config, error, PAPER_ERRORS.get(config.label, float("nan")))
        )
    return rows


def format_table(rows: List[Table2Row]) -> str:
    body = [[r.label, r.error, r.paper_error] for r in rows]
    return format_rows(
        ["Model / Aggregator", "Avg. Pred. Error (ours)", "paper"],
        body,
        title="Table II: model comparison for logic probability prediction",
    )


@dataclass(frozen=True)
class Table2Spec(ExperimentSpec):
    """Model-comparison grid; ``models`` narrows it to named configs.

    Model codes are ``kind/aggregator[/sc]`` (see
    :func:`repro.models.registry.config_from_code`); an empty tuple means
    the full 13-row grid.
    """

    train_fraction: float = 0.9
    models: Tuple[str, ...] = ()

    def model_configs(self) -> Optional[List[ModelConfig]]:
        if not self.models:
            return None
        return [config_from_code(code) for code in self.models]


def _units(spec: Table2Spec) -> List[UnitSpec]:
    """One unit per grid row (model configuration), in paper order."""
    configs = spec.model_configs() or table2_configs()
    return [UnitSpec(key=c.code, title=c.label) for c in configs]


def _run_unit(spec: Table2Spec, unit: UnitSpec) -> dict:
    """Train and evaluate a single model configuration."""
    row = run(
        resolve_scale(spec),
        configs=[config_from_code(unit.key)],
        train_fraction=spec.train_fraction,
    )[0]
    return {
        "model": row.label,
        "code": row.config.code,
        "error": row.error,
        "paper_error": row.paper_error,
    }


@experiment(
    "table2",
    spec=Table2Spec,
    title="Table II: model comparison for logic probability prediction",
    description="Train the model grid and report held-out prediction error.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(spec: Table2Spec, unit_results: List[dict]) -> ExperimentResult:
    rows = [
        Table2Row(
            config=config_from_code(r["code"]),
            error=r["error"],
            paper_error=r["paper_error"],
        )
        for r in unit_results
    ]
    return ExperimentResult(
        experiment="table2",
        rows=list(unit_results),
        table=format_table(rows),
    )


def main(argv=None) -> None:
    """Deprecated shim; use ``python -m repro experiment run table2``."""
    deprecated_main("table2", argv)


if __name__ == "__main__":
    main()
