"""Table II — DeepGate versus baseline GNNs for probability prediction.

Trains all 13 configurations of the paper's grid (GCN and DAG-ConvGNN with
four aggregators each, DAG-RecGNN with three, DeepGate with and without
skip connections) on the merged suite dataset with a 90/10 split, and
reports the average prediction error of each next to the published value.

Expected shape (the reproduction target): GCN and DAG-ConvGNN errors are
several times larger than any recurrent model; DeepGate beats DAG-RecGNN;
skip connections improve DeepGate further.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..models.registry import ModelConfig, build_model, table2_configs
from ..train.trainer import TrainConfig, Trainer
from .common import format_rows, get_scale, merged_dataset

__all__ = ["Table2Row", "PAPER_ERRORS", "run", "format_table", "main"]

#: published Avg. Prediction Error for every grid row
PAPER_ERRORS: Dict[str, float] = {
    "GCN / Conv. Sum": 0.1386,
    "GCN / Attention": 0.1840,
    "GCN / DeepSet": 0.2541,
    "GCN / GatedSum": 0.1995,
    "DAG-ConvGNN / Conv. Sum": 0.2215,
    "DAG-ConvGNN / Attention": 0.2398,
    "DAG-ConvGNN / DeepSet": 0.2431,
    "DAG-ConvGNN / GatedSum": 0.2333,
    "DAG-RecGNN / Conv. Sum": 0.0328,
    "DAG-RecGNN / DeepSet": 0.0302,
    "DAG-RecGNN / GatedSum": 0.0329,
    "DeepGate / Attention w/o SC": 0.0234,
    "DeepGate / Attention w/ SC": 0.0204,
}


@dataclass
class Table2Row:
    config: ModelConfig
    error: float
    paper_error: float

    @property
    def label(self) -> str:
        return self.config.label


def run(
    scale: str = "default",
    configs: Optional[List[ModelConfig]] = None,
    train_fraction: float = 0.9,
) -> List[Table2Row]:
    """Train every configuration and evaluate on the held-out split."""
    cfg = get_scale(scale)
    dataset = merged_dataset(cfg)
    train, test = dataset.split(train_fraction, seed=cfg.seed)
    rows: List[Table2Row] = []
    for config in configs or table2_configs():
        model = build_model(
            config,
            dim=cfg.dim,
            num_iterations=cfg.num_iterations,
            num_layers=cfg.num_layers,
            seed=cfg.seed,
        )
        trainer = Trainer(
            model,
            TrainConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                lr=cfg.lr,
                seed=cfg.seed,
            ),
        )
        trainer.fit(train)
        error = trainer.evaluate(test)
        rows.append(
            Table2Row(config, error, PAPER_ERRORS.get(config.label, float("nan")))
        )
    return rows


def format_table(rows: List[Table2Row]) -> str:
    body = [[r.label, r.error, r.paper_error] for r in rows]
    return format_rows(
        ["Model / Aggregator", "Avg. Pred. Error (ours)", "paper"],
        body,
        title="Table II: model comparison for logic probability prediction",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="default", choices=["smoke", "default", "paper"])
    args = parser.parse_args()
    print(format_table(run(args.scale)))


if __name__ == "__main__":
    main()
