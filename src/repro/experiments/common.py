"""Shared experiment infrastructure: scales, dataset caching, formatting.

Every experiment runs at a named *scale*:

``smoke``    seconds; used by the pytest benchmarks so the whole harness
             regenerates every table in one CI run
``default``  minutes on a laptop CPU; big enough for the paper's relative
             orderings to emerge
``paper``    the paper's hyper-parameters (10,824 circuits, d=64, T=10,
             60 epochs, 100k simulation patterns) — hours to days on CPU;
             provided for completeness

Numbers will not match the paper exactly (different circuits, from-scratch
substrate, smaller budgets) — the *shape* of each table (who wins, by what
rough factor) is the reproduction target.  EXPERIMENTS.md records both.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..datagen.pipeline import (
    PipelineConfig,
    build_shards,
    default_workers,
    generate_suite,
)
from ..graphdata.dataset import CircuitDataset, ShardedCircuitDataset

__all__ = [
    "Scale",
    "SCALES",
    "get_scale",
    "resolve_scale",
    "cached_suites",
    "merged_dataset",
    "format_rows",
    "design_netlist",
    "design_aig",
    "as_gate_graph",
    "safe_corrcoef",
    "spearman",
    "stable_hash",
    "design_seed",
    "pretrained_backbone",
]


@dataclass(frozen=True)
class Scale:
    """All knobs that trade fidelity for runtime."""

    name: str
    circuits_per_suite: Tuple[Tuple[str, int], ...]
    num_patterns: int
    dim: int
    num_iterations: int  # T for recurrent models
    num_layers: int  # L for layered baselines
    epochs: int
    batch_size: int
    lr: float
    min_nodes: int = 30
    max_nodes: int = 3000
    max_levels: int = 80
    seed: int = 0

    def suite_counts(self) -> Dict[str, int]:
        return dict(self.circuits_per_suite)


SCALES: Dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        circuits_per_suite=(("EPFL", 3), ("ITC99", 4), ("IWLS", 3), ("OpenCores", 3)),
        num_patterns=4096,
        dim=24,
        num_iterations=4,
        num_layers=2,
        epochs=24,
        batch_size=4,
        lr=2e-3,
        max_nodes=400,
        max_levels=50,
    ),
    "default": Scale(
        name="default",
        circuits_per_suite=(
            ("EPFL", 10),
            ("ITC99", 14),
            ("IWLS", 10),
            ("OpenCores", 10),
        ),
        num_patterns=15_000,
        dim=32,
        num_iterations=5,
        num_layers=3,
        epochs=40,
        batch_size=8,
        lr=1e-3,
        max_nodes=1200,
        max_levels=70,
    ),
    "paper": Scale(
        name="paper",
        circuits_per_suite=(
            ("EPFL", 828),
            ("ITC99", 7560),
            ("IWLS", 1281),
            ("OpenCores", 1155),
        ),
        num_patterns=100_000,
        dim=64,
        num_iterations=10,
        num_layers=4,
        epochs=60,
        batch_size=32,
        lr=1e-4,
    ),
}


def get_scale(scale: Union[str, Scale]) -> Scale:
    """Look a scale up by name; a :class:`Scale` passes through unchanged
    (so experiment ``run`` functions accept either)."""
    if isinstance(scale, Scale):
        return scale
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    return SCALES[scale]


def resolve_scale(spec) -> Scale:
    """The :class:`Scale` for an experiment spec, with overrides applied.

    ``spec`` is any :class:`repro.runtime.ExperimentSpec`: its ``seed`` and
    ``epochs`` fields, when not ``None``, replace the scale's values.
    """
    cfg = get_scale(spec.scale)
    overrides = {}
    if spec.seed is not None:
        overrides["seed"] = spec.seed
    if spec.epochs is not None:
        overrides["epochs"] = spec.epochs
    return replace(cfg, **overrides) if overrides else cfg


# one dataset build per (scale, seed, data_dir) per process: experiments
# share it; the resolved data_dir is part of the key so an explicit
# data_dir is never shadowed by an earlier in-memory build
_SUITE_CACHE: Dict[
    Tuple[str, int, Optional[str]], Dict[str, CircuitDataset]
] = {}


def cached_suites(
    scale: Scale,
    data_dir: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
) -> Dict[str, CircuitDataset]:
    """Build (or fetch) the per-suite datasets for a scale.

    All experiment data now flows through the sharded pipeline
    (:mod:`repro.datagen.pipeline`), so the circuits are identical to what
    ``python -m repro dataset build --scale <name>`` writes to disk.  When
    ``data_dir`` (or the ``REPRO_DATA_DIR`` environment variable) is set,
    shards are built there — in parallel, once — and reused across
    processes; otherwise generation happens serially in-process, memoised
    per ``(scale, seed)``.
    """
    data_dir = data_dir or os.environ.get("REPRO_DATA_DIR")
    key = (scale.name, scale.seed, str(data_dir) if data_dir else None)
    if key not in _SUITE_CACHE:
        config = PipelineConfig.from_scale(scale)
        if data_dir:
            out_dir = Path(data_dir) / f"{scale.name}-seed{scale.seed}"
            result = build_shards(
                config, out_dir, workers=workers or default_workers()
            )
            suites = ShardedCircuitDataset(result.out_dir).by_suite()
        else:
            suites = {
                name: CircuitDataset(generate_suite(config, name), name=name)
                for name, _ in config.suites
            }
        _SUITE_CACHE[key] = suites
    return _SUITE_CACHE[key]


def merged_dataset(scale: Scale) -> CircuitDataset:
    """All suites merged into one dataset (the paper's training pool)."""
    suites = cached_suites(scale)
    graphs = [g for name in sorted(suites) for g in suites[name]]
    return CircuitDataset(graphs, name=f"all[{scale.name}]")


def format_rows(
    headers: List[str], rows: List[List[object]], title: str = ""
) -> str:
    """Plain-text table formatting for experiment reports."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


# ---------------------------------------------------------------------------
# downstream-workload helpers (shared by the example-derived experiments)
# ---------------------------------------------------------------------------


def design_netlist(design: str):
    """Build a catalog design from a ``"name"`` or ``"name:param"`` string.

    The single integer after the colon overrides the generator's (only)
    default parameter — ``"priority_arbiter:12"`` is a 12-request
    arbiter.  Keeping designs as strings keeps experiment specs JSON-able
    and hashable.
    """
    from ..datagen.generators import GENERATOR_CATALOG

    name, _, raw = design.partition(":")
    if name not in GENERATOR_CATALOG:
        raise ValueError(
            f"unknown design {name!r}; choose from {sorted(GENERATOR_CATALOG)}"
        )
    factory, defaults = GENERATOR_CATALOG[name]
    params = dict(defaults)
    if raw:
        (key,) = params.keys()
        params[key] = int(raw)
    return factory(**params)


def design_aig(design: str, optimize: bool = True):
    """A catalog design as a constant-free AIG (optionally synthesised)."""
    from ..synth.pipeline import (
        has_constant_outputs,
        strip_constant_outputs,
        synthesize,
    )
    from ..synth.transform import netlist_to_aig

    netlist = design_netlist(design)
    aig = synthesize(netlist) if optimize else netlist_to_aig(netlist)
    if has_constant_outputs(aig):
        aig = strip_constant_outputs(aig)
    return aig


def as_gate_graph(circuit_graph):
    """Rebuild the :class:`GateGraph` view the testability oracles need.

    A featurised :class:`CircuitGraph` drops the output list, so nodes
    with no fanout act as the observable outputs.
    """
    from ..aig.graph import GateGraph

    has_fanout = np.zeros(circuit_graph.num_nodes, dtype=bool)
    if circuit_graph.num_edges:
        has_fanout[circuit_graph.edges[:, 0]] = True
    return GateGraph(
        node_type=circuit_graph.node_type.astype(np.int8),
        edges=circuit_graph.edges,
        outputs=np.nonzero(~has_fanout)[0],
        name=circuit_graph.name,
    )


def safe_corrcoef(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation that degrades to 0.0 instead of NaN.

    ``np.corrcoef`` returns NaN when either array is (near-)constant —
    parity circuits have every signal probability at exactly 0.5 — and a
    NaN would poison JSON artifacts and golden comparisons.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.std() < 1e-12 or b.std() < 1e-12:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (Pearson over argsort ranks)."""
    ra = np.argsort(np.argsort(a)).astype(np.float64)
    rb = np.argsort(np.argsort(b)).astype(np.float64)
    return safe_corrcoef(ra, rb)


def stable_hash(text: str) -> int:
    """FNV-1a string hash: process-independent, unlike ``hash()``.

    Seeds derived from design names must not depend on
    ``PYTHONHASHSEED``, or worker processes would label circuits
    differently than the serial path.
    """
    h = 2166136261
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * 16777619) % (2**32)
    return h


def design_seed(cfg: Scale, design: str, salt: int = 0) -> int:
    """Simulation seed derived from (scale seed, design name, salt)."""
    return (cfg.seed * 1009 + stable_hash(design) + salt) % (2**31)


# one pre-trained probability backbone per resolved scale per process:
# serial unit execution trains it once and every unit shares it; worker
# processes retrain their own copy, which is bitwise identical because
# dataset generation, model init and training are all seeded from the
# scale (the same scheme table4's pre-trained arm uses)
_BACKBONE_CACHE: Dict[Scale, object] = {}


def pretrained_backbone(cfg: Scale):
    """DeepGate pre-trained on the merged all-suite pool (memoised)."""
    if cfg not in _BACKBONE_CACHE:
        from ..models.deepgate import DeepGate
        from ..train.trainer import TrainConfig, Trainer

        train, _ = merged_dataset(cfg).split(0.9, seed=cfg.seed)
        model = DeepGate(
            dim=cfg.dim,
            num_iterations=cfg.num_iterations,
            rng=np.random.default_rng(cfg.seed),
        )
        Trainer(
            model,
            TrainConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                lr=cfg.lr,
                seed=cfg.seed,
            ),
        ).fit(train)
        _BACKBONE_CACHE[cfg] = model
    return _BACKBONE_CACHE[cfg]


def deprecated_main(name: str, argv=None) -> None:
    """Shared body of the legacy per-module ``main()`` entry points.

    The old ``python -m repro.experiments.<module> --scale S`` commands
    now forward to the registry-driven CLI (``repro experiment run``), so
    they gain run caching/artifacts for free and there is exactly one
    execution path.
    """
    import argparse
    import warnings

    warnings.warn(
        f"python -m repro.experiments.{name} is deprecated; use "
        f"python -m repro experiment run {name}",
        DeprecationWarning,
        stacklevel=2,
    )
    parser = argparse.ArgumentParser(
        description=f"[deprecated] run the {name} experiment"
    )
    parser.add_argument("--scale", default="default", choices=sorted(SCALES))
    args = parser.parse_args(argv)

    from ..cli import main as cli_main

    cli_main(["experiment", "run", name, "--scale", args.scale])
