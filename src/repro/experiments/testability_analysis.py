"""Testability screening with a learned probability oracle.

The paper argues per-gate signal probability "plays an essential role in
many EDA tasks"; random-pattern testability is the classic one.  A
stuck-at fault at a node is hard to detect by random patterns when the
node's signal probability is extreme (near 0 or 1).  This experiment —
promoted from ``examples/testability_analysis.py`` — uses a pre-trained
DeepGate as a fast probability oracle to rank hard-to-test nodes in
unseen designs and checks the ranking against ground-truth simulation.

One unit per target design; each reports the oracle's probability error
and how well its hard-to-test ranking matches the simulated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..graphdata.dataset import prepare
from ..graphdata.features import from_aig
from ..nn.tensor import no_grad
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from .common import (
    Scale,
    design_aig,
    design_seed,
    format_rows,
    pretrained_backbone,
    resolve_scale,
    safe_corrcoef,
)

__all__ = [
    "TestabilitySpec",
    "hard_to_test_score",
    "run_design",
    "format_table",
]

#: control-heavy designs whose masked/gated signals skew away from 0.5 —
#: the regime where a probability oracle adds ranking signal
DEFAULT_DESIGNS: Tuple[str, ...] = (
    "priority_arbiter:12",
    "alu:4",
    "mux_tree:3",
)

TOP_K = 10


def hard_to_test_score(probs: np.ndarray) -> np.ndarray:
    """0.5 - min(p, 1-p): high when a node is hard to excite randomly."""
    return 0.5 - np.minimum(probs, 1.0 - probs)


@dataclass(frozen=True)
class TestabilitySpec(ExperimentSpec):
    """Probability-oracle testability screen over ``designs``."""

    designs: Tuple[str, ...] = DEFAULT_DESIGNS


def run_design(design: str, cfg: Scale) -> dict:
    """Screen one unseen design with the shared pre-trained oracle."""
    model = pretrained_backbone(cfg)
    aig = design_aig(design)
    graph = from_aig(
        aig, num_patterns=cfg.num_patterns, seed=design_seed(cfg, design)
    )
    batch = prepare([graph])
    with no_grad():
        predicted = model(batch).numpy()

    true_score = hard_to_test_score(graph.labels)
    pred_score = hard_to_test_score(predicted)
    k = min(TOP_K, graph.num_nodes)
    true_top = set(np.argsort(true_score)[-k:].tolist())
    pred_top = set(np.argsort(pred_score)[-k:].tolist())
    return {
        "design": design,
        "nodes": int(graph.num_nodes),
        "prob_mae": float(np.abs(predicted - graph.labels).mean()),
        "topk_overlap": len(true_top & pred_top),
        "topk": k,
        "score_corr": safe_corrcoef(true_score, pred_score),
    }


def format_table(rows: List[dict]) -> str:
    body = [
        [
            r["design"],
            r["nodes"],
            r["prob_mae"],
            f"{r['topk_overlap']}/{r['topk']}",
            r["score_corr"],
        ]
        for r in rows
    ]
    return format_rows(
        ["design", "nodes", "prob MAE", "top-k overlap", "score corr"],
        body,
        title="Testability screening: DeepGate as probability oracle",
    )


def _units(spec: TestabilitySpec) -> List[UnitSpec]:
    """One unit per screened design, in spec order."""
    return [UnitSpec(key=design) for design in spec.designs]


def _run_unit(spec: TestabilitySpec, unit: UnitSpec) -> dict:
    return run_design(unit.key, resolve_scale(spec))


@experiment(
    "testability_analysis",
    spec=TestabilitySpec,
    title="Testability screening with a learned probability oracle",
    description="Rank hard-to-test nodes by predicted signal probability "
    "and score the ranking against ground-truth simulation.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(
    spec: TestabilitySpec, unit_results: List[dict]
) -> ExperimentResult:
    return ExperimentResult(
        experiment="testability_analysis",
        rows=list(unit_results),
        table=format_table(unit_results),
    )
