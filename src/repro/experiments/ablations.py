"""Ablations of DeepGate's design choices (beyond the paper's tables).

DESIGN.md calls out four load-bearing choices; each gets a controlled
comparison:

* **reverse layer** — forward-only vs forward+reverse propagation (§III-C
  motivates reverse layers with logic implication);
* **fixed x_v input** — gate-type one-hot fed into every GRU update vs the
  previous-DAG-GNN convention of using it only as the initial state;
* **attention on reconvergence** — attention vs Conv. Sum aggregation on an
  arbiter-family dataset where controlling values dominate;
* **COP baseline** — the classical analytic probability estimator against
  a trained DeepGate, quantifying how much reconvergence-aware learning
  buys over independence-assuming propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

import numpy as np

from ..datagen import generators as gen
from ..graphdata.dataset import CircuitDataset
from ..graphdata.features import from_aig
from ..models.deepgate import DeepGate
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from ..synth.pipeline import has_constant_outputs, strip_constant_outputs, synthesize
from ..train.metrics import ErrorAccumulator
from ..train.trainer import TrainConfig, Trainer
from .common import (
    Scale,
    deprecated_main,
    format_rows,
    get_scale,
    merged_dataset,
    resolve_scale,
)

__all__ = ["AblationRow", "AblationsSpec", "SECTIONS", "run", "format_table", "main"]


@dataclass
class AblationRow:
    name: str
    variant: str
    error: float


def _train(model: DeepGate, train: CircuitDataset, cfg: Scale) -> DeepGate:
    Trainer(
        model,
        TrainConfig(
            epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr, seed=cfg.seed
        ),
    ).fit(train)
    return model


def _eval(model: DeepGate, test: CircuitDataset, cfg: Scale) -> float:
    from ..train.trainer import evaluate_model

    return evaluate_model(model, test.prepared_batches(cfg.batch_size))


def _deepgate(cfg: Scale, **kwargs) -> DeepGate:
    params = dict(
        dim=cfg.dim,
        num_iterations=cfg.num_iterations,
        rng=np.random.default_rng(cfg.seed),
    )
    params.update(kwargs)
    return DeepGate(**params)


def reverse_layer_ablation(cfg: Scale) -> List[AblationRow]:
    dataset = merged_dataset(cfg)
    train, test = dataset.split(0.9, seed=cfg.seed)
    rows = []
    for variant, use_reverse in (("forward+reverse", True), ("forward only", False)):
        model = _train(_deepgate(cfg, use_reverse=use_reverse), train, cfg)
        rows.append(AblationRow("reverse layer", variant, _eval(model, test, cfg)))
    return rows


def input_mode_ablation(cfg: Scale) -> List[AblationRow]:
    dataset = merged_dataset(cfg)
    train, test = dataset.split(0.9, seed=cfg.seed)
    rows = []
    for variant, mode in (("fixed x_v input", "fixed_x"), ("x_v as h0 only", "init_only")):
        model = _train(_deepgate(cfg, input_mode=mode), train, cfg)
        rows.append(AblationRow("gate-type input", variant, _eval(model, test, cfg)))
    return rows


def _arbiter_dataset(cfg: Scale) -> CircuitDataset:
    """Reconvergence-dense round-robin arbiters of varying size."""
    graphs = []
    rng = np.random.default_rng(cfg.seed + 5)
    sizes = [3, 4, 5, 6, 7, 8, 9, 10]
    for k, n in enumerate(sizes):
        aig = synthesize(gen.round_robin_arbiter(n))
        if has_constant_outputs(aig):
            aig = strip_constant_outputs(aig)
        graphs.append(
            from_aig(
                aig,
                num_patterns=cfg.num_patterns,
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return CircuitDataset(graphs, "arbiters")


def attention_on_reconvergence_ablation(cfg: Scale) -> List[AblationRow]:
    dataset = _arbiter_dataset(cfg)
    train, test = dataset.split(0.75, seed=cfg.seed)
    rows = []
    variants = (
        ("attention w/ SC", dict(aggregator="attention", use_skip=True)),
        ("attention w/o SC", dict(aggregator="attention", use_skip=False)),
        ("conv. sum", dict(aggregator="conv_sum", use_skip=False)),
    )
    for variant, kwargs in variants:
        model = _train(_deepgate(cfg, **kwargs), train, cfg)
        rows.append(
            AblationRow("arbiter aggregation", variant, _eval(model, test, cfg))
        )
    return rows


def cop_baseline(cfg: Scale) -> List[AblationRow]:
    """COP analytic estimator vs trained DeepGate on the same test split."""
    dataset = merged_dataset(cfg)
    train, test = dataset.split(0.9, seed=cfg.seed)
    model = _train(_deepgate(cfg), train, cfg)
    deepgate_err = _eval(model, test, cfg)
    # COP needs AIG structure; labels live on the gate graph, so map them
    acc = ErrorAccumulator()
    for graph in test:
        cop = _cop_on_graph(graph)
        acc.add(cop, graph.labels)
    return [
        AblationRow("vs analytic", "COP (no learning)", acc.value),
        AblationRow("vs analytic", "DeepGate", deepgate_err),
    ]


def _cop_on_graph(graph) -> np.ndarray:
    """COP probabilities computed level-wise directly on a gate graph."""
    from ..aig.graph import AND, NOT

    probs = np.full(graph.num_nodes, 0.5, dtype=np.float64)
    fanins: Dict[int, List[int]] = {v: [] for v in range(graph.num_nodes)}
    for u, v in graph.edges:
        fanins[int(v)].append(int(u))
    for v in range(graph.num_nodes):
        t = int(graph.node_type[v])
        if t == AND:
            p, q = fanins[v]
            probs[v] = probs[p] * probs[q]
        elif t == NOT:
            probs[v] = 1.0 - probs[fanins[v][0]]
    return probs


#: section name -> controlled comparison (``run``'s ``which`` filter)
SECTIONS = {
    "reverse_layer": reverse_layer_ablation,
    "input_mode": input_mode_ablation,
    "attention": attention_on_reconvergence_ablation,
    "cop": cop_baseline,
}


def run(
    scale: Union[str, Scale] = "default",
    which: Tuple[str, ...] = (),
) -> List[AblationRow]:
    """Run the requested ablation sections (all of them by default)."""
    cfg = get_scale(scale)
    names = which or tuple(SECTIONS)
    unknown = [n for n in names if n not in SECTIONS]
    if unknown:
        raise ValueError(
            f"unknown ablation sections {unknown}; choose from {sorted(SECTIONS)}"
        )
    rows: List[AblationRow] = []
    for name in names:
        rows.extend(SECTIONS[name](cfg))
    return rows


def format_table(rows: List[AblationRow]) -> str:
    body = [[r.name, r.variant, r.error] for r in rows]
    return format_rows(
        ["Ablation", "Variant", "Avg. Pred. Error"],
        body,
        title="Design-choice ablations",
    )


@dataclass(frozen=True)
class AblationsSpec(ExperimentSpec):
    """Design-choice ablations; ``which`` selects sections (empty = all)."""

    which: Tuple[str, ...] = ()


def _units(spec: AblationsSpec) -> List[UnitSpec]:
    """One unit per requested ablation section (all four by default)."""
    names = spec.which or tuple(SECTIONS)
    unknown = [n for n in names if n not in SECTIONS]
    if unknown:
        raise ValueError(
            f"unknown ablation sections {unknown}; choose from {sorted(SECTIONS)}"
        )
    return [UnitSpec(key=name) for name in names]


def _run_unit(spec: AblationsSpec, unit: UnitSpec) -> dict:
    """Run one section's controlled comparison."""
    rows = SECTIONS[unit.key](resolve_scale(spec))
    return {
        "section": unit.key,
        "rows": [
            {"ablation": r.name, "variant": r.variant, "error": r.error}
            for r in rows
        ],
    }


@experiment(
    "ablations",
    spec=AblationsSpec,
    title="Design-choice ablations",
    description="Controlled comparisons of DeepGate's load-bearing choices.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(spec: AblationsSpec, unit_results: List[dict]) -> ExperimentResult:
    row_dicts = [row for r in unit_results for row in r["rows"]]
    rows = [
        AblationRow(r["ablation"], r["variant"], r["error"]) for r in row_dicts
    ]
    return ExperimentResult(
        experiment="ablations",
        rows=row_dicts,
        table=format_table(rows),
    )


def main(argv=None) -> None:
    """Deprecated shim; use ``python -m repro experiment run ablations``."""
    deprecated_main("ablations", argv)


if __name__ == "__main__":
    main()
