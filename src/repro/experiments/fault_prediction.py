"""Downstream fault-detectability prediction from frozen embeddings.

The paper's conclusion proposes reusing DeepGate's representations for
downstream EDA tasks.  This experiment — promoted from
``examples/downstream_fault_prediction.py`` — does it end to end:

1. pre-train DeepGate on signal probabilities (the paper's task);
2. freeze it and fine-tune a small head to predict the *random-pattern
   detection probability of stuck-at-0 faults* per node, a testability
   quantity obtained from the fault simulator;
3. compare the fine-tuned head against the classical SCOAP heuristic on
   unseen circuits — one unit per evaluation design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..graphdata.dataset import prepare
from ..graphdata.features import from_aig
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from .common import (
    Scale,
    as_gate_graph,
    design_aig,
    design_seed,
    format_rows,
    merged_dataset,
    pretrained_backbone,
    resolve_scale,
    spearman,
)

__all__ = [
    "FaultPredictionSpec",
    "sa0_detection_targets",
    "run_design",
    "format_table",
]

DEFAULT_DESIGNS: Tuple[str, ...] = ("alu:4", "ripple_adder:8")

#: training graphs and epochs for the fine-tuned head: the head is tiny
#: (one MLP on frozen embeddings), so a handful of graphs suffices
TUNE_GRAPHS = 4
TUNE_EPOCHS = 40
TUNE_LR = 5e-3


def sa0_detection_targets(batch, num_patterns=8192, seed=0) -> np.ndarray:
    """Per-node stuck-at-0 detection probability from fault simulation."""
    from ..testability.faults import StuckAtFault, run_fault_simulation

    graph = batch.graph
    gate_graph = as_gate_graph(graph)
    faults = [StuckAtFault(v, 0) for v in range(graph.num_nodes)]
    report = run_fault_simulation(
        gate_graph, num_patterns=num_patterns, seed=seed, faults=faults
    )
    return report.detection_probability()


@dataclass(frozen=True)
class FaultPredictionSpec(ExperimentSpec):
    """Fine-tuned detectability head vs SCOAP over ``designs``."""

    designs: Tuple[str, ...] = DEFAULT_DESIGNS


# one fine-tuned head per resolved scale per process (it only depends on
# the scale); workers rebuild it bitwise-identically from the seeds
_TUNER_CACHE: Dict[Scale, object] = {}


def _finetuned_head(cfg: Scale):
    """Fault-detectability head on frozen backbone embeddings (memoised)."""
    if cfg not in _TUNER_CACHE:
        from ..models.finetune import FineTuner

        backbone = pretrained_backbone(cfg)
        train, _ = merged_dataset(cfg).split(0.9, seed=cfg.seed)
        tune_batches = [prepare([g]) for g in list(train)[:TUNE_GRAPHS]]
        targets = [
            sa0_detection_targets(b, seed=cfg.seed + k)
            for k, b in enumerate(tune_batches)
        ]
        tuner = FineTuner(backbone, lr=TUNE_LR, seed=cfg.seed)
        tuner.fit(tune_batches, targets, epochs=TUNE_EPOCHS)
        _TUNER_CACHE[cfg] = tuner
    return _TUNER_CACHE[cfg]


def run_design(design: str, cfg: Scale) -> dict:
    """Evaluate head vs SCOAP on one unseen design."""
    from ..testability.scoap import compute_scoap

    tuner = _finetuned_head(cfg)
    aig = design_aig(design)
    graph = from_aig(
        aig, num_patterns=cfg.num_patterns, seed=design_seed(cfg, design)
    )
    batch = prepare([graph])
    truth = sa0_detection_targets(
        batch, seed=design_seed(cfg, design, salt=777)
    )
    predicted = tuner.predict(batch)

    # SCOAP baseline: higher testability score ~ harder fault; negate so
    # both rankings orient easy-to-test high before rank-correlating
    scoap = compute_scoap(as_gate_graph(graph)).testability().astype(float)
    return {
        "design": design,
        "nodes": int(graph.num_nodes),
        "head_l1": float(np.abs(predicted - truth).mean()),
        "head_rank_corr": spearman(predicted, truth),
        "scoap_rank_corr": spearman(-scoap, truth),
    }


def format_table(rows: List[dict]) -> str:
    body = [
        [
            r["design"],
            r["nodes"],
            r["head_l1"],
            r["head_rank_corr"],
            r["scoap_rank_corr"],
        ]
        for r in rows
    ]
    return format_rows(
        ["design", "nodes", "head L1", "head rank corr", "SCOAP rank corr"],
        body,
        title="Fault-detectability prediction: fine-tuned head vs SCOAP",
    )


def _units(spec: FaultPredictionSpec) -> List[UnitSpec]:
    """One unit per evaluation design, in spec order."""
    return [UnitSpec(key=design) for design in spec.designs]


def _run_unit(spec: FaultPredictionSpec, unit: UnitSpec) -> dict:
    return run_design(unit.key, resolve_scale(spec))


@experiment(
    "downstream_fault_prediction",
    spec=FaultPredictionSpec,
    title="Fault-detectability prediction from frozen embeddings",
    description="Fine-tune a head on frozen DeepGate embeddings to "
    "predict stuck-at-0 detection probability; compare against SCOAP.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(
    spec: FaultPredictionSpec, unit_results: List[dict]
) -> ExperimentResult:
    return ExperimentResult(
        experiment="downstream_fault_prediction",
        rows=list(unit_results),
        table=format_table(unit_results),
    )
