"""Table III — generalisation to circuits far larger than training.

Trains DeepGate (w/ skip connections) and the best baseline (DAG-RecGNN
with the DeepSet aggregator) on small sub-circuits, then evaluates both on
five large designs: an arbiter, a squarer, a multiplier and two
processor-like datapaths — the same families the paper uses (its Arbiter /
Squarer / Multiplier come from EPFL, plus 80386 and Viper processors).

Expected shape: DeepGate's error stays near its small-circuit level and
beats DeepSet on every design, most on the reconvergence-dense arbiter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

import numpy as np

from ..datagen import generators as gen
from ..graphdata.dataset import CircuitDataset
from ..graphdata.features import from_aig
from ..models.registry import ModelConfig, build_model
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from ..synth.pipeline import has_constant_outputs, strip_constant_outputs, synthesize
from ..train.trainer import TrainConfig, Trainer, evaluate_model
from .common import (
    Scale,
    deprecated_main,
    format_rows,
    get_scale,
    merged_dataset,
    resolve_scale,
)

__all__ = ["Table3Row", "Table3Spec", "PAPER_ROWS", "run", "format_table", "main"]

#: design -> (paper #nodes, paper levels, DeepSet err, DeepGate err)
PAPER_ROWS: Dict[str, Tuple[float, int, float, float]] = {
    "Arbiter": (23_700, 173, 0.0277, 0.0073),
    "Squarer": (36_000, 373, 0.0495, 0.0346),
    "Multiplier": (47_300, 521, 0.0220, 0.0159),
    "Processor-A": (13_200, 122, 0.0534, 0.0387),  # 80386 in the paper
    "Processor-B": (40_500, 133, 0.0520, 0.0389),  # Viper in the paper
}

#: generator parameters per scale for the five large designs
_DESIGN_PARAMS: Dict[str, Dict[str, int]] = {
    "smoke": {"arbiter": 8, "squarer": 8, "multiplier": 8, "proc_a": 8, "proc_b": 10},
    "default": {
        "arbiter": 16,
        "squarer": 12,
        "multiplier": 12,
        "proc_a": 12,
        "proc_b": 16,
    },
    "paper": {
        "arbiter": 64,
        "squarer": 64,
        "multiplier": 64,
        "proc_a": 48,
        "proc_b": 64,
    },
}


@dataclass
class Table3Row:
    design: str
    nodes: int
    levels: int
    deepset_error: float
    deepgate_error: float

    @property
    def reduction(self) -> float:
        """Relative error reduction of DeepGate over DeepSet (percent)."""
        if self.deepset_error == 0:
            return 0.0
        return 100.0 * (1.0 - self.deepgate_error / self.deepset_error)


def large_designs(scale: Scale, num_patterns: int = None) -> CircuitDataset:
    """Build the five large evaluation circuits for a scale."""
    p = _DESIGN_PARAMS[scale.name]
    rng = np.random.default_rng(scale.seed + 77)
    # the paper's Arbiter is the EPFL round-robin design, whose rotating
    # scan logic is reconvergence-dense (fixed-priority arbiters synthesise
    # into reconvergence-free trees and would not exercise skip connections)
    netlists = {
        "Arbiter": gen.round_robin_arbiter(p["arbiter"]),
        "Squarer": gen.squarer(p["squarer"]),
        "Multiplier": gen.multiplier(p["multiplier"]),
        "Processor-A": gen.processor_like(p["proc_a"], rng),
        "Processor-B": gen.processor_like(p["proc_b"], rng),
    }
    graphs = []
    patterns = num_patterns or scale.num_patterns
    for name, nl in netlists.items():
        aig = synthesize(nl)
        if has_constant_outputs(aig):
            aig = strip_constant_outputs(aig)
        graph = from_aig(aig, num_patterns=patterns, seed=scale.seed)
        graph.name = name
        graphs.append(graph)
    return CircuitDataset(graphs, name=f"large[{scale.name}]")


def run(scale: Union[str, Scale] = "default") -> List[Table3Row]:
    cfg = get_scale(scale)
    dataset = merged_dataset(cfg)
    train, _ = dataset.split(0.9, seed=cfg.seed)
    large = large_designs(cfg)

    def train_model(config: ModelConfig):
        model = build_model(
            config,
            dim=cfg.dim,
            num_iterations=cfg.num_iterations,
            num_layers=cfg.num_layers,
            seed=cfg.seed,
        )
        Trainer(
            model,
            TrainConfig(
                epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr, seed=cfg.seed
            ),
        ).fit(train)
        return model

    deepset = train_model(ModelConfig("dag_rec", "deepset"))
    deepgate = train_model(ModelConfig("deepgate", "attention", use_skip=True))

    rows: List[Table3Row] = []
    for graph in large:
        batch_ds = CircuitDataset([graph]).prepared_batches(1)
        rows.append(
            Table3Row(
                design=graph.name,
                nodes=graph.num_nodes,
                levels=graph.depth,
                deepset_error=evaluate_model(deepset, batch_ds),
                deepgate_error=evaluate_model(deepgate, batch_ds),
            )
        )
    return rows


def format_table(rows: List[Table3Row]) -> str:
    body = []
    for r in rows:
        paper = PAPER_ROWS[r.design]
        body.append(
            [
                r.design,
                r.nodes,
                r.levels,
                r.deepset_error,
                r.deepgate_error,
                f"{r.reduction:.1f}%",
                paper[2],
                paper[3],
            ]
        )
    return format_rows(
        [
            "Design",
            "#Nodes",
            "Levels",
            "DeepSet",
            "DeepGate",
            "Reduction",
            "paperDeepSet",
            "paperDeepGate",
        ],
        body,
        title="Table III: generalisation to large circuits",
    )


@dataclass(frozen=True)
class Table3Spec(ExperimentSpec):
    """Large-design generalisation needs no knobs beyond the base spec."""


#: unit key -> the model arm it trains and evaluates
_ARM_CONFIGS: Dict[str, ModelConfig] = {
    "deepset": ModelConfig("dag_rec", "deepset"),
    "deepgate": ModelConfig("deepgate", "attention", use_skip=True),
}


def _units(spec: Table3Spec) -> List[UnitSpec]:
    """One unit per model arm; each trains once and sweeps all designs."""
    return [
        UnitSpec(key=key, title=cfg.label)
        for key, cfg in _ARM_CONFIGS.items()
    ]


def _run_unit(spec: Table3Spec, unit: UnitSpec) -> dict:
    """Train one arm on the small pool, evaluate every large design."""
    cfg = resolve_scale(spec)
    train, _ = merged_dataset(cfg).split(0.9, seed=cfg.seed)
    model = build_model(
        _ARM_CONFIGS[unit.key],
        dim=cfg.dim,
        num_iterations=cfg.num_iterations,
        num_layers=cfg.num_layers,
        seed=cfg.seed,
    )
    Trainer(
        model,
        TrainConfig(
            epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr, seed=cfg.seed
        ),
    ).fit(train)
    designs = []
    for graph in large_designs(cfg):
        batch_ds = CircuitDataset([graph]).prepared_batches(1)
        designs.append(
            {
                "design": graph.name,
                "nodes": graph.num_nodes,
                "levels": graph.depth,
                "error": evaluate_model(model, batch_ds),
            }
        )
    return {"arm": unit.key, "designs": designs}


@experiment(
    "table3",
    spec=Table3Spec,
    title="Table III: generalisation to large circuits",
    description="Train on small sub-circuits, evaluate on five large designs.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(spec: Table3Spec, unit_results: List[dict]) -> ExperimentResult:
    by_arm = {r["arm"]: r["designs"] for r in unit_results}
    rows = [
        Table3Row(
            design=deepset["design"],
            nodes=deepset["nodes"],
            levels=deepset["levels"],
            deepset_error=deepset["error"],
            deepgate_error=deepgate["error"],
        )
        for deepset, deepgate in zip(by_arm["deepset"], by_arm["deepgate"])
    ]
    return ExperimentResult(
        experiment="table3",
        rows=[
            {
                "design": r.design,
                "nodes": r.nodes,
                "levels": r.levels,
                "deepset_error": r.deepset_error,
                "deepgate_error": r.deepgate_error,
                "reduction_pct": r.reduction,
            }
            for r in rows
        ],
        table=format_table(rows),
    )


def main(argv=None) -> None:
    """Deprecated shim; use ``python -m repro experiment run table3``."""
    deprecated_main("table3", argv)


if __name__ == "__main__":
    main()
