"""Synthesis-transform robustness of the learned probability model.

Table IV shows the AIG transformation helps *training*; this experiment
asks the complementary deployment question: how stable are a pre-trained
model's predictions when the *same* design arrives in different
synthesised forms?  Each unit takes one catalog design, variegates it
into a heterogeneous mapped netlist (the paper's original-format
distribution), then evaluates the shared pre-trained DeepGate on

* the **raw** lowering (``netlist_to_aig``, no optimisation), and
* the **optimised** AIG (the full strash/balance/sweep pipeline),

both labelled by simulation with the same seed.  A robust model keeps
its probability error flat across the two functionally equivalent forms
while optimisation shrinks the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..datagen.normalize import normalize_to_library, variegate
from ..graphdata.dataset import prepare
from ..graphdata.features import from_aig
from ..nn.tensor import no_grad
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from ..synth.pipeline import (
    has_constant_outputs,
    strip_constant_outputs,
    synthesize,
)
from ..synth.transform import netlist_to_aig
from .common import (
    Scale,
    design_netlist,
    design_seed,
    format_rows,
    pretrained_backbone,
    resolve_scale,
)

__all__ = ["SynthRobustnessSpec", "run_design", "format_table"]

DEFAULT_DESIGNS: Tuple[str, ...] = (
    "ripple_adder:8",
    "comparator:8",
    "mux_tree:3",
)


@dataclass(frozen=True)
class SynthRobustnessSpec(ExperimentSpec):
    """Raw vs optimised AIG evaluation over ``designs``."""

    designs: Tuple[str, ...] = DEFAULT_DESIGNS


def _clean(aig):
    return strip_constant_outputs(aig) if has_constant_outputs(aig) else aig


def _model_mae(model, aig, cfg: Scale, seed: int) -> Tuple[float, int]:
    graph = from_aig(aig, num_patterns=cfg.num_patterns, seed=seed)
    batch = prepare([graph])
    with no_grad():
        predicted = model(batch).numpy()
    return float(np.abs(predicted - graph.labels).mean()), int(
        graph.num_nodes
    )


def run_design(design: str, cfg: Scale) -> dict:
    """One design's raw-vs-optimised evaluation."""
    model = pretrained_backbone(cfg)
    rng = np.random.default_rng(design_seed(cfg, design, salt=4242))
    netlist = variegate(normalize_to_library(design_netlist(design)), rng)
    raw = _clean(netlist_to_aig(netlist))
    opt = _clean(synthesize(netlist))

    label_seed = design_seed(cfg, design)
    mae_raw, nodes_raw = _model_mae(model, raw, cfg, label_seed)
    mae_opt, nodes_opt = _model_mae(model, opt, cfg, label_seed)
    return {
        "design": design,
        "nodes_raw": nodes_raw,
        "nodes_opt": nodes_opt,
        "node_reduction": 1.0 - nodes_opt / nodes_raw,
        "mae_raw": mae_raw,
        "mae_opt": mae_opt,
        "mae_gap": abs(mae_opt - mae_raw),
    }


def format_table(rows: List[dict]) -> str:
    body = [
        [
            r["design"],
            r["nodes_raw"],
            r["nodes_opt"],
            r["node_reduction"],
            r["mae_raw"],
            r["mae_opt"],
            r["mae_gap"],
        ]
        for r in rows
    ]
    return format_rows(
        [
            "design",
            "raw nodes",
            "opt nodes",
            "reduction",
            "raw MAE",
            "opt MAE",
            "|gap|",
        ],
        body,
        title="Synthesis-transform robustness of the pre-trained model",
    )


def _units(spec: SynthRobustnessSpec) -> List[UnitSpec]:
    """One unit per design's raw/optimised pair, in spec order."""
    return [UnitSpec(key=design) for design in spec.designs]


def _run_unit(spec: SynthRobustnessSpec, unit: UnitSpec) -> dict:
    return run_design(unit.key, resolve_scale(spec))


@experiment(
    "synth_robustness",
    spec=SynthRobustnessSpec,
    title="Synthesis-transform robustness of the pre-trained model",
    description="Probability error of one pre-trained model on raw vs "
    "optimised synthesised forms of the same designs.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(
    spec: SynthRobustnessSpec, unit_results: List[dict]
) -> ExperimentResult:
    return ExperimentResult(
        experiment="synth_robustness",
        rows=list(unit_results),
        table=format_table(unit_results),
    )
