"""Table IV — effectiveness of the AIG circuit transformation.

For the EPFL-like and IWLS-like pools, three arms are compared:

* **w/o Tran.**   DeepGate trained directly on original netlists with the
                  6-gate library (7-way one-hot, no skip connections —
                  reconvergence skip edges are defined on AIGs);
* **w/ Tran.**    the same circuits lowered to AIG (3-way one-hot);
* **Pre-trained** the standard DeepGate trained on the *merged* all-suite
                  AIG dataset, evaluated on this suite's test split.

Expected shape: AIG transformation cuts the error substantially; merged-
suite pre-training cuts it further.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

import numpy as np

from ..datagen.normalize import normalize_to_library, variegate
from ..datagen.suites import suite_pool
from ..graphdata.dataset import CircuitDataset
from ..graphdata.features import from_aig, from_netlist
from ..models.deepgate import DeepGate
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from ..synth.pipeline import has_constant_outputs, strip_constant_outputs, synthesize
from ..train.trainer import TrainConfig, Trainer
from .common import (
    Scale,
    deprecated_main,
    format_rows,
    get_scale,
    merged_dataset,
    resolve_scale,
)

__all__ = ["Table4Row", "Table4Spec", "PAPER_ROWS", "run", "format_table", "main"]

#: suite -> (w/o transform, w/ transform, pre-trained) published errors
PAPER_ROWS: Dict[str, Tuple[float, float, float]] = {
    "EPFL": (0.0442, 0.0292, 0.0142),
    "IWLS": (0.0447, 0.0342, 0.0209),
}


@dataclass
class Table4Row:
    suite: str
    without_transform: float
    with_transform: float
    pretrained: float


def _paired_datasets(
    suite: str, count: int, scale: Scale
) -> Tuple[CircuitDataset, CircuitDataset]:
    """Matched (netlist-form, AIG-form) datasets for one suite.

    Both arms see the *same* source circuits; the only difference is the
    representation, mirroring the paper's controlled experiment.  Source
    netlists are technology-variegated first (random equivalent gate
    forms), reproducing the heterogeneous mapped-netlist distributions the
    paper's original-format circuits have; synthesis collapses the variants
    into one unified AIG for the other arm.
    """
    rng = np.random.default_rng(scale.seed + 4242)
    pool = suite_pool(suite, rng)
    netlist_graphs, aig_graphs = [], []
    while len(aig_graphs) < count:
        netlist = variegate(normalize_to_library(next(pool)), rng)
        aig = synthesize(netlist)
        if has_constant_outputs(aig):
            try:
                aig = strip_constant_outputs(aig)
            except ValueError:
                continue
        if aig.num_ands == 0:
            continue
        view = aig.to_gate_graph()
        if not (scale.min_nodes <= view.num_nodes <= scale.max_nodes):
            continue
        if view.depth() > scale.max_levels:
            continue
        label_seed = int(rng.integers(0, 2**31))
        netlist_graphs.append(
            from_netlist(netlist, num_patterns=scale.num_patterns, seed=label_seed)
        )
        aig_graphs.append(
            from_aig(aig, num_patterns=scale.num_patterns, seed=label_seed)
        )
    return (
        CircuitDataset(netlist_graphs, f"{suite}/netlist"),
        CircuitDataset(aig_graphs, f"{suite}/aig"),
    )


def _train_deepgate(
    train: CircuitDataset, num_types: int, use_skip: bool, cfg: Scale
) -> DeepGate:
    model = DeepGate(
        num_types=num_types,
        dim=cfg.dim,
        num_iterations=cfg.num_iterations,
        aggregator="attention",
        use_skip=use_skip,
        rng=np.random.default_rng(cfg.seed),
    )
    Trainer(
        model,
        TrainConfig(
            epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr, seed=cfg.seed
        ),
    ).fit(train)
    return model


# one pre-trained arm per scale per process: serial unit execution
# trains it once and every suite unit shares it (evaluation only);
# worker processes retrain their own copy, which is bitwise identical
# because model init and training are fully seeded
_PRETRAINED_CACHE: Dict[Scale, DeepGate] = {}


def _pretrained_arm(cfg: Scale) -> DeepGate:
    """The pre-trained arm: one DeepGate on the merged all-suite AIG
    pool (memoised per scale)."""
    if cfg not in _PRETRAINED_CACHE:
        merged_train, _ = merged_dataset(cfg).split(0.9, seed=cfg.seed)
        _PRETRAINED_CACHE[cfg] = _train_deepgate(merged_train, 3, True, cfg)
    return _PRETRAINED_CACHE[cfg]


def _suite_row(suite: str, cfg: Scale, pretrained: DeepGate) -> Table4Row:
    """The three arms of one suite's controlled comparison."""
    from ..train.trainer import evaluate_model

    # the paper's controlled experiment draws a dedicated pool per suite
    # (375 EPFL sub-circuits); use twice the suite's budget here
    count = 2 * cfg.suite_counts().get(suite, 4)
    netlist_ds, aig_ds = _paired_datasets(suite, count, cfg)
    nl_train, nl_test = netlist_ds.split(0.75, seed=cfg.seed)
    aig_train, aig_test = aig_ds.split(0.75, seed=cfg.seed)

    without = _train_deepgate(nl_train, len(nl_train[0].type_names), False, cfg)
    with_tr = _train_deepgate(aig_train, 3, True, cfg)

    return Table4Row(
        suite=suite,
        without_transform=evaluate_model(
            without, nl_test.prepared_batches(cfg.batch_size)
        ),
        with_transform=evaluate_model(
            with_tr, aig_test.prepared_batches(cfg.batch_size)
        ),
        pretrained=evaluate_model(
            pretrained, aig_test.prepared_batches(cfg.batch_size)
        ),
    )


def run(
    scale: Union[str, Scale] = "default",
    suites: Tuple[str, ...] = ("EPFL", "IWLS"),
) -> List[Table4Row]:
    cfg = get_scale(scale)
    pretrained = _pretrained_arm(cfg)
    return [_suite_row(suite, cfg, pretrained) for suite in suites]


def format_table(rows: List[Table4Row]) -> str:
    body = []
    for r in rows:
        paper = PAPER_ROWS.get(r.suite, (float("nan"),) * 3)
        body.append(
            [
                r.suite,
                r.without_transform,
                r.with_transform,
                r.pretrained,
                paper[0],
                paper[1],
                paper[2],
            ]
        )
    return format_rows(
        [
            "Suite",
            "w/o Tran.",
            "w/ Tran.",
            "Pre-trained",
            "paper w/o",
            "paper w/",
            "paper pre",
        ],
        body,
        title="Table IV: DeepGate with and without circuit transformation",
    )


@dataclass(frozen=True)
class Table4Spec(ExperimentSpec):
    """Transformation ablation over ``suites`` (EPFL/IWLS by default)."""

    suites: Tuple[str, ...] = ("EPFL", "IWLS")


def _units(spec: Table4Spec) -> List[UnitSpec]:
    """One unit per suite's controlled three-arm comparison."""
    return [UnitSpec(key=suite) for suite in spec.suites]


def _run_unit(spec: Table4Spec, unit: UnitSpec) -> dict:
    """One suite's three arms (the shared pre-trained arm is retrained
    from the same seeds, so workers reproduce the serial weights)."""
    cfg = resolve_scale(spec)
    row = _suite_row(unit.key, cfg, _pretrained_arm(cfg))
    return {
        "suite": row.suite,
        "without_transform": row.without_transform,
        "with_transform": row.with_transform,
        "pretrained": row.pretrained,
    }


@experiment(
    "table4",
    spec=Table4Spec,
    title="Table IV: DeepGate with and without circuit transformation",
    description="Netlist vs AIG representation vs merged-suite pre-training.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(spec: Table4Spec, unit_results: List[dict]) -> ExperimentResult:
    rows = [
        Table4Row(
            suite=r["suite"],
            without_transform=r["without_transform"],
            with_transform=r["with_transform"],
            pretrained=r["pretrained"],
        )
        for r in unit_results
    ]
    return ExperimentResult(
        experiment="table4",
        rows=list(unit_results),
        table=format_table(rows),
    )


def main(argv=None) -> None:
    """Deprecated shim; use ``python -m repro experiment run table4``."""
    deprecated_main("table4", argv)


if __name__ == "__main__":
    main()
