"""Experiment harness: one module per table/figure of the paper.

* :mod:`.table1` — dataset statistics
* :mod:`.table2` — model comparison grid (13 configurations)
* :mod:`.table3` — generalisation to large circuits
* :mod:`.table4` — AIG transformation ablation
* :mod:`.t_sweep` — error vs recurrence iterations (the §IV-D.2 figure)
* :mod:`.ablations` — extra design-choice ablations
* :mod:`.testability_analysis` — learned probability oracle ranking
  hard-to-test nodes (downstream workload)
* :mod:`.fault_prediction` — fine-tuned fault-detectability head vs
  SCOAP (downstream workload)
* :mod:`.synth_robustness` — model stability across synthesised forms
* :mod:`.sat_oracle` — SAT/exhaustive label-consistency cross-checks
* :mod:`.train_backbone` — train the backbone and publish its
  checkpoint as a servable run artifact (``repro serve --run``)

Each module exposes ``run(scale)`` returning structured rows and
``format_table(rows)`` rendering the paper-style table, and registers
itself with the experiment runtime (:mod:`repro.runtime`): a frozen spec
dataclass plus a runner, driven by ``python -m repro experiment
run/list/report``.  The old per-module CLIs
(``python -m repro.experiments.table2``) survive as deprecation shims
that forward to the registry path.
"""

from . import (
    ablations,
    common,
    fault_prediction,
    sat_oracle,
    synth_robustness,
    t_sweep,
    table1,
    table2,
    table3,
    table4,
    testability_analysis,
    train_backbone,
)
from .common import SCALES, Scale, get_scale

__all__ = [
    "ablations",
    "common",
    "fault_prediction",
    "sat_oracle",
    "synth_robustness",
    "t_sweep",
    "table1",
    "table2",
    "table3",
    "table4",
    "testability_analysis",
    "train_backbone",
    "SCALES",
    "Scale",
    "get_scale",
]
