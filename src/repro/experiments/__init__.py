"""Experiment harness: one module per table/figure of the paper.

* :mod:`.table1` — dataset statistics
* :mod:`.table2` — model comparison grid (13 configurations)
* :mod:`.table3` — generalisation to large circuits
* :mod:`.table4` — AIG transformation ablation
* :mod:`.t_sweep` — error vs recurrence iterations (the §IV-D.2 figure)
* :mod:`.ablations` — extra design-choice ablations

Each module exposes ``run(scale)`` returning structured rows and
``format_table(rows)`` rendering the paper-style table, and registers
itself with the experiment runtime (:mod:`repro.runtime`): a frozen spec
dataclass plus a runner, driven by ``python -m repro experiment
run/list/report``.  The old per-module CLIs
(``python -m repro.experiments.table2``) survive as deprecation shims
that forward to the registry path.
"""

from . import ablations, common, t_sweep, table1, table2, table3, table4
from .common import SCALES, Scale, get_scale

__all__ = [
    "ablations",
    "common",
    "t_sweep",
    "table1",
    "table2",
    "table3",
    "table4",
    "SCALES",
    "Scale",
    "get_scale",
]
