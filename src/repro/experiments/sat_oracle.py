"""SAT-oracle label consistency across equivalent circuit forms.

The dataset pipeline assumes its transformations preserve function: a
variegated netlist, its raw AIG lowering and the optimised AIG must all
implement the same Boolean function, and equivalent forms must induce
identical *exact* output probabilities.  This experiment turns that
assumption into a measured, regression-gated fact:

* **formal**: the SAT miter (:mod:`repro.sat.equivalence`) proves the
  optimised and variegated forms equivalent to the raw lowering;
* **exact labels**: exhaustive enumeration gives every form's output
  probabilities; the max gap across equivalent forms must be 0;
* **sampled labels**: the Monte-Carlo estimator (the paper's labelling
  method) is checked against the exact oracle; its max deviation is the
  label noise the models train against.

No training happens here — one unit per design, each a pure oracle
cross-check, so this is the fastest of the registered workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..datagen.normalize import normalize_to_library, variegate
from ..runtime.registry import (
    ExperimentResult,
    ExperimentSpec,
    UnitSpec,
    experiment,
)
from ..sat.equivalence import check_equivalence
from ..sim.probability import exact_probabilities, monte_carlo_probabilities
from ..synth.pipeline import synthesize
from ..synth.transform import netlist_to_aig
from .common import (
    Scale,
    design_netlist,
    design_seed,
    format_rows,
    resolve_scale,
)

__all__ = ["SatOracleSpec", "run_design", "format_table"]

#: all small enough for exhaustive enumeration (<= 2^12 patterns)
DEFAULT_DESIGNS: Tuple[str, ...] = (
    "ripple_adder:4",
    "comparator:4",
    "mux_tree:2",
    "parity:8",
)

#: exhaustive enumeration bound; designs beyond this are a spec error
MAX_EXACT_PIS = 16


def _output_probs(aig, var_probs: np.ndarray) -> np.ndarray:
    """Per-output probabilities from per-variable ones (literal parity)."""
    out = np.empty(aig.num_outputs, dtype=np.float64)
    for i, lit in enumerate(aig.outputs):
        p = var_probs[int(lit) >> 1]
        out[i] = 1.0 - p if int(lit) & 1 else p
    return out


def run_design(design: str, cfg: Scale) -> dict:
    """Cross-check one design's equivalent forms against the oracles."""
    rng = np.random.default_rng(design_seed(cfg, design, salt=31337))
    netlist = normalize_to_library(design_netlist(design))
    raw = netlist_to_aig(netlist)
    if raw.num_pis > MAX_EXACT_PIS:
        raise ValueError(
            f"design {design!r} has {raw.num_pis} PIs; the SAT-oracle "
            f"check enumerates exhaustively and caps at {MAX_EXACT_PIS}"
        )
    opt = synthesize(netlist)
    var = netlist_to_aig(variegate(netlist, rng))

    eq_opt = check_equivalence(raw, opt)
    eq_var = check_equivalence(raw, var)

    probs_raw = _output_probs(raw, exact_probabilities(raw))
    probs_opt = _output_probs(opt, exact_probabilities(opt))
    probs_var = _output_probs(var, exact_probabilities(var))
    exact_gap = max(
        float(np.abs(probs_raw - probs_opt).max()),
        float(np.abs(probs_raw - probs_var).max()),
    )

    mc = monte_carlo_probabilities(
        raw, num_patterns=cfg.num_patterns, seed=design_seed(cfg, design)
    )
    mc_dev = float(np.abs(mc - exact_probabilities(raw)).max())
    return {
        "design": design,
        "pis": int(raw.num_pis),
        "outputs": int(raw.num_outputs),
        "equiv_optimised": int(eq_opt.equivalent),
        "equiv_variegated": int(eq_var.equivalent),
        "exact_prob_gap": exact_gap,
        "mc_max_dev": mc_dev,
    }


def format_table(rows: List[dict]) -> str:
    body = [
        [
            r["design"],
            r["pis"],
            r["outputs"],
            "yes" if r["equiv_optimised"] else "NO",
            "yes" if r["equiv_variegated"] else "NO",
            r["exact_prob_gap"],
            r["mc_max_dev"],
        ]
        for r in rows
    ]
    return format_rows(
        [
            "design",
            "PIs",
            "outs",
            "opt equiv",
            "var equiv",
            "exact gap",
            "MC max dev",
        ],
        body,
        title="SAT-oracle label consistency across equivalent forms",
    )


def _units(spec: "SatOracleSpec") -> List[UnitSpec]:
    """One unit per cross-checked design, in spec order."""
    return [UnitSpec(key=design) for design in spec.designs]


def _run_unit(spec: "SatOracleSpec", unit: UnitSpec) -> dict:
    return run_design(unit.key, resolve_scale(spec))


@dataclass(frozen=True)
class SatOracleSpec(ExperimentSpec):
    """Oracle cross-check over ``designs`` (all exhaustively small)."""

    designs: Tuple[str, ...] = DEFAULT_DESIGNS


@experiment(
    "sat_oracle",
    spec=SatOracleSpec,
    title="SAT-oracle label consistency across equivalent forms",
    description="Miter-prove raw/optimised/variegated forms equivalent "
    "and check exact vs Monte-Carlo label probabilities.",
    units=_units,
    run_unit=_run_unit,
)
def _merge(spec: SatOracleSpec, unit_results: List[dict]) -> ExperimentResult:
    return ExperimentResult(
        experiment="sat_oracle",
        rows=list(unit_results),
        table=format_table(unit_results),
    )
