"""Unit tests for bench helpers: RSS normalisation, compare, merge."""

from repro.bench import _normalise_rss_kb, compare_bench, merge_bench


class TestRssNormalisation:
    def test_linux_reports_kb_unchanged(self):
        assert _normalise_rss_kb(123_456, platform_name="linux") == 123_456

    def test_darwin_reports_bytes_converted(self):
        assert _normalise_rss_kb(123_456 * 1024, platform_name="darwin") \
            == 123_456

    def test_default_platform_is_consistent(self):
        # whatever the host is, the helper must be deterministic on it
        assert _normalise_rss_kb(2048) == _normalise_rss_kb(2048)

    def test_darwin_rounds_down_partial_kb(self):
        assert _normalise_rss_kb(1536, platform_name="darwin") == 1


class TestCompareRows:
    def _payload(self, **metrics):
        base = {
            "forward_s": 1.0,
            "backward_s": 2.0,
            "train_epoch_s": 3.0,
            "tracemalloc_peak_mb": 10.0,
            "peak_rss_delta_kb": 500,
        }
        base.update(metrics)
        return {"suites": {"deep": base}}

    def test_rss_delta_is_compared(self):
        diff = compare_bench(
            self._payload(peak_rss_delta_kb=1000),
            self._payload(peak_rss_delta_kb=500),
        )
        rows = {
            r["metric"]: r for r in diff["rows"] if r["suite"] == "deep"
        }
        assert rows["peak_rss_delta_kb"]["speedup"] == 2.0

    def test_time_speedup_is_old_over_new(self):
        diff = compare_bench(
            self._payload(train_epoch_s=3.0),
            self._payload(train_epoch_s=1.5),
        )
        rows = {
            r["metric"]: r for r in diff["rows"] if r["suite"] == "deep"
        }
        assert rows["train_epoch_s"]["speedup"] == 2.0


class TestMerge:
    def _payload(self, **metrics):
        base = {
            "nodes": 1000,
            "forward_s": 1.0,
            "backward_s": 2.0,
            "train_epoch_s": 4.0,
            "nodes_per_s": 250.0,
            "tracemalloc_peak_mb": 10.0,
            "peak_rss_kb": 5000,
            "peak_rss_delta_kb": 500,
        }
        base.update(metrics)
        return {"suites": {"deep": base}}

    def test_takes_elementwise_minimum(self):
        merged = merge_bench(
            self._payload(forward_s=1.0, train_epoch_s=5.0),
            self._payload(forward_s=0.5, train_epoch_s=8.0),
        )
        deep = merged["suites"]["deep"]
        assert deep["forward_s"] == 0.5
        assert deep["train_epoch_s"] == 5.0

    def test_throughput_follows_merged_epoch(self):
        merged = merge_bench(
            self._payload(train_epoch_s=2.0, nodes_per_s=500.0),
            self._payload(train_epoch_s=4.0, nodes_per_s=250.0),
        )
        assert merged["suites"]["deep"]["nodes_per_s"] == 500.0

    def test_counts_merged_runs(self):
        once = merge_bench(self._payload(), self._payload())
        twice = merge_bench(once, self._payload())
        assert once["merged_runs"] == 2
        assert twice["merged_runs"] == 3

    def test_suites_union_is_kept(self):
        old = self._payload()
        new = {"suites": {"wide": {"nodes": 7, "forward_s": 0.1}}}
        merged = merge_bench(old, new)
        assert set(merged["suites"]) == {"deep", "wide"}
