"""Shared test utilities: random circuit generation and equivalence checks."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.aig import AIG, GateType, Netlist
from repro.sim import exhaustive_patterns, output_values, simulate_aig
from repro.synth import netlist_to_aig

#: gate types usable as random internal gates (fixed 2-input choices + unary)
_BINARY_TYPES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)


def random_netlist(
    rng: np.random.Generator,
    num_inputs: int = 4,
    num_gates: int = 12,
    num_outputs: int = 2,
    include_unary: bool = True,
    include_mux: bool = True,
) -> Netlist:
    """Build a random, valid combinational netlist.

    Each new gate draws fan-ins uniformly from already-defined nets, so the
    result is always acyclic.  Outputs are drawn from the last few gates so
    most of the structure stays live.
    """
    nl = Netlist("random")
    nets = [nl.add_input(f"i{k}") for k in range(num_inputs)]
    for g in range(num_gates):
        choice = rng.integers(0, 10)
        name = f"g{g}"
        if include_unary and choice == 0:
            nl.add_gate(name, GateType.NOT, [str(rng.choice(nets))])
        elif include_unary and choice == 1:
            nl.add_gate(name, GateType.BUF, [str(rng.choice(nets))])
        elif include_mux and choice == 2 and len(nets) >= 3:
            picks = rng.choice(len(nets), size=3, replace=True)
            nl.add_gate(name, GateType.MUX, [nets[p] for p in picks])
        else:
            t = _BINARY_TYPES[int(rng.integers(0, len(_BINARY_TYPES)))]
            arity = int(rng.integers(2, 4))
            picks = rng.choice(len(nets), size=arity, replace=True)
            nl.add_gate(name, t, [nets[p] for p in picks])
        nets.append(name)
    pool = nets[num_inputs:] or nets
    tail = pool[-max(num_outputs, 1) * 3 :]
    outs = [
        str(tail[int(rng.integers(0, len(tail)))]) for _ in range(num_outputs)
    ]
    nl.set_outputs(outs)
    nl.validate()
    return nl


def exhaustive_output_bits(aig: AIG) -> np.ndarray:
    """Output truth tables of ``aig`` as packed words, masked to valid bits."""
    pats = exhaustive_patterns(aig.num_pis)
    outs = output_values(aig, simulate_aig(aig, pats))
    total = 1 << aig.num_pis
    if total < 64:
        outs = outs & np.uint64((1 << total) - 1)
    return outs


def assert_functionally_equal(
    left: Union[AIG, Netlist], right: Union[AIG, Netlist], max_pis: int = 14
) -> None:
    """Assert two circuits compute identical output truth tables."""
    aig_l = netlist_to_aig(left) if isinstance(left, Netlist) else left
    aig_r = netlist_to_aig(right) if isinstance(right, Netlist) else right
    assert aig_l.num_pis == aig_r.num_pis, "PI counts differ"
    assert aig_l.num_outputs == aig_r.num_outputs, "output counts differ"
    assert aig_l.num_pis <= max_pis, "too many PIs for exhaustive check"
    bits_l = exhaustive_output_bits(aig_l)
    bits_r = exhaustive_output_bits(aig_r)
    assert np.array_equal(bits_l, bits_r), "output truth tables differ"
