"""Shared test utilities: circuit/dataset factories, fake experiments,
random netlist generation and equivalence checks."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.aig import AIG, GateType, Netlist
from repro.datagen.generators import parity, ripple_adder
from repro.datagen.pipeline import PipelineConfig, build_shards
from repro.graphdata import CircuitDataset, from_aig
from repro.runtime import ExperimentResult, ExperimentSpec, UnitSpec, experiment
from repro.sim import exhaustive_patterns, output_values, simulate_aig
from repro.synth import netlist_to_aig, synthesize

# ---------------------------------------------------------------------------
# tiny labelled datasets (shared by runtime/train/graphdata tests)
# ---------------------------------------------------------------------------


def tiny_circuit_dataset(
    n: int = 8, num_patterns: int = 256, name: str = "toy"
) -> CircuitDataset:
    """A small in-memory dataset of alternating adder/parity circuits.

    The one canonical recipe behind the ``make_dataset``/``tiny_dataset``
    helpers that used to be copy-pasted across the loader, dataset,
    trainer and checkpoint test modules.
    """
    graphs = []
    for k in range(n):
        nl = ripple_adder(3 + (k % 3)) if k % 2 else parity(4 + k)
        graphs.append(
            from_aig(synthesize(nl), num_patterns=num_patterns, seed=k)
        )
    return CircuitDataset(graphs, name)


def tiny_pipeline_config(**overrides) -> PipelineConfig:
    """A seconds-fast two-suite pipeline config for shard-backed tests."""
    params = dict(
        suites=(("EPFL", 3), ("ITC99", 3)),
        seed=11,
        num_patterns=256,
        max_nodes=200,
        max_levels=50,
        shard_size=2,
    )
    params.update(overrides)
    return PipelineConfig(**params)


def build_tiny_shards(out_dir, workers: int = 1, **overrides) -> Path:
    """Build (or reuse) a tiny sharded dataset under ``out_dir``."""
    build_shards(tiny_pipeline_config(**overrides), out_dir, workers=workers)
    return Path(out_dir)


# ---------------------------------------------------------------------------
# fake experiments (shared by runtime tests)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridSpec(ExperimentSpec):
    """Spec of the fake unit-decomposed grid experiment.

    Module-level so instances pickle across the process-pool boundary.
    """

    rows: Tuple[str, ...] = ("alpha", "beta", "gamma")
    factor: int = 2


def register_grid_experiment(
    name: str = "fake-grid",
    log_dir: Optional[Path] = None,
    unit_sleep: float = 0.0,
) -> str:
    """Register a cheap unit experiment; returns its name.

    When ``log_dir`` is given, every ``run_unit`` execution drops a
    marker file there — countable across worker processes, which is how
    the parallel tests assert "this unit ran / was cached".
    ``unit_sleep`` makes every unit take that many seconds — the
    distributed tests use it to outlive a short lease TTL and prove
    heartbeats keep slow units alive.  Callers must
    ``repro.runtime.registry.unregister(name)`` when done.
    """

    def units(spec: GridSpec):
        return [UnitSpec(key=row, title=f"row {row}") for row in spec.rows]

    def run_unit(spec: GridSpec, unit: UnitSpec):
        if unit.key == "explode":
            raise RuntimeError("unit exploded")
        if unit_sleep > 0:
            time.sleep(unit_sleep)
        if log_dir is not None:
            marker = (
                Path(log_dir)
                / f"exec-{unit.key}-{os.getpid()}-{time.monotonic_ns()}"
            )
            marker.write_text("")
        return {"row": unit.key, "value": len(unit.key) * spec.factor}

    @experiment(
        name, spec=GridSpec, title="Fake grid", units=units, run_unit=run_unit
    )
    def merge(spec: GridSpec, unit_results):
        return ExperimentResult(
            experiment=name,
            rows=list(unit_results),
            table="\n".join(
                f"{r['row']} {r['value']}" for r in unit_results
            ),
        )

    return name


def count_unit_executions(log_dir: Path, key: Optional[str] = None) -> int:
    """How many times ``run_unit`` actually executed (across processes)."""
    pattern = f"exec-{key}-*" if key is not None else "exec-*"
    return len(list(Path(log_dir).glob(pattern)))


#: gate types usable as random internal gates (fixed 2-input choices + unary)
_BINARY_TYPES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)


def random_netlist(
    rng: np.random.Generator,
    num_inputs: int = 4,
    num_gates: int = 12,
    num_outputs: int = 2,
    include_unary: bool = True,
    include_mux: bool = True,
) -> Netlist:
    """Build a random, valid combinational netlist.

    Each new gate draws fan-ins uniformly from already-defined nets, so the
    result is always acyclic.  Outputs are drawn from the last few gates so
    most of the structure stays live.
    """
    nl = Netlist("random")
    nets = [nl.add_input(f"i{k}") for k in range(num_inputs)]
    for g in range(num_gates):
        choice = rng.integers(0, 10)
        name = f"g{g}"
        if include_unary and choice == 0:
            nl.add_gate(name, GateType.NOT, [str(rng.choice(nets))])
        elif include_unary and choice == 1:
            nl.add_gate(name, GateType.BUF, [str(rng.choice(nets))])
        elif include_mux and choice == 2 and len(nets) >= 3:
            picks = rng.choice(len(nets), size=3, replace=True)
            nl.add_gate(name, GateType.MUX, [nets[p] for p in picks])
        else:
            t = _BINARY_TYPES[int(rng.integers(0, len(_BINARY_TYPES)))]
            arity = int(rng.integers(2, 4))
            picks = rng.choice(len(nets), size=arity, replace=True)
            nl.add_gate(name, t, [nets[p] for p in picks])
        nets.append(name)
    pool = nets[num_inputs:] or nets
    tail = pool[-max(num_outputs, 1) * 3 :]
    outs = [
        str(tail[int(rng.integers(0, len(tail)))]) for _ in range(num_outputs)
    ]
    nl.set_outputs(outs)
    nl.validate()
    return nl


def exhaustive_output_bits(aig: AIG) -> np.ndarray:
    """Output truth tables of ``aig`` as packed words, masked to valid bits."""
    pats = exhaustive_patterns(aig.num_pis)
    outs = output_values(aig, simulate_aig(aig, pats))
    total = 1 << aig.num_pis
    if total < 64:
        outs = outs & np.uint64((1 << total) - 1)
    return outs


def assert_functionally_equal(
    left: Union[AIG, Netlist], right: Union[AIG, Netlist], max_pis: int = 14
) -> None:
    """Assert two circuits compute identical output truth tables."""
    aig_l = netlist_to_aig(left) if isinstance(left, Netlist) else left
    aig_r = netlist_to_aig(right) if isinstance(right, Netlist) else right
    assert aig_l.num_pis == aig_r.num_pis, "PI counts differ"
    assert aig_l.num_outputs == aig_r.num_outputs, "output counts differ"
    assert aig_l.num_pis <= max_pis, "too many PIs for exhaustive check"
    bits_l = exhaustive_output_bits(aig_l)
    bits_r = exhaustive_output_bits(aig_r)
    assert np.array_equal(bits_l, bits_r), "output truth tables differ"
