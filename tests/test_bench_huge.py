"""The opt-in ``huge`` bench suite and its CLI gates, at toy scale.

The suite itself is exercised with a ~1k-gate circuit (the real thing
runs 100k+ gates in CI's ``huge-smoke`` job); what these tests pin down
is the *machinery*: metric schema, deterministic output dumps that are
byte-identical across window budgets, the ``--max-rss-kb`` run gate and
the ``--max-rss-regression`` compare gate, and the huge suite staying
out of the default suite sweep.
"""

import json

import pytest

from repro.bench import (
    HUGE_SUITE,
    all_suite_names,
    bench_huge_suite,
    compare_bench,
    max_rss_regression,
    run_benchmarks,
)
from repro.cli import main

TINY = dict(num_gates=800, window_budget=128, dim=8, iterations=1, repeats=1)


class TestHugeSuite:
    def test_not_in_default_sweep(self):
        assert HUGE_SUITE not in all_suite_names()

    def test_metrics_schema(self):
        m = bench_huge_suite(**TINY)
        for key in (
            "circuits", "nodes", "edges", "levels", "forward_s",
            "backward_s", "train_epoch_s", "nodes_per_s", "peak_rss_kb",
            "peak_rss_delta_kb", "window_budget", "window_stats",
        ):
            assert key in m, key
        assert m["nodes"] == 800
        assert m["window_budget"] == 128
        stats = m["window_stats"]
        assert stats["passes"] > 0
        assert stats["windows"] >= stats["passes"]

    def test_dump_identical_across_budgets(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        bench_huge_suite(**dict(TINY, dump_path=a))
        bench_huge_suite(**dict(TINY, window_budget=32, dump_path=b))
        assert a.read_bytes() == b.read_bytes()

    def test_run_benchmarks_dispatches_huge(self):
        payload = run_benchmarks(suites=[HUGE_SUITE], huge=TINY)
        assert set(payload["suites"]) == {HUGE_SUITE}
        assert payload["suites"][HUGE_SUITE]["nodes"] == 800

    def test_full_check_probe_completes_at_toy_scale(self):
        # with a generous allowance the full path fits: the probe's
        # subprocess plumbing (env, JSON hand-off, rlimit) is what this
        # checks — the memory_error outcome is CI's to demonstrate
        m = bench_huge_suite(
            **dict(TINY, full_check=True, full_budget_mb=2048)
        )
        probe = m["full_path_probe"]
        assert probe["status"] == "completed", probe
        assert probe["budget_mb"] == 2048.0
        assert probe["peak_rss_kb"] > 0


class TestMaxRssRegression:
    def _payload(self, delta):
        return {
            "name": "x", "variant": "compiled",
            "suites": {"huge": {
                "forward_s": 1.0, "backward_s": 1.0, "train_epoch_s": 1.0,
                "peak_rss_delta_kb": delta,
            }},
        }

    def test_ratio_and_floor(self):
        diff = compare_bench(self._payload(2048), self._payload(4096))
        worst = max_rss_regression(diff)
        assert worst["suite"] == "huge"
        assert worst["ratio"] == pytest.approx(2.0)
        # old deltas below the 1024 KB floor cannot manufacture huge
        # ratios out of jitter
        diff = compare_bench(self._payload(1), self._payload(512))
        assert max_rss_regression(diff)["ratio"] == pytest.approx(0.5)

    def test_none_without_the_metric(self):
        a = {"suites": {"s": {"forward_s": 1.0}}}
        diff = compare_bench(a, a)
        assert max_rss_regression(diff) is None


class TestCli:
    def run_tiny(self, tmp_path, *extra):
        out = tmp_path / "BENCH_t.json"
        args = [
            "bench", "run", "--suite", "huge", "--huge-gates", "800",
            "--window-budget", "128", "-o", str(out), "--name", "t",
        ] + list(extra)
        return main(args), out

    def test_run_and_dump(self, tmp_path, capsys):
        code, out = self.run_tiny(
            tmp_path, "--dump-outputs", str(tmp_path / "dump")
        )
        assert code == 0
        assert (tmp_path / "dump" / "huge.npz").exists()
        payload = json.loads(out.read_text())
        assert "huge" in payload["suites"]
        assert "windows" in capsys.readouterr().out

    def test_max_rss_gate_fails(self, tmp_path, capsys):
        code, _ = self.run_tiny(tmp_path, "--max-rss-kb", "1")
        assert code == 1
        assert "exceeds --max-rss-kb" in capsys.readouterr().err

    def test_max_rss_gate_passes(self, tmp_path):
        code, _ = self.run_tiny(tmp_path, "--max-rss-kb", "10000000")
        assert code == 0

    def test_unknown_suite_still_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown bench suite"):
            main(["bench", "run", "--suite", "nope",
                  "-o", str(tmp_path / "x.json")])

    def test_compare_rss_regression_gate(self, tmp_path, capsys):
        _, out_a = self.run_tiny(tmp_path)
        out_b = tmp_path / "BENCH_u.json"
        # pin both deltas: the measured value is 0 whenever the process
        # RSS high-water predates the suite (e.g. mid-pytest-session)
        payload = json.loads(out_a.read_text())
        payload["suites"]["huge"]["peak_rss_delta_kb"] = 2048
        out_a.write_text(json.dumps(payload))
        payload = json.loads(out_a.read_text())
        payload["suites"]["huge"]["peak_rss_delta_kb"] = 204800
        out_b.write_text(json.dumps(payload))
        assert main(["bench", "compare", str(out_a), str(out_b),
                     "--max-rss-regression", "200.0"]) == 0
        assert main(["bench", "compare", str(out_a), str(out_b),
                     "--max-rss-regression", "1.5"]) == 1
        assert "peak-RSS regression" in capsys.readouterr().err
