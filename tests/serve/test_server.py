"""HTTP end-to-end: status mapping, stats observability, clean shutdown."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    InferenceService,
    ServeClient,
    ServeClientError,
    ServeServer,
)
from repro.serve.protocol import HealthReply, parse_message

from .conftest import rename_bench


@pytest.fixture(scope="module")
def server(model):
    service = InferenceService(model, model_label="e2e", max_wait_ms=1.0)
    srv = ServeServer(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=10)
    srv.close()
    assert not thread.is_alive()


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(f"http://{server.host}:{server.port}", timeout=30.0)


class TestHappyPath:
    def test_health(self, client):
        assert client.health()

    def test_query_aiger(self, client, adder_aag):
        resp = client.query(adder_aag)
        assert len(resp.predictions) == resp.num_nodes
        assert resp.model == "e2e"

    def test_query_bench(self, client, adder_bench):
        resp = client.query(adder_bench, fmt="bench")
        assert len(resp.predictions) == resp.num_nodes

    def test_structural_resubmission_hits_cache(self, client, comparator_aag):
        before = client.stats()
        first = client.query(comparator_aag)
        again = client.query(comparator_aag)
        after = client.stats()
        assert again.cache_hit
        assert again.predictions == first.predictions
        # the hit is observable through the stats endpoint
        assert after.cache_hits >= before.cache_hits + 1

    def test_renamed_circuit_hits_cache(self, client, adder_bench):
        first = client.query(adder_bench, fmt="bench")
        renamed = client.query(rename_bench(adder_bench), fmt="bench")
        assert renamed.cache_hit
        assert renamed.predictions == first.predictions

    def test_stats_reply_shape(self, client):
        stats = client.stats()
        assert stats.model == "e2e"
        assert stats.requests >= 1
        assert stats.cache_capacity > 0


class TestErrorMapping:
    def test_malformed_aiger_is_400_with_line(self, client):
        with pytest.raises(ServeClientError) as info:
            client.query("aag 2 1 0 1\nnonsense\n")
        err = info.value
        assert err.status == 400
        assert err.kind == "parse_error"
        assert err.line == 1

    def test_malformed_bench_is_400_with_line(self, client):
        with pytest.raises(ServeClientError) as info:
            client.query("INPUT(a)\nb = FROB(a)\n", fmt="bench")
        err = info.value
        assert err.status == 400
        assert err.kind == "parse_error"
        assert err.line == 2

    def test_malformed_verilog_is_400(self, client):
        with pytest.raises(ServeClientError) as info:
            client.query("module m; endmodule extra", fmt="verilog")
        assert info.value.status == 400
        assert info.value.kind == "parse_error"

    def test_all_constant_circuit_is_400_circuit_error(self, client):
        with pytest.raises(ServeClientError) as info:
            client.query("aag 0 0 0 1 0\n0\n")
        assert info.value.status == 400
        assert info.value.kind == "circuit_error"

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServeClientError) as info:
            client._request("/nope")
        assert info.value.status == 404
        assert info.value.kind == "not_found"

    def test_bad_json_body_is_400_protocol_error(self, server):
        req = urllib.request.Request(
            f"http://{server.host}:{server.port}/query",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10)
        assert info.value.code == 400
        reply = parse_message(info.value.read().decode())
        assert reply.error == "protocol_error"

    def test_wrong_message_type_is_400(self, server):
        body = HealthReply().to_json().encode()
        req = urllib.request.Request(
            f"http://{server.host}:{server.port}/query",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10)
        assert info.value.code == 400

    def test_missing_body_is_400(self, server):
        req = urllib.request.Request(
            f"http://{server.host}:{server.port}/query",
            data=b"",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10)
        assert info.value.code == 400

    def test_errors_count_in_stats(self, client):
        before = client.stats()
        with pytest.raises(ServeClientError):
            client.query("aag broken\n")
        after = client.stats()
        assert after.errors == before.errors + 1


class TestClient:
    def test_connection_refused_is_transport_error(self):
        dead = ServeClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServeClientError) as info:
            dead.health()
        assert info.value.kind == "transport_error"
        assert info.value.status is None

    def test_raw_error_body_survives(self):
        err = ServeClientError("boom", kind="internal_error", status=500)
        assert "internal_error" in str(err)
        assert "500" in str(err)

    def test_responses_parse_as_protocol_messages(self, server):
        with urllib.request.urlopen(
            f"http://{server.host}:{server.port}/healthz", timeout=10
        ) as resp:
            payload = json.loads(resp.read().decode())
        assert parse_message(payload) == HealthReply()


class TestShutdown:
    def test_closed_batcher_maps_to_503(self, model, adder_aag):
        """A query racing shutdown gets 503 (retryable), not a 500."""
        service = InferenceService(model, max_wait_ms=0.0)
        srv = ServeServer(service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            service.batcher.close()
            client = ServeClient(
                f"http://{srv.host}:{srv.port}", timeout=10.0
            )
            with pytest.raises(ServeClientError) as info:
                client.query(adder_aag)
            assert info.value.status == 503
            assert info.value.kind == "unavailable"
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.close()

    def test_close_stops_the_service(self, model):
        service = InferenceService(model, max_wait_ms=0.0)
        srv = ServeServer(service, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        with urllib.request.urlopen(
            f"http://{srv.host}:{srv.port}/healthz", timeout=10
        ) as resp:
            assert resp.status == 200
        srv.shutdown()
        thread.join(timeout=10)
        srv.close()
        assert not thread.is_alive()
        from repro.serve.batcher import BatcherClosed
        from repro.serve.service import _Job

        with pytest.raises(BatcherClosed):
            service.batcher.submit(_Job(None, None))
