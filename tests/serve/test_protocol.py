"""Message round-trips, validation, and forward-compatibility rules."""

import json

import pytest

from repro.serve.protocol import (
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    ErrorReply,
    HealthReply,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    StatsReply,
    parse_message,
)

SAMPLES = [
    QueryRequest(circuit="aag 0 0 0 0 0\n"),
    QueryRequest(circuit="INPUT(a)\n", fmt="bench", num_iterations=7),
    QueryResponse(
        structural_hash="ab" * 32,
        num_nodes=3,
        num_pis=2,
        num_ands=1,
        predictions=(0.5, 0.25, 0.125),
        cache_hit=True,
        coalesced=4,
        model="DeepGate(dim=12)",
        elapsed_ms=1.5,
    ),
    ErrorReply(error="parse_error", detail="line 3: bad literal", line=3),
    ErrorReply(error="internal_error", detail="boom"),
    StatsReply(model="m", requests=10, cache_hits=7, batch_mode="merged"),
    HealthReply(),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "msg", SAMPLES, ids=lambda m: type(m).__name__
    )
    def test_json_roundtrip_equal(self, msg):
        back = parse_message(msg.to_json())
        assert back == msg
        assert type(back) is type(msg)

    def test_payload_is_self_describing(self):
        payload = QueryRequest(circuit="x").to_payload()
        assert payload["type_name"] == QueryRequest.TYPE_NAME
        assert payload["version"] == PROTOCOL_VERSION

    def test_tuples_serialise_as_lists(self):
        msg = QueryResponse(num_nodes=1, predictions=(0.5,))
        assert json.loads(msg.to_json())["predictions"] == [0.5]

    def test_type_names_unique(self):
        assert len(MESSAGE_TYPES) == 5


class TestForwardCompat:
    def test_unknown_payload_fields_ignored(self):
        payload = QueryRequest(circuit="x").to_payload()
        payload["wholly_new_field"] = {"nested": True}
        assert parse_message(payload) == QueryRequest(circuit="x")

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            parse_message({"type_name": "repro.serve.nope", "version": 1})

    def test_newer_version_rejected(self):
        payload = HealthReply().to_payload()
        payload["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="newer than this server"):
            parse_message(payload)

    def test_missing_version_defaults_to_current(self):
        payload = HealthReply().to_payload()
        del payload["version"]
        assert parse_message(payload) == HealthReply()


class TestValidation:
    def test_not_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_message("{nope")

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_message("[1, 2]")

    def test_no_type_name(self):
        with pytest.raises(ProtocolError, match="no type_name"):
            parse_message({"version": 1})

    def test_payload_without_circuit_rejected(self):
        with pytest.raises(ProtocolError, match="circuit"):
            parse_message({"type_name": QueryRequest.TYPE_NAME, "version": 1})

    def test_empty_circuit_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            QueryRequest(circuit="   ")

    def test_unknown_format_rejected(self):
        with pytest.raises(ProtocolError, match="unknown circuit format"):
            QueryRequest(circuit="x", fmt="vhdl")

    def test_format_aliases_normalise(self):
        assert QueryRequest(circuit="x", fmt="aag").fmt == "aiger"
        assert QueryRequest(circuit="x", fmt="V").fmt == "verilog"

    @pytest.mark.parametrize("bad", [0, -3, 1.5, True, "ten"])
    def test_bad_num_iterations_rejected(self, bad):
        with pytest.raises(ProtocolError, match="num_iterations"):
            QueryRequest(circuit="x", num_iterations=bad)

    def test_prediction_length_must_match(self):
        with pytest.raises(ProtocolError, match="predictions for"):
            QueryResponse(num_nodes=2, predictions=(0.5,))

    def test_non_numeric_predictions_rejected(self):
        with pytest.raises(ProtocolError, match="numbers"):
            QueryResponse(num_nodes=1, predictions=("high",))

    def test_bad_error_line_rejected(self):
        with pytest.raises(ProtocolError, match="line"):
            ErrorReply(error="parse_error", detail="x", line=0)
