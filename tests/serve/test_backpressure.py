"""Overload shedding end to end: 503 + Retry-After, client backoff."""

import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    BatcherSaturated,
    InferenceService,
    ServeClient,
    ServeClientError,
    ServeServer,
)
from repro.serve import client as client_module
from repro.serve.protocol import parse_message


@pytest.fixture
def saturated_server(model):
    """A live server whose batcher rejects everything as saturated."""
    service = InferenceService(model, max_wait_ms=0.0, max_queue=1)
    srv = ServeServer(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    real_submit = service.batcher.submit
    service.batcher.submit = lambda job: (_ for _ in ()).throw(
        BatcherSaturated("queue is full (1/1 jobs in flight)")
    )
    try:
        yield srv, service, real_submit
    finally:
        srv.shutdown()
        thread.join(timeout=10)
        srv.close()


class TestSaturatedServer:
    def test_maps_to_503_with_retry_after(self, saturated_server, adder_aag):
        srv, _, _ = saturated_server
        client = ServeClient(f"http://{srv.host}:{srv.port}", timeout=10.0)
        with pytest.raises(ServeClientError) as info:
            client.query(adder_aag)
        err = info.value
        assert err.status == 503
        assert err.kind == "saturated"
        assert err.retry_after == 1.0
        assert err.retryable

    def test_retry_after_header_on_the_wire(self, saturated_server, adder_aag):
        from repro.serve.protocol import QueryRequest

        srv, _, _ = saturated_server
        req = urllib.request.Request(
            f"http://{srv.host}:{srv.port}/query",
            data=QueryRequest(circuit=adder_aag).to_json().encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10)
        assert info.value.code == 503
        assert info.value.headers.get("Retry-After") == "1"
        reply = parse_message(info.value.read().decode())
        assert reply.error == "saturated"

    def test_client_retries_through_transient_saturation(
        self, saturated_server, adder_aag, monkeypatch
    ):
        # first attempt bounces off the full queue; the saturation then
        # clears, and a retrying client succeeds without caller-side code
        srv, service, real_submit = saturated_server
        waits = []
        monkeypatch.setattr(
            client_module.time, "sleep", lambda s: waits.append(s)
        )
        attempts = {"n": 0}

        def flaky_submit(job):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise BatcherSaturated("momentarily full")
            return real_submit(job)

        service.batcher.submit = flaky_submit
        client = ServeClient(
            f"http://{srv.host}:{srv.port}", timeout=10.0, retries=2
        )
        resp = client.query(adder_aag)
        assert len(resp.predictions) == resp.num_nodes
        # one backoff wait, raised to the server's Retry-After hint
        assert waits == [1.0]

    def test_no_retries_raises_immediately(self, saturated_server, adder_aag):
        srv, _, _ = saturated_server
        client = ServeClient(f"http://{srv.host}:{srv.port}", timeout=10.0)
        assert client.retries == 0
        with pytest.raises(ServeClientError):
            client.query(adder_aag)


class TestClientBackoff:
    def make_client(self, fail_times, status=503, retry_after=None):
        client = ServeClient(
            "http://unused.invalid",
            retries=3,
            backoff_base=0.25,
            backoff_cap=5.0,
        )
        state = {"n": 0}

        def fake_request_once(path, body=None):
            state["n"] += 1
            if state["n"] <= fail_times:
                raise ServeClientError(
                    "transient", status=status, retry_after=retry_after
                )
            from repro.serve.protocol import HealthReply

            return HealthReply()

        client._request_once = fake_request_once
        return client, state

    def test_exponential_backoff_waits(self, monkeypatch):
        waits = []
        monkeypatch.setattr(
            client_module.time, "sleep", lambda s: waits.append(s)
        )
        client, state = self.make_client(fail_times=3)
        assert client.health()
        assert state["n"] == 4
        assert waits == [0.25, 0.5, 1.0]

    def test_retry_after_raises_the_wait(self, monkeypatch):
        waits = []
        monkeypatch.setattr(
            client_module.time, "sleep", lambda s: waits.append(s)
        )
        client, _ = self.make_client(fail_times=1, retry_after=2.5)
        assert client.health()
        assert waits == [2.5]

    def test_non_retryable_status_fails_fast(self, monkeypatch):
        monkeypatch.setattr(
            client_module.time,
            "sleep",
            lambda s: pytest.fail("must not sleep for a 400"),
        )
        client, state = self.make_client(fail_times=5, status=400)
        with pytest.raises(ServeClientError):
            client.health()
        assert state["n"] == 1

    def test_attempts_exhausted_reraises(self, monkeypatch):
        monkeypatch.setattr(client_module.time, "sleep", lambda s: None)
        client, state = self.make_client(fail_times=10)
        with pytest.raises(ServeClientError):
            client.health()
        assert state["n"] == 4  # 1 try + 3 retries

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ServeClient("http://unused.invalid", retries=-1)


class TestStatsExposure:
    def test_stats_carry_queue_bound_and_rejections(self, model):
        service = InferenceService(model, max_wait_ms=0.0, max_queue=7)
        srv = ServeServer(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(f"http://{srv.host}:{srv.port}", timeout=10.0)
            stats = client.stats()
            assert stats.max_queue == 7
            assert stats.rejected == 0
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.close()
