"""Checkpoint resolution and serving a model loaded from disk."""

import json
import os

import numpy as np
import pytest

from repro.nn.serialization import save_model_checkpoint
from repro.serve import (
    CheckpointNotFound,
    QueryRequest,
    resolve_checkpoint,
    service_from_checkpoint,
)
from repro.serve.service import InferenceService


def fake_run(runs_dir, experiment, spec_hash, model, mtime=None):
    """A minimal complete run directory publishing a checkpoint."""
    from repro.runtime.runner import RUN_FORMAT_VERSION

    out_dir = runs_dir / experiment / spec_hash
    out_dir.mkdir(parents=True)
    save_model_checkpoint(model, out_dir / "checkpoint.npz")
    manifest = {
        "run_format_version": RUN_FORMAT_VERSION,
        "experiment": experiment,
        "spec_hash": spec_hash,
        "status": "complete",
        "files": {"checkpoint": "checkpoint.npz"},
        "checkpoint": "checkpoint.npz",
    }
    (out_dir / "manifest.json").write_text(json.dumps(manifest))
    if mtime is not None:
        os.utime(out_dir / "manifest.json", (mtime, mtime))
    return out_dir


class TestResolve:
    def test_explicit_file(self, tmp_path, model):
        path = tmp_path / "ck.npz"
        save_model_checkpoint(model, path)
        assert resolve_checkpoint(path) == path

    def test_run_directory(self, tmp_path, model):
        out_dir = fake_run(tmp_path, "train_backbone", "aaaa", model)
        assert (
            resolve_checkpoint(out_dir) == out_dir / "checkpoint.npz"
        )

    def test_run_directory_without_checkpoint(self, tmp_path):
        out_dir = tmp_path / "run"
        out_dir.mkdir()
        (out_dir / "manifest.json").write_text(json.dumps({"files": {}}))
        with pytest.raises(CheckpointNotFound, match="checkpoint"):
            resolve_checkpoint(out_dir)

    def test_experiment_name_picks_newest(self, tmp_path, model):
        fake_run(tmp_path, "train_backbone", "old0", model, mtime=1_000)
        new = fake_run(tmp_path, "train_backbone", "new0", model, mtime=2_000)
        resolved = resolve_checkpoint("train_backbone", runs_dir=tmp_path)
        assert resolved == new / "checkpoint.npz"

    def test_other_experiments_ignored(self, tmp_path, model):
        fake_run(tmp_path, "table2", "aaaa", model)
        with pytest.raises(CheckpointNotFound, match="train_backbone"):
            resolve_checkpoint("train_backbone", runs_dir=tmp_path)

    def test_missing_checkpoint_file_skipped(self, tmp_path, model):
        broken = fake_run(tmp_path, "train_backbone", "bad0", model)
        (broken / "checkpoint.npz").unlink()
        with pytest.raises(CheckpointNotFound):
            resolve_checkpoint("train_backbone", runs_dir=tmp_path)


class TestServiceFromCheckpoint:
    def test_loaded_model_predicts_identically(
        self, tmp_path, model, adder_aag
    ):
        live = InferenceService(model, max_wait_ms=0.0)
        try:
            ref = live.query(QueryRequest(circuit=adder_aag))
        finally:
            live.close()

        path = tmp_path / "ck.npz"
        save_model_checkpoint(model, path)
        svc = service_from_checkpoint(path, max_wait_ms=0.0)
        try:
            resp = svc.query(QueryRequest(circuit=adder_aag))
        finally:
            svc.close()
        assert resp.predictions == ref.predictions

    def test_label_describes_architecture(self, tmp_path, model):
        path = tmp_path / "ck.npz"
        save_model_checkpoint(model, path)
        svc = service_from_checkpoint(path)
        try:
            assert svc.model_label == "DeepGate(dim=12,num_iterations=2)"
        finally:
            svc.close()

    def test_service_kwargs_forwarded(self, tmp_path, model):
        path = tmp_path / "ck.npz"
        save_model_checkpoint(model, path)
        svc = service_from_checkpoint(
            path, cache_size=5, batch_mode="merged", model_label="custom"
        )
        try:
            assert svc.cache.capacity == 5
            assert svc.batch_mode == "merged"
            assert svc.model_label == "custom"
        finally:
            svc.close()

    def test_non_model_checkpoint_rejected(self, tmp_path):
        from repro.nn.serialization import CheckpointError, save_checkpoint

        path = tmp_path / "plain.npz"
        save_checkpoint(path, {"w": np.zeros(2)}, meta={})
        with pytest.raises(CheckpointError):
            service_from_checkpoint(path)
