"""LRU semantics, counters, and build-once behaviour of the cache."""

import threading

import pytest

from repro.serve.cache import CompilationCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = CompilationCache(capacity=4)
        entry, hit = cache.get_or_build("k", lambda: "built")
        assert (entry, hit) == ("built", False)
        entry, hit = cache.get_or_build("k", lambda: "rebuilt")
        assert (entry, hit) == ("built", True)

    def test_builder_runs_once_per_key(self):
        cache = CompilationCache(capacity=4)
        calls = []
        for _ in range(5):
            cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert len(calls) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            CompilationCache(capacity=0)

    def test_peek_does_not_touch_counters(self):
        cache = CompilationCache(capacity=2)
        cache.get_or_build("a", lambda: 1)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 1)

    def test_clear(self):
        cache = CompilationCache(capacity=2)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = CompilationCache(capacity=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A2")  # refresh a
        cache.get_or_build("c", lambda: "C")  # evicts b, not a
        assert cache.peek("a") == "A"
        assert cache.peek("b") is None
        assert cache.peek("c") == "C"

    def test_eviction_counter(self):
        cache = CompilationCache(capacity=1)
        for key in "abc":
            cache.get_or_build(key, lambda k=key: k)
        stats = cache.stats()
        assert stats.evictions == 2
        assert stats.entries == 1
        assert stats.capacity == 1

    def test_counters_dict_mirrors_stats(self):
        cache = CompilationCache(capacity=3)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        assert cache.counters() == {
            "cache_hits": 1,
            "cache_misses": 1,
            "cache_evictions": 0,
            "cache_entries": 1,
            "cache_capacity": 3,
        }


class TestConcurrency:
    def test_concurrent_same_key_builds_once(self):
        cache = CompilationCache(capacity=4)
        built = []
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            cache.get_or_build("k", lambda: built.append(1) or "v")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(built) == 1
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == 7
