"""LRU semantics, counters, and build-once behaviour of the cache."""

import threading

import pytest

from repro.serve.cache import CompilationCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = CompilationCache(capacity=4)
        entry, hit = cache.get_or_build("k", lambda: "built")
        assert (entry, hit) == ("built", False)
        entry, hit = cache.get_or_build("k", lambda: "rebuilt")
        assert (entry, hit) == ("built", True)

    def test_builder_runs_once_per_key(self):
        cache = CompilationCache(capacity=4)
        calls = []
        for _ in range(5):
            cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert len(calls) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            CompilationCache(capacity=0)

    def test_peek_does_not_touch_counters(self):
        cache = CompilationCache(capacity=2)
        cache.get_or_build("a", lambda: 1)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 1)

    def test_clear(self):
        cache = CompilationCache(capacity=2)
        cache.get_or_build("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = CompilationCache(capacity=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A2")  # refresh a
        cache.get_or_build("c", lambda: "C")  # evicts b, not a
        assert cache.peek("a") == "A"
        assert cache.peek("b") is None
        assert cache.peek("c") == "C"

    def test_eviction_counter(self):
        cache = CompilationCache(capacity=1)
        for key in "abc":
            cache.get_or_build(key, lambda k=key: k)
        stats = cache.stats()
        assert stats.evictions == 2
        assert stats.entries == 1
        assert stats.capacity == 1

    def test_counters_dict_mirrors_stats(self):
        cache = CompilationCache(capacity=3)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("a", lambda: 1)
        assert cache.counters() == {
            "cache_hits": 1,
            "cache_misses": 1,
            "cache_evictions": 0,
            "cache_entries": 1,
            "cache_capacity": 3,
        }


class TestConcurrency:
    def test_slow_build_does_not_block_other_keys(self):
        """A slow compile on one key must not head-of-line block a cache
        hit (or an independent build) on a different key."""
        cache = CompilationCache(capacity=4)
        cache.get_or_build("fast", lambda: "ready")
        slow_started = threading.Event()
        release_slow = threading.Event()
        slow_result = []

        def slow_builder():
            slow_started.set()
            assert release_slow.wait(timeout=5.0)
            return "slow-value"

        slow_thread = threading.Thread(
            target=lambda: slow_result.append(
                cache.get_or_build("slow", slow_builder)
            )
        )
        slow_thread.start()
        assert slow_started.wait(timeout=5.0)
        # while 'slow' is mid-build, a different key answers immediately
        done = threading.Event()
        hit_result = []

        def other_key():
            hit_result.append(cache.get_or_build("fast", lambda: "?"))
            done.set()

        threading.Thread(target=other_key).start()
        assert done.wait(timeout=2.0), (
            "hit on a different key blocked behind an in-flight build"
        )
        assert hit_result == [("ready", True)]
        release_slow.set()
        slow_thread.join(timeout=5.0)
        assert slow_result == [("slow-value", False)]

    def test_same_key_waiters_get_owner_value(self):
        cache = CompilationCache(capacity=4)
        release = threading.Event()
        results = []

        def builder():
            assert release.wait(timeout=5.0)
            return "v"

        def request():
            results.append(cache.get_or_build("k", builder))

        threads = [threading.Thread(target=request) for _ in range(4)]
        threads[0].start()
        while "k" not in cache._building:  # owner registered
            pass
        for t in threads[1:]:
            t.start()
        release.set()
        for t in threads:
            t.join(timeout=5.0)
        assert sorted(results) == [("v", False)] + [("v", True)] * 3

    def test_failed_build_propagates_and_allows_retry(self):
        cache = CompilationCache(capacity=4)
        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_build("k", lambda: (_ for _ in ()).throw(
                RuntimeError("boom")
            ))
        # the failure is not cached: a retry builds fresh
        assert cache.get_or_build("k", lambda: "ok") == ("ok", False)

    def test_concurrent_same_key_builds_once(self):
        cache = CompilationCache(capacity=4)
        built = []
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            cache.get_or_build("k", lambda: built.append(1) or "v")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(built) == 1
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == 7
