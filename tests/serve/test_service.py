"""InferenceService: strash-keyed reuse, batching determinism, errors."""

import threading

import numpy as np
import pytest

from repro.serve.protocol import QueryRequest
from repro.serve.service import (
    CircuitRejected,
    InferenceService,
    canonicalize,
    parse_circuit,
)

from .conftest import rename_bench


@pytest.fixture
def service(model):
    svc = InferenceService(model, model_label="test", max_wait_ms=0.0)
    yield svc
    svc.close()


def concurrent_queries(svc, texts, fmt="aiger"):
    """Fire one query per text concurrently; responses in input order."""
    results = [None] * len(texts)
    errors = [None] * len(texts)
    barrier = threading.Barrier(len(texts))

    def worker(i, text):
        barrier.wait()
        try:
            results[i] = svc.query(QueryRequest(circuit=text, fmt=fmt))
        except Exception as exc:  # noqa: BLE001 - collected for asserts
            errors[i] = exc

    threads = [
        threading.Thread(target=worker, args=(i, t))
        for i, t in enumerate(texts)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == [None] * len(texts), errors
    return results


class TestCanonicalisation:
    def test_renamed_bench_circuits_share_a_key(self, adder_bench):
        key1, _ = canonicalize(parse_circuit(adder_bench, "bench"))
        key2, _ = canonicalize(
            parse_circuit(rename_bench(adder_bench), "bench")
        )
        assert key1 == key2

    def test_distinct_circuits_get_distinct_keys(
        self, adder_aag, comparator_aag
    ):
        key1, _ = canonicalize(parse_circuit(adder_aag, "aiger"))
        key2, _ = canonicalize(parse_circuit(comparator_aag, "aiger"))
        assert key1 != key2

    def test_unknown_format_rejected(self):
        with pytest.raises(CircuitRejected, match="format"):
            parse_circuit("x", "vhdl")

    def test_all_constant_circuit_rejected(self, service):
        with pytest.raises(CircuitRejected, match="constant"):
            service.query(QueryRequest(circuit="aag 0 0 0 1 0\n0\n"))


class TestCacheIntegration:
    def test_repeat_query_hits_and_matches(self, service, adder_aag):
        first = service.query(QueryRequest(circuit=adder_aag))
        second = service.query(QueryRequest(circuit=adder_aag))
        assert not first.cache_hit
        assert second.cache_hit
        assert second.predictions == first.predictions
        assert second.structural_hash == first.structural_hash

    def test_renamed_circuit_hits(self, service, adder_bench):
        first = service.query(QueryRequest(circuit=adder_bench, fmt="bench"))
        renamed = service.query(
            QueryRequest(circuit=rename_bench(adder_bench), fmt="bench")
        )
        assert renamed.cache_hit
        assert renamed.predictions == first.predictions

    def test_predictions_cover_every_node(self, service, adder_aag):
        resp = service.query(QueryRequest(circuit=adder_aag))
        assert len(resp.predictions) == resp.num_nodes
        assert resp.num_nodes > resp.num_pis + resp.num_ands  # NOT nodes too
        assert all(0.0 <= p <= 1.0 for p in resp.predictions)


class TestBatchingDeterminism:
    def test_concurrent_bitwise_identical_to_serial(
        self, model, adder_aag, comparator_aag
    ):
        serial = InferenceService(model, max_wait_ms=0.0)
        try:
            ref_a = serial.query(QueryRequest(circuit=adder_aag))
            ref_c = serial.query(QueryRequest(circuit=comparator_aag))
        finally:
            serial.close()

        svc = InferenceService(model, max_wait_ms=100.0, max_batch_size=32)
        try:
            texts = [adder_aag, comparator_aag] * 4
            responses = concurrent_queries(svc, texts)
        finally:
            svc.close()
        for text, resp in zip(texts, responses):
            ref = ref_a if text is adder_aag else ref_c
            assert resp.predictions == ref.predictions  # bitwise: floats equal
        # the wide window coalesced at least some companions
        assert max(r.coalesced for r in responses) >= 2

    def test_merged_mode_close_to_serial(
        self, model, adder_aag, comparator_aag
    ):
        serial = InferenceService(model, max_wait_ms=0.0)
        try:
            ref_a = serial.query(QueryRequest(circuit=adder_aag))
            ref_c = serial.query(QueryRequest(circuit=comparator_aag))
        finally:
            serial.close()

        svc = InferenceService(
            model, max_wait_ms=100.0, max_batch_size=32, batch_mode="merged"
        )
        try:
            texts = [adder_aag, comparator_aag] * 3
            responses = concurrent_queries(svc, texts)
        finally:
            svc.close()
        for text, resp in zip(texts, responses):
            ref = ref_a if text is adder_aag else ref_c
            diff = np.max(
                np.abs(
                    np.asarray(resp.predictions) - np.asarray(ref.predictions)
                )
            )
            assert diff < 1e-6

    def test_unknown_batch_mode_rejected(self, model):
        with pytest.raises(ValueError, match="batch_mode"):
            InferenceService(model, batch_mode="magic")


class TestIterationOverride:
    def test_override_changes_predictions(self, service, adder_aag):
        default = service.query(QueryRequest(circuit=adder_aag))
        deep = service.query(
            QueryRequest(circuit=adder_aag, num_iterations=8)
        )
        assert deep.predictions != default.predictions

    def test_override_groups_separately_from_default(self, model, adder_aag):
        """Same circuit at different T must not share one fused pass."""
        svc = InferenceService(model, max_wait_ms=100.0, max_batch_size=8)
        try:
            serial = InferenceService(model, max_wait_ms=0.0)
            try:
                ref = serial.query(
                    QueryRequest(circuit=adder_aag, num_iterations=5)
                )
            finally:
                serial.close()

            results = [None, None]
            barrier = threading.Barrier(2)

            def q(i, iters):
                barrier.wait()
                results[i] = svc.query(
                    QueryRequest(circuit=adder_aag, num_iterations=iters)
                )

            threads = [
                threading.Thread(target=q, args=(0, 5)),
                threading.Thread(target=q, args=(1, 2)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results[0].predictions == ref.predictions
            assert results[1].predictions != ref.predictions
        finally:
            svc.close()

    def test_non_recurrent_model_rejects_override(self, adder_aag):
        from repro.models.baselines import GCN

        gcn = GCN(3, 8, 2, "conv_sum", np.random.default_rng(0))
        svc = InferenceService(gcn, model_label="gcn", max_wait_ms=0.0)
        try:
            svc.query(QueryRequest(circuit=adder_aag))  # plain query fine
            with pytest.raises(CircuitRejected, match="not recurrent"):
                svc.query(
                    QueryRequest(circuit=adder_aag, num_iterations=4)
                )
        finally:
            svc.close()


class TestStats:
    def test_counters_track_requests_and_cache(self, service, adder_aag):
        service.query(QueryRequest(circuit=adder_aag))
        service.query(QueryRequest(circuit=adder_aag))
        with pytest.raises(Exception):
            service.query(QueryRequest(circuit="aag broken"))
        stats = service.stats()
        assert stats.requests == 3
        assert stats.errors == 1
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.cache_entries == 1
        assert stats.batches == 2
        assert stats.batch_mode == "exact"
        assert stats.model == "test"
        assert stats.uptime_s >= 0.0
